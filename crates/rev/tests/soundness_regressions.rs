//! Regression tests for the release-mode soundness holes: the
//! `1u64 << 64` shift wrap that made `verify_computes` vacuously pass on
//! 64-bit interfaces, the same wrap in `Circuit::permutation` /
//! `verify_permutation`, and the debug-only double-release check in
//! `LineAllocator`. The `release_mode` module compiles only without
//! debug assertions, so the `cargo test --release` CI job proves the
//! checks are real asserts, not `debug_assert!`s.

use qda_rev::circuit::{Circuit, LineAllocator, TooWideError, PERMUTATION_LINE_LIMIT};
use qda_rev::equiv::{verify_computes, verify_permutation, VerifyOptions, VerifyOutcome};

/// 64 input lines feeding one output line.
fn wide_interface() -> (Vec<usize>, Vec<usize>) {
    ((0..64).collect(), vec![64])
}

#[test]
fn exhaustive_request_on_64_bit_interface_is_sampled_not_vacuous() {
    // A correct circuit: out ^= bit 0. Even with exhaustive_limit = 64
    // the 2^64 input space can only be sampled, so the verdict must be
    // ProbablyCorrect — the old code returned Verified after checking
    // a single input.
    let mut c = Circuit::new(65);
    c.cnot(0, 64);
    let (inputs, outputs) = wide_interface();
    for batch in [false, true] {
        let out = verify_computes(
            &c,
            &inputs,
            &outputs,
            |x| x & 1,
            &VerifyOptions {
                exhaustive_limit: 64,
                random_samples: 256,
                batch,
                ..Default::default()
            },
        );
        assert_eq!(out, VerifyOutcome::ProbablyCorrect { samples: 256 });
    }
}

#[test]
fn wrong_64_bit_circuit_is_caught_not_vacuously_verified() {
    // The empty circuit against a non-trivial oracle: the old
    // one-iteration loop only checked x = 0 (where both agree) and
    // passed; sampling must find a mismatch.
    let c = Circuit::new(65);
    let (inputs, outputs) = wide_interface();
    for batch in [false, true] {
        let out = verify_computes(
            &c,
            &inputs,
            &outputs,
            |x| (x >> 17) & 1,
            &VerifyOptions {
                exhaustive_limit: 64,
                random_samples: 256,
                batch,
                ..Default::default()
            },
        );
        assert!(matches!(out, VerifyOutcome::Mismatch { .. }), "{out:?}");
    }
}

#[test]
fn permutation_of_64_line_circuit_is_a_typed_error_not_a_wrap() {
    // The old `1u64 << 64` wrapped to 1 in release builds, silently
    // returning a one-entry "permutation" of a 2^64-state circuit. The
    // guard is now a typed error instead of a panic, so flows can route
    // wide circuits to sampled verification.
    let err = Circuit::new(64).permutation().unwrap_err();
    assert_eq!(
        err,
        TooWideError {
            lines: 64,
            limit: PERMUTATION_LINE_LIMIT
        }
    );
    assert!(err.to_string().contains("capped at 24 lines"), "{err}");
}

#[test]
fn verify_permutation_rejects_wide_circuits_with_a_typed_error() {
    let err = verify_permutation(&Circuit::new(64), &[0]).unwrap_err();
    assert_eq!(err.lines, 64);
}

#[test]
#[should_panic(expected = "expected 2^3")]
fn verify_permutation_rejects_wrong_length_tables() {
    let _ = verify_permutation(&Circuit::new(3), &[0, 1, 2]);
}

#[test]
#[should_panic(expected = "double release")]
fn double_release_panics_in_every_profile() {
    let mut alloc = LineAllocator::new(2);
    let line = alloc.alloc();
    alloc.release(line);
    alloc.release(line);
}

#[test]
#[should_panic(expected = "never produced")]
fn releasing_a_foreign_line_panics() {
    // Releasing a reserved (or never-allocated) line would let alloc()
    // hand out a primary-input line as a "clean ancilla" later.
    let mut alloc = LineAllocator::new(2);
    alloc.release(0);
}

#[test]
fn release_then_alloc_reuses_without_aliasing() {
    let mut alloc = LineAllocator::new(1);
    let a = alloc.alloc();
    let b = alloc.alloc();
    alloc.release(a);
    alloc.release(b);
    let c = alloc.alloc();
    let d = alloc.alloc();
    assert_ne!(c, d, "recycled lines must have exactly one owner each");
    assert_eq!(alloc.high_water(), 3);
}

/// Compiled only in release-style builds: `cargo test --release` proves
/// the three fixes hold exactly where the original bugs lived.
#[cfg(not(debug_assertions))]
mod release_mode {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn double_release_check_is_not_a_debug_assert() {
        let result = catch_unwind(|| {
            let mut alloc = LineAllocator::new(1);
            let line = alloc.alloc();
            alloc.release(line);
            alloc.release(line);
        });
        assert!(
            result.is_err(),
            "double release must panic without debug assertions"
        );
    }

    #[test]
    fn shift_guard_holds_without_debug_assertions() {
        // In release builds the old `1u64 << 64` wrapped (debug builds
        // panicked on the overflow instead), which is exactly the
        // profile this test runs under.
        let c = Circuit::new(65);
        let (inputs, outputs) = wide_interface();
        let out = verify_computes(
            &c,
            &inputs,
            &outputs,
            |x| x & 1,
            &VerifyOptions {
                exhaustive_limit: 64,
                ..Default::default()
            },
        );
        assert!(matches!(out, VerifyOutcome::Mismatch { .. }), "{out:?}");
    }

    #[test]
    fn permutation_guard_holds_without_debug_assertions() {
        assert!(Circuit::new(64).permutation().is_err());
    }
}
