//! Differential tests pinning the packed-mask gate IR against the legacy
//! `Vec<Gate>` form: structural round-trip identity through
//! [`GateArena`] / [`PackedGateBuf`], and bit-exact simulation agreement
//! between the packed engines (scalar, batch, optimizer, resynthesis)
//! and a legacy reference interpreter that folds [`Gate::apply_u64`]
//! over the materialized gate list — a code path that never touches a
//! mask word.

use proptest::prelude::*;
use qda_rev::circuit::Circuit;
use qda_rev::gate::Gate;
use qda_rev::opt::{optimize_checked, OptOptions};
use qda_rev::packed::{words_for_lines, GateArena, PackedGateBuf};
use qda_rev::resynth::{resynthesize_checked, ResynthOptions};
use qda_rev::state::BitState;
use qda_rev::testkit::arb_mpmct_circuit;
use qda_revsynth::resynth::default_window_synthesizers;

/// Legacy reference simulation: fold the per-`Gate` scalar kernel over
/// the materialized gate list. Deliberately independent of the packed
/// word-mask kernels behind `simulate_u64` / `apply_batch`.
fn legacy_simulate(gates: &[Gate], mut state: u64) -> u64 {
    for g in gates {
        state = g.apply_u64(state);
    }
    state
}

/// A spread of probe states covering the corners and a stride through
/// the middle of an `n`-line state space.
fn probe_states(n: usize) -> Vec<u64> {
    let size = 1u64 << n;
    let mut probes = vec![0, 1, size / 2, size - 2, size - 1];
    probes.extend((0..size).step_by(((size / 64) as usize).max(1)));
    probes.retain(|&x| x < size);
    probes
}

/// Both simulation engines of `c` must agree with the legacy replay of
/// `reference`'s gate list on every probe state.
fn assert_packed_matches_legacy(c: &Circuit, reference: &Circuit) {
    let gates = reference.gates();
    for x in probe_states(c.num_lines()) {
        assert_eq!(c.simulate_u64(x), legacy_simulate(&gates, x), "state {x}");
    }
    // The batch engine (one transposed pass over all probes at once)
    // must match the same legacy table.
    let probes = probe_states(c.num_lines());
    let batch = c.simulate_batch(&probes);
    for (k, &x) in probes.iter().enumerate() {
        assert_eq!(batch[k], legacy_simulate(&gates, x), "lane {k}");
    }
}

proptest! {
    #[test]
    fn arena_round_trips_the_gate_list(c in arb_mpmct_circuit(3..17, 32)) {
        // Vec<Gate> -> GateArena -> Vec<Gate> is the identity, and the
        // circuit's own arena materializes to the same list.
        let gates = c.gates();
        let arena = GateArena::from_gates(c.num_lines(), &gates);
        prop_assert_eq!(&arena.to_gates(), &gates);
        prop_assert_eq!(&c.packed().to_gates(), &gates);
        prop_assert_eq!(arena.len(), gates.len());
    }

    #[test]
    fn packed_gate_buf_round_trips_every_gate(c in arb_mpmct_circuit(3..17, 32)) {
        let words = words_for_lines(c.num_lines());
        for g in c.gates() {
            let buf = PackedGateBuf::from_gate(&g, words);
            let view = buf.view();
            prop_assert_eq!(&view.to_gate(), &g);
            prop_assert_eq!(view.target(), g.target());
            prop_assert_eq!(view.num_controls(), g.num_controls());
            for ctl in g.controls() {
                prop_assert_eq!(view.control_on(ctl.line()), Some(ctl.is_positive()));
            }
        }
    }

    #[test]
    fn packed_views_agree_with_materialized_gates(c in arb_mpmct_circuit(3..17, 32)) {
        // Walking the arena yields views that decode, control-for-control
        // and in order, to the legacy gates.
        let gates = c.gates();
        for ((id, view), g) in c.packed().iter().zip(&gates) {
            prop_assert_eq!(&view.to_gate(), g);
            prop_assert_eq!(&c.packed().materialize(id), g);
            let decoded: Vec<_> = view.controls().collect();
            prop_assert_eq!(decoded.as_slice(), g.controls());
        }
    }

    #[test]
    fn packed_scalar_and_batch_sims_match_legacy_replay(
        c in arb_mpmct_circuit(3..17, 32),
    ) {
        assert_packed_matches_legacy(&c, &c);
        // BitState apply (word-sliced packed kernel) agrees too.
        let gates = c.gates();
        for x in probe_states(c.num_lines()) {
            let mut s = BitState::zeros(c.num_lines());
            let lines: Vec<usize> = (0..c.num_lines()).collect();
            s.write_register(&lines, x);
            c.apply(&mut s);
            prop_assert_eq!(s.read_register(&lines), legacy_simulate(&gates, x));
        }
    }

    #[test]
    fn full_permutation_matches_legacy_replay(c in arb_mpmct_circuit(3..13, 24)) {
        // Exhaustive on up to 12 lines: the batch-backed permutation
        // table is the legacy replay of every basis state.
        let gates = c.gates();
        let perm = c.permutation().expect("12 lines is within the cap");
        for (x, &y) in perm.iter().enumerate() {
            prop_assert_eq!(y, legacy_simulate(&gates, x as u64), "input {}", x);
        }
    }

    #[test]
    fn optimized_circuit_round_trips_and_matches_legacy(
        c in arb_mpmct_circuit(3..11, 28),
    ) {
        let out = optimize_checked(&c, &OptOptions::default()).expect("optimizer is sound");
        // The rewritten arena still materializes consistently...
        prop_assert_eq!(out.circuit.packed().to_gates(), out.circuit.gates());
        // ...and both packed engines still compute the ORIGINAL function
        // as replayed by the legacy interpreter.
        assert_packed_matches_legacy(&out.circuit, &c);
    }

    #[test]
    fn resynthesized_circuit_round_trips_and_matches_legacy(
        c in arb_mpmct_circuit(3..9, 20),
    ) {
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &default_window_synthesizers())
            .expect("default back-ends are sound");
        prop_assert_eq!(out.circuit.packed().to_gates(), out.circuit.gates());
        assert_packed_matches_legacy(&out.circuit, &c);
    }
}
