//! Shared proptest strategies for the `qda-rev` integration suites.

use proptest::prelude::*;
use qda_rev::circuit::Circuit;
use qda_rev::gate::{Control, Gate};

/// A random mixed-polarity MPMCT circuit: the line count is drawn from
/// `lines`, followed by up to `max_gates` gates whose target, control
/// set, and control polarities are derived from three random words.
pub fn arb_mpmct_circuit(
    lines: std::ops::Range<usize>,
    max_gates: usize,
) -> impl Strategy<Value = Circuit> {
    (
        lines,
        prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..max_gates),
    )
        .prop_map(|(lines, raw)| {
            let mut c = Circuit::new(lines);
            for (tsel, cmask, pmask) in raw {
                let target = (tsel % lines as u64) as usize;
                let controls: Vec<Control> = (0..lines)
                    .filter(|&l| l != target && (cmask >> l) & 1 == 1)
                    .map(|l| {
                        if (pmask >> l) & 1 == 1 {
                            Control::positive(l)
                        } else {
                            Control::negative(l)
                        }
                    })
                    .collect();
                c.add_gate(Gate::mct(controls, target));
            }
            c
        })
}
