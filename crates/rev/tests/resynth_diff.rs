//! Differential tests of the windowed resynthesis pass: on random
//! mixed-polarity MPMCT circuits, the resynthesized output must realize
//! exactly the input function (checked by scalar *and* bit-parallel batch
//! simulation independently), never cost more, be a fixpoint of its own
//! pass, respect the window line budget, and keep its per-window
//! statistics consistent.

use proptest::prelude::*;
use qda_rev::circuit::Circuit;
use qda_rev::resynth::{resynthesize, resynthesize_checked, ResynthOptions, WindowSynthesizer};
use qda_rev::testkit::arb_mpmct_circuit;
use qda_revsynth::resynth::default_window_synthesizers;
use std::sync::atomic::{AtomicU64, Ordering};

/// Scalar replay over the full state space — one [`Circuit::simulate_u64`]
/// call per basis state, no batch engine involved.
fn scalar_table(c: &Circuit) -> Vec<u64> {
    (0..1u64 << c.num_lines())
        .map(|x| c.simulate_u64(x))
        .collect()
}

/// Bit-parallel replay over the full state space — the transposed batch
/// engine behind [`Circuit::permutation`], deliberately a different code
/// path than [`scalar_table`].
fn batch_table(c: &Circuit) -> Vec<u64> {
    c.permutation().expect("test circuits stay within the cap")
}

proptest! {
    #[test]
    fn resynth_preserves_the_function_by_scalar_and_batch_sim(
        c in arb_mpmct_circuit(2..9, 24),
    ) {
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &default_window_synthesizers())
            .expect("default back-ends are sound");
        prop_assert_eq!(out.circuit.num_lines(), c.num_lines());
        prop_assert_eq!(scalar_table(&out.circuit), scalar_table(&c));
        prop_assert_eq!(batch_table(&out.circuit), batch_table(&c));
    }

    #[test]
    fn resynth_never_costs_more(c in arb_mpmct_circuit(2..9, 24)) {
        let out = resynthesize(&c, &ResynthOptions::default(), &default_window_synthesizers());
        let (before, after) = (c.cost(), out.circuit.cost());
        // The acceptance order is lexicographic on (T-count, gates): a
        // splice may add a gate when it strictly cuts T-count.
        prop_assert!((after.t_count, after.gates) <= (before.t_count, before.gates));
        // Acceptance is strict: anything accepted shows up as a strict
        // lexicographic improvement overall.
        if out.stats.windows_accepted > 0 {
            prop_assert!((after.t_count, after.gates) < (before.t_count, before.gates));
        }
    }

    #[test]
    fn resynth_is_idempotent(c in arb_mpmct_circuit(2..8, 20)) {
        let options = ResynthOptions::default();
        let synths = default_window_synthesizers();
        let first = resynthesize(&c, &options, &synths);
        let second = resynthesize(&first.circuit, &options, &synths);
        prop_assert_eq!(&second.circuit, &first.circuit);
        prop_assert_eq!(second.stats.windows_accepted, 0);
        prop_assert_eq!(second.stats.gates_removed, 0);
        prop_assert_eq!(second.stats.passes, 1);
    }

    #[test]
    fn windows_never_exceed_the_line_budget(
        c in arb_mpmct_circuit(2..10, 24),
        max_lines in 1usize..6,
    ) {
        // A probe back-end that never synthesizes anything but records the
        // largest permutation it was ever offered.
        struct Probe(AtomicU64);
        impl WindowSynthesizer for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn synthesize(&self, perm: &[u64]) -> Option<Circuit> {
                self.0.fetch_max(perm.len() as u64, Ordering::Relaxed);
                None
            }
        }
        let probe = Probe(AtomicU64::new(0));
        let options = ResynthOptions { max_lines, ..Default::default() };
        resynthesize(&c, &options, &[&probe]);
        prop_assert!(probe.0.load(Ordering::Relaxed) <= 1 << max_lines);
    }

    #[test]
    fn stats_account_for_every_window(c in arb_mpmct_circuit(2..9, 24)) {
        let out = resynthesize(&c, &ResynthOptions::default(), &default_window_synthesizers());
        let s = out.stats;
        prop_assert_eq!(s.windows_attempted, s.windows_accepted + s.windows_rejected);
        prop_assert!(s.passes >= 1);
        // Sound back-ends never trip the per-splice simulation check.
        prop_assert_eq!(s.candidates_unsound, 0);
        // The per-window deltas must sum to the whole-circuit deltas.
        let (before, after) = (c.cost(), out.circuit.cost());
        prop_assert_eq!(s.gates_saved(), before.gates as i64 - after.gates as i64);
        prop_assert_eq!(s.t_saved(), before.t_count as i64 - after.t_count as i64);
        // T-count never regresses; gates may (lexicographic acceptance
        // trades gates for T), but only when T strictly improved.
        prop_assert!(s.t_added <= s.t_removed);
        if s.gates_added > s.gates_removed {
            prop_assert!(s.t_added < s.t_removed);
        }
        if s.windows_accepted == 0 {
            prop_assert_eq!(s.gates_removed, 0);
            prop_assert_eq!(s.t_removed, 0);
        }
    }
}
