//! Differential tests of the peephole optimizer: on random mixed-polarity
//! MPMCT circuits (3–12 lines), the optimizer output must realize exactly
//! the input function on the **full** line space, never cost more, be a
//! fixpoint of its own rule set, and keep its per-rule statistics
//! consistent with the gates it removed.

use proptest::prelude::*;
use qda_rev::circuit::Circuit;
use qda_rev::opt::{equivalence_witness, optimize, optimize_checked, OptOptions};
use qda_rev::testkit::arb_mpmct_circuit;

/// A random circuit on 3–12 lines with up to 40 mixed-polarity gates.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    arb_mpmct_circuit(3..13, 40)
}

/// Exhaustive scalar comparison over every basis state of the full line
/// space — deliberately independent of the batch engine the optimizer's
/// own check uses.
fn same_permutation(a: &Circuit, b: &Circuit) -> Result<(), u64> {
    assert_eq!(a.num_lines(), b.num_lines());
    for x in 0..(1u64 << a.num_lines()) {
        if a.simulate_u64(x) != b.simulate_u64(x) {
            return Err(x);
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn optimized_circuit_is_equivalent_to_its_input(c in arb_circuit()) {
        let out = optimize(&c, &OptOptions::default());
        if let Err(x) = same_permutation(&c, &out.circuit) {
            prop_assert!(false, "diverges at state {x:#b}:\n{c}\n{}", out.circuit);
        }
        // …and the optimizer's own batch-simulation check agrees.
        prop_assert_eq!(equivalence_witness(&c, &out.circuit), None);
    }

    #[test]
    fn optimize_checked_accepts_every_random_circuit(c in arb_circuit()) {
        let checked = optimize_checked(&c, &OptOptions::default());
        prop_assert!(checked.is_ok());
    }

    #[test]
    fn cost_never_increases(c in arb_circuit()) {
        let before = c.cost();
        let out = optimize(&c, &OptOptions::default());
        let after = out.circuit.cost();
        prop_assert!(after.t_count <= before.t_count,
            "T-count regressed: {} -> {}", before.t_count, after.t_count);
        prop_assert!(after.gates <= before.gates,
            "gate count regressed: {} -> {}", before.gates, after.gates);
        prop_assert_eq!(after.qubits, before.qubits);
    }

    #[test]
    fn optimizer_is_idempotent(c in arb_circuit()) {
        let once = optimize(&c, &OptOptions::default());
        let twice = optimize(&once.circuit, &OptOptions::default());
        prop_assert_eq!(&twice.circuit, &once.circuit,
            "second pass still found rewrites: {:?}", twice.stats);
        prop_assert_eq!(twice.stats.total_rewrites(), 0);
    }

    #[test]
    fn stats_account_for_every_removed_gate(c in arb_circuit()) {
        let out = optimize(&c, &OptOptions::default());
        let removed = (c.num_gates() - out.circuit.num_gates()) as u64;
        let s = out.stats;
        prop_assert_eq!(
            removed,
            2 * s.cancellations + s.polarity_merges + s.subset_merges + 2 * s.not_absorptions
        );
        prop_assert_eq!(s.rejected, 0);
    }

    #[test]
    fn every_window_size_is_sound(c in arb_circuit(), window in 1usize..48) {
        let out = optimize(&c, &OptOptions { window });
        prop_assert!(same_permutation(&c, &out.circuit).is_ok(), "window {window}");
        prop_assert!(out.circuit.cost().t_count <= c.cost().t_count);
    }
}
