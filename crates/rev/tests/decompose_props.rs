//! Property tests for the Barenco V-chain expansion
//! (`qda_rev::decompose`): across `max_controls ∈ {2, 3, 4}` and random
//! mixed-polarity circuits, the expansion must preserve the function on
//! the original lines, return every ancilla clean, and hit the
//! `2(c − 2) + 1` Toffoli (and `7` T per Toffoli) budget exactly.

use proptest::prelude::*;
use qda_rev::circuit::Circuit;
use qda_rev::cost::t_count_mct;
use qda_rev::decompose::{expand_with_limit, plain_toffoli_t_count};
use qda_rev::gate::Gate;
use qda_rev::testkit::arb_mpmct_circuit;

/// A random circuit on 4–7 lines (so MCT gates with up to 6 controls
/// appear) with up to 12 mixed-polarity gates.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    arb_mpmct_circuit(4..8, 12)
}

/// Expected gate count of the expansion of one gate: pass-through below
/// the limit, otherwise the V-chain plus the X conjugation of its
/// negative controls.
fn expected_gates(g: &Gate, max_controls: usize) -> usize {
    let c = g.num_controls();
    if c <= max_controls {
        1
    } else {
        let negatives = g.controls().iter().filter(|k| !k.is_positive()).count();
        2 * (c - 2) + 1 + 2 * negatives
    }
}

/// Expected T-count of the expansion of one gate (7 per plain Toffoli).
fn expected_t(g: &Gate, max_controls: usize) -> u64 {
    let c = g.num_controls();
    if c <= max_controls {
        t_count_mct(c)
    } else {
        7 * (2 * (c as u64 - 2) + 1)
    }
}

proptest! {
    #[test]
    fn expansion_preserves_semantics_on_original_lines(
        c in arb_circuit(),
        max_sel in 0usize..3,
    ) {
        let max_controls = 2 + max_sel;
        let expanded = expand_with_limit(&c, max_controls);
        let n = c.num_lines();
        let mask = (1u64 << n) - 1;
        for x in 0..(1u64 << n) {
            let full = expanded.simulate_u64(x);
            prop_assert_eq!(full & mask, c.simulate_u64(x),
                "max_controls={} x={}", max_controls, x);
            prop_assert_eq!(full & !mask, 0,
                "dirty ancilla at max_controls={} x={}", max_controls, x);
        }
    }

    #[test]
    fn expansion_respects_the_control_limit(
        c in arb_circuit(),
        max_sel in 0usize..3,
    ) {
        let max_controls = 2 + max_sel;
        let expanded = expand_with_limit(&c, max_controls);
        for g in expanded.gates() {
            prop_assert!(
                g.num_controls() <= max_controls || g.num_controls() == 0,
                "{} survived a limit of {}", g, max_controls
            );
        }
    }

    #[test]
    fn toffoli_and_t_budgets_match_the_barenco_formula(
        c in arb_circuit(),
        max_sel in 0usize..3,
    ) {
        let max_controls = 2 + max_sel;
        let expanded = expand_with_limit(&c, max_controls);
        let gates: usize = c.gates().iter().map(|g| expected_gates(g, max_controls)).sum();
        prop_assert_eq!(expanded.num_gates(), gates);
        let t: u64 = c.gates().iter().map(|g| expected_t(g, max_controls)).sum();
        prop_assert_eq!(expanded.cost().t_count, t);
        // At max_controls = 2 every gate is plain, so the circuit-level
        // pessimistic model must agree exactly.
        if max_controls == 2 {
            prop_assert_eq!(expanded.cost().t_count, plain_toffoli_t_count(&c));
        }
    }

    #[test]
    fn ancilla_allocation_matches_the_widest_expanded_gate(
        c in arb_circuit(),
        max_sel in 0usize..3,
    ) {
        let max_controls = 2 + max_sel;
        let expanded = expand_with_limit(&c, max_controls);
        let worst = c
            .gates()
            .iter()
            .map(Gate::num_controls)
            .filter(|&k| k > max_controls)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(
            expanded.num_lines(),
            c.num_lines() + worst.saturating_sub(2)
        );
    }
}
