//! Property-based tests: reversible circuits are permutations, inverses
//! compose to identity, and the arithmetic blocks implement arithmetic.

use proptest::prelude::*;
use qda_rev::blocks::{cuccaro_add, cuccaro_sub, multiply_add};
use qda_rev::circuit::Circuit;
use qda_rev::gate::Control;
use qda_rev::io::{from_real, to_real};
use qda_rev::state::BitState;
use qda_rev::testkit::arb_mpmct_circuit;

/// A random mixed-polarity circuit on exactly `lines` lines.
fn arb_circuit(lines: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    arb_mpmct_circuit(lines..lines + 1, max_gates)
}

proptest! {
    #[test]
    fn circuits_realize_permutations(c in arb_circuit(6, 24)) {
        let perm = c.permutation().expect("6 lines is within the cap");
        let mut seen = vec![false; perm.len()];
        for &y in &perm {
            prop_assert!(!seen[y as usize]);
            seen[y as usize] = true;
        }
    }

    #[test]
    fn inverse_composes_to_identity(c in arb_circuit(6, 24), x in 0u64..64) {
        let inv = c.inverse();
        prop_assert_eq!(inv.simulate_u64(c.simulate_u64(x)), x);
        prop_assert_eq!(c.simulate_u64(inv.simulate_u64(x)), x);
    }

    #[test]
    fn wide_and_narrow_simulation_agree(c in arb_circuit(6, 24), x in 0u64..64) {
        let mut s = BitState::from_u64(6, x);
        c.apply(&mut s);
        prop_assert_eq!(s.to_u64(), c.simulate_u64(x));
    }

    #[test]
    fn real_round_trip_is_identity(c in arb_circuit(6, 24)) {
        // to_real emits controls sorted (the Gate invariant), so the
        // parsed circuit is structurally identical, not just equivalent.
        let back = from_real(&to_real(&c)).expect("own output must parse");
        prop_assert_eq!(&back, &c);
    }

    #[test]
    fn real_round_trip_preserves_semantics_on_random_circuits(
        c in arb_circuit(7, 32),
        x in 0u64..128,
    ) {
        let back = from_real(&to_real(&c)).expect("own output must parse");
        prop_assert_eq!(back.num_lines(), c.num_lines());
        prop_assert_eq!(back.simulate_u64(x), c.simulate_u64(x));
    }

    #[test]
    fn adder_adds(a_val in 0u64..256, b_val in 0u64..256, ctl in any::<bool>()) {
        let a: Vec<usize> = (0..8).collect();
        let b: Vec<usize> = (8..16).collect();
        let mut c = Circuit::new(19);
        let control = ctl.then(|| Control::positive(18));
        cuccaro_add(&mut c, &a, &b, 16, Some(17), control);
        let mut s = BitState::zeros(19);
        s.write_register(&a, a_val);
        s.write_register(&b, b_val);
        s.set(18, ctl);
        c.apply(&mut s);
        let expected = if ctl || control.is_none() { (a_val + b_val) & 255 } else { b_val };
        prop_assert_eq!(s.read_register(&b), expected);
        prop_assert_eq!(s.read_register(&a), a_val);
        prop_assert!(!s.get(16), "ancilla clean");
    }

    #[test]
    fn subtractor_is_adder_inverse(a_val in 0u64..64, b_val in 0u64..64) {
        let a: Vec<usize> = (0..6).collect();
        let b: Vec<usize> = (6..12).collect();
        let mut add = Circuit::new(13);
        cuccaro_add(&mut add, &a, &b, 12, None, None);
        let mut sub = Circuit::new(13);
        cuccaro_sub(&mut sub, &a, &b, 12, None, None);
        let mut s = BitState::zeros(13);
        s.write_register(&a, a_val);
        s.write_register(&b, b_val);
        add.apply(&mut s);
        sub.apply(&mut s);
        prop_assert_eq!(s.read_register(&b), b_val);
    }

    #[test]
    fn multiplier_multiplies(a_val in 0u64..32, b_val in 0u64..32) {
        let a: Vec<usize> = (0..5).collect();
        let b: Vec<usize> = (5..10).collect();
        let out: Vec<usize> = (10..20).collect();
        let mut c = Circuit::new(21);
        multiply_add(&mut c, &a, &b, &out, 20);
        let mut s = BitState::zeros(21);
        s.write_register(&a, a_val);
        s.write_register(&b, b_val);
        c.apply(&mut s);
        prop_assert_eq!(s.read_register(&out), a_val * b_val);
        prop_assert_eq!(s.read_register(&a), a_val);
        prop_assert_eq!(s.read_register(&b), b_val);
    }
}
