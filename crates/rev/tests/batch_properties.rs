//! Property tests pinning the bit-parallel batch simulator bit-exactly
//! against scalar `BitState` replay: random MPMCT circuits with mixed
//! polarities, beyond 64 lines (multi-word scalar states) and beyond 64
//! states (multi-word lanes), plus outcome-identity of the two
//! `verify_computes` engines including the reported witness.

use proptest::prelude::*;
use qda_rev::batchsim::BatchState;
use qda_rev::circuit::Circuit;
use qda_rev::equiv::{verify_computes, VerifyOptions};
use qda_rev::gate::{Control, Gate};
use qda_rev::state::BitState;

/// A random mixed-polarity MPMCT gate on `lines` lines. Draws control
/// lines from an RNG instead of a 64-bit mask, so it works beyond 64
/// lines.
fn arb_gate(lines: usize) -> impl Strategy<Value = Gate> {
    (0..lines, 0usize..4).prop_perturb(move |(target, n_controls), mut rng| {
        let mut controls: Vec<Control> = Vec::new();
        let mut used = vec![false; lines];
        used[target] = true;
        while controls.len() < n_controls {
            let l = (rng.next_u64() % lines as u64) as usize;
            if used[l] {
                continue;
            }
            used[l] = true;
            controls.push(if rng.next_u64() & 1 == 1 {
                Control::positive(l)
            } else {
                Control::negative(l)
            });
        }
        Gate::mct(controls, target)
    })
}

fn arb_circuit(lines: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(lines), 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(lines);
        for g in gates {
            c.add_gate(g);
        }
        c
    })
}

/// `count` random full-line assignments (one bool per line per state).
fn arb_states(lines: usize, count: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    Just(()).prop_perturb(move |(), mut rng| {
        (0..count)
            .map(|_| (0..lines).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_matches_scalar_replay_beyond_64_lines_and_64_states(
        c in arb_circuit(70, 40),
        states in arb_states(70, 100),
    ) {
        // 70 lines → multi-word scalar states; 100 states → multi-word
        // lanes with a ragged tail.
        let mut batch = BatchState::zeros(70, states.len());
        for (k, bits) in states.iter().enumerate() {
            for (line, &v) in bits.iter().enumerate() {
                batch.set(line, k, v);
            }
        }
        c.apply_batch(&mut batch);
        for (k, bits) in states.iter().enumerate() {
            let mut s = BitState::zeros(70);
            for (line, &v) in bits.iter().enumerate() {
                s.set(line, v);
            }
            c.apply(&mut s);
            for line in 0..70 {
                prop_assert_eq!(batch.get(line, k), s.get(line), "line {} state {}", line, k);
            }
        }
    }

    #[test]
    fn simulate_batch_matches_simulate_u64(
        c in arb_circuit(10, 40),
        inputs in prop::collection::vec(0u64..1024, 65..200),
    ) {
        let batch = c.simulate_batch(&inputs);
        for (k, &x) in inputs.iter().enumerate() {
            prop_assert_eq!(batch[k], c.simulate_u64(x), "state {}", k);
        }
    }

    #[test]
    fn register_io_round_trips_through_the_transpose(
        values in prop::collection::vec(any::<u64>(), 65..200),
        width in 1usize..64,
    ) {
        let lines: Vec<usize> = (0..width).collect();
        let mut batch = BatchState::zeros(width, values.len());
        let masked: Vec<u64> = values
            .iter()
            .map(|v| if width == 64 { *v } else { v & ((1 << width) - 1) })
            .collect();
        batch.load_register(&lines, &masked);
        prop_assert_eq!(batch.read_register(&lines), masked);
    }

    #[test]
    fn verify_outcomes_identical_between_batch_and_scalar(
        golden in arb_circuit(10, 24),
        mutant in arb_circuit(10, 24),
        checks in any::<bool>(),
        force_sampling in any::<bool>(),
    ) {
        // Verify `mutant` against `golden` as the oracle: usually a
        // mismatch or dirty line, occasionally equivalent — either way
        // the two engines must report the identical outcome, witness
        // included, on the exhaustive and sampled paths alike.
        let input_lines: Vec<usize> = (0..7).collect();
        let output_lines: Vec<usize> = (3..8).collect();
        let oracle = |x: u64| {
            let mut s = BitState::zeros(10);
            s.write_register(&input_lines, x);
            golden.apply(&mut s);
            s.read_register(&output_lines)
        };
        let run = |batch: bool| {
            verify_computes(
                &mutant,
                &input_lines,
                &output_lines,
                oracle,
                &VerifyOptions {
                    batch,
                    exhaustive_limit: if force_sampling { 3 } else { 16 },
                    random_samples: 96,
                    check_ancilla_clean: checks,
                    check_inputs_preserved: checks,
                },
            )
        };
        prop_assert_eq!(run(true), run(false));
    }

    #[test]
    fn batched_permutation_is_a_permutation_matching_scalar(
        c in arb_circuit(11, 24),
    ) {
        // 11 lines = 2048 states: permutation() spans two batches.
        let perm = c.permutation().expect("11 lines is within the cap");
        prop_assert_eq!(perm.len(), 1 << 11);
        let mut seen = vec![false; perm.len()];
        for (x, &y) in perm.iter().enumerate() {
            prop_assert!(!seen[y as usize], "not a permutation");
            seen[y as usize] = true;
            if x % 97 == 0 {
                prop_assert_eq!(y, c.simulate_u64(x as u64), "input {}", x);
            }
        }
    }
}
