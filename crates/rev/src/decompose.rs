//! Decomposition of multiple-controlled Toffoli gates into plain Toffoli
//! networks (Barenco et al. \[27\]).
//!
//! The cost model in [`crate::cost`] charges `8c − 9` T gates per
//! `c`-control gate, following the relative-phase constructions of
//! Maslov \[26\] that the paper cites. This module provides the *explicit*
//! plain-Toffoli expansion (the classic V-chain): with `c − 2` clean
//! ancillae, a `c`-control gate becomes `2(c − 2) + 1` Toffolis. The
//! expansion is classically simulable, so it doubles as an executable
//! witness that large-control gates really do reduce to the 2-control
//! primitive — and the benches use it to compare the optimistic
//! (relative-phase) and pessimistic (plain-Toffoli) cost models.

use crate::circuit::Circuit;
use crate::cost::t_count_mct;
use crate::gate::Gate;

/// Rewrites every gate with more than `max_controls` controls into a
/// V-chain over fresh clean ancillae. Returns the expanded circuit
/// (ancillae are appended above the original lines and returned clean).
///
/// Negative controls are handled by X-conjugation (free at the T level,
/// two NOT gates at the gate level).
///
/// # Panics
///
/// Panics if `max_controls < 2`.
///
/// # Example
///
/// ```
/// use qda_rev::circuit::Circuit;
/// use qda_rev::decompose::expand_to_toffoli;
/// use qda_rev::gate::{Control, Gate};
///
/// let mut c = Circuit::new(5);
/// c.mct((0..4).map(Control::positive).collect(), 4);
/// let expanded = expand_to_toffoli(&c);
/// // Same function on the original lines.
/// for x in 0..32u64 {
///     let full = expanded.simulate_u64(x);
///     assert_eq!(full & 31, c.simulate_u64(x));
/// }
/// ```
pub fn expand_to_toffoli(circuit: &Circuit) -> Circuit {
    expand_with_limit(circuit, 2)
}

/// Like [`expand_to_toffoli`] but keeping gates with up to `max_controls`
/// controls intact.
pub fn expand_with_limit(circuit: &Circuit, max_controls: usize) -> Circuit {
    assert!(max_controls >= 2, "cannot expand below 2 controls");
    // Worst-case ancilla need: the V-chain of the largest expanded gate
    // always reduces to 2-control Toffolis and needs c − 2 ancillae.
    let worst = circuit
        .gates()
        .iter()
        .map(Gate::num_controls)
        .filter(|&c| c > max_controls)
        .max()
        .unwrap_or(0);
    let num_ancillae = worst.saturating_sub(2);
    let base = circuit.num_lines();
    let mut out = Circuit::new(base + num_ancillae);
    for g in circuit.gates() {
        if g.num_controls() <= max_controls {
            out.add_gate(g.clone());
            continue;
        }
        // X-conjugate negative controls so the chain uses positive ones.
        let flips: Vec<usize> = g
            .controls()
            .iter()
            .filter(|c| !c.is_positive())
            .map(|c| c.line())
            .collect();
        for &f in &flips {
            out.not(f);
        }
        let controls: Vec<usize> = g.controls().iter().map(|c| c.line()).collect();
        emit_v_chain(&mut out, &controls, g.target(), base);
        for &f in &flips {
            out.not(f);
        }
    }
    out
}

/// Emits the V-chain for positive controls: ancilla `i` accumulates the
/// AND of a growing prefix; the final Toffoli hits the target; the chain
/// is then uncomputed.
fn emit_v_chain(out: &mut Circuit, controls: &[usize], target: usize, ancilla_base: usize) {
    let c = controls.len();
    debug_assert!(c > 2);
    // Compute ANDs: anc[0] = c0 & c1; anc[i] = anc[i-1] & c_{i+1}.
    let chain_len = c - 2;
    for i in 0..chain_len {
        let (a, b) = if i == 0 {
            (controls[0], controls[1])
        } else {
            (ancilla_base + i - 1, controls[i + 1])
        };
        out.toffoli(a, b, ancilla_base + i);
    }
    out.toffoli(ancilla_base + chain_len - 1, controls[c - 1], target);
    for i in (0..chain_len).rev() {
        let (a, b) = if i == 0 {
            (controls[0], controls[1])
        } else {
            (ancilla_base + i - 1, controls[i + 1])
        };
        out.toffoli(a, b, ancilla_base + i);
    }
}

/// T-count of a circuit when every gate is first expanded into plain
/// Toffolis (`7` T each): the pessimistic counterpart of the
/// relative-phase model in [`crate::cost`].
pub fn plain_toffoli_t_count(circuit: &Circuit) -> u64 {
    circuit
        .gates()
        .iter()
        .map(|g| match g.num_controls() {
            0 | 1 => 0,
            2 => 7,
            c => 7 * (2 * (c as u64 - 2) + 1),
        })
        .sum()
}

/// Ratio between the plain-Toffoli and relative-phase T-counts of a gate
/// (→ 1.75 for large control counts).
pub fn model_gap(controls: usize) -> f64 {
    if controls < 2 {
        return 1.0;
    }
    let plain = if controls == 2 {
        7
    } else {
        7 * (2 * (controls as u64 - 2) + 1)
    };
    plain as f64 / t_count_mct(controls) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Control;
    use crate::state::BitState;

    fn mct_circuit(c: usize) -> Circuit {
        let mut circuit = Circuit::new(c + 1);
        circuit.mct((0..c).map(Control::positive).collect(), c);
        circuit
    }

    #[test]
    fn v_chain_matches_mct_semantics() {
        for c in 3..=7 {
            let original = mct_circuit(c);
            let expanded = expand_to_toffoli(&original);
            let mask = (1u64 << (c + 1)) - 1;
            for x in 0..(1u64 << (c + 1)) {
                let full = expanded.simulate_u64(x);
                assert_eq!(full & mask, original.simulate_u64(x), "c={c} x={x}");
                // Ancillae returned clean.
                assert_eq!(full & !mask, 0, "c={c} x={x}: dirty ancilla");
            }
        }
    }

    #[test]
    fn negative_controls_conjugated() {
        let mut circuit = Circuit::new(5);
        circuit.mct(
            vec![
                Control::positive(0),
                Control::negative(1),
                Control::positive(2),
                Control::negative(3),
            ],
            4,
        );
        let expanded = expand_to_toffoli(&circuit);
        for x in 0..32u64 {
            assert_eq!(expanded.simulate_u64(x) & 31, circuit.simulate_u64(x));
        }
    }

    #[test]
    fn small_gates_pass_through() {
        let mut circuit = Circuit::new(3);
        circuit.not(0);
        circuit.cnot(0, 1);
        circuit.toffoli(0, 1, 2);
        let expanded = expand_to_toffoli(&circuit);
        assert_eq!(expanded.num_gates(), 3);
        assert_eq!(expanded.num_lines(), 3);
    }

    #[test]
    fn toffoli_counts_follow_barenco() {
        for c in 3..=8 {
            let expanded = expand_to_toffoli(&mct_circuit(c));
            assert_eq!(expanded.num_gates(), 2 * (c - 2) + 1, "c={c}");
        }
    }

    #[test]
    fn partial_expansion_respects_limit() {
        let expanded = expand_with_limit(&mct_circuit(6), 4);
        assert!(expanded
            .gates()
            .iter()
            .all(|g| g.num_controls() <= 4 || g.num_controls() == 0));
    }

    #[test]
    fn expanded_circuit_on_wide_state() {
        let original = mct_circuit(5);
        let expanded = expand_to_toffoli(&original);
        let mut s = BitState::zeros(expanded.num_lines());
        for l in 0..5 {
            s.set(l, true);
        }
        expanded.apply(&mut s);
        assert!(s.get(5), "target flipped when all controls set");
    }

    #[test]
    fn model_gap_approaches_seven_fourths() {
        assert!((model_gap(2) - 1.0).abs() < 1e-9);
        assert!(model_gap(20) > 1.5 && model_gap(20) < 1.8);
    }

    #[test]
    fn plain_t_count_upper_bounds_model() {
        let c = mct_circuit(9);
        assert!(plain_toffoli_t_count(&c) >= c.cost().t_count);
    }
}
