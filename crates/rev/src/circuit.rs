//! Reversible circuits: cascades of MPMCT gates on a fixed set of lines.
//!
//! Gates are stored **packed** in a [`GateArena`] (control/polarity mask
//! words, struct-of-arrays — see [`crate::packed`]); the legacy
//! [`Gate`] view is materialized only at API boundaries via
//! [`Circuit::gates`].

use crate::batchsim::{consecutive_batches_in, span_jobs, BatchState};
use crate::cost::CircuitCost;
use crate::gate::{Control, Gate};
use crate::packed::GateArena;
use crate::state::BitState;
use qda_logic::par;
use std::fmt;

/// The explicit-permutation width cap: a circuit wider than this cannot
/// be expanded into a `2^n` table.
pub const PERMUTATION_LINE_LIMIT: usize = 24;

/// A circuit was too wide for an explicit `2^n` permutation table.
///
/// Returned by [`Circuit::permutation`] and
/// [`crate::equiv::verify_permutation`] instead of aborting the process;
/// the flow layer surfaces it as a `FlowError` variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TooWideError {
    /// The circuit's line count.
    pub lines: usize,
    /// The cap that was exceeded ([`PERMUTATION_LINE_LIMIT`]).
    pub limit: usize,
}

impl fmt::Display for TooWideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit has {} lines; the explicit permutation table is capped at {} lines \
             (use simulate_batch / verify against an oracle instead)",
            self.lines, self.limit
        )
    }
}

impl std::error::Error for TooWideError {}

/// A reversible circuit: `num_lines` lines and a gate cascade.
///
/// # Example
///
/// ```
/// use qda_rev::circuit::Circuit;
///
/// let mut swap = Circuit::new(2);
/// swap.cnot(0, 1);
/// swap.cnot(1, 0);
/// swap.cnot(0, 1);
/// assert_eq!(swap.simulate_u64(0b01), 0b10);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Circuit {
    num_lines: usize,
    arena: GateArena,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Circuit {
    /// An empty circuit on `num_lines` lines.
    pub fn new(num_lines: usize) -> Self {
        Self {
            num_lines,
            arena: GateArena::new(num_lines),
        }
    }

    /// Wraps an arena as a circuit (the arena's gates become the
    /// cascade, its line count the circuit's).
    pub(crate) fn from_arena(arena: GateArena) -> Self {
        Self {
            num_lines: arena.num_lines(),
            arena,
        }
    }

    /// Number of lines (qubits).
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.arena.len()
    }

    /// The gate cascade in execution order, materialized as legacy
    /// [`Gate`] values (API boundary — allocates; hot paths should walk
    /// [`Circuit::packed`] instead).
    pub fn gates(&self) -> Vec<Gate> {
        self.arena.to_gates()
    }

    /// The packed struct-of-arrays gate storage (see [`crate::packed`]).
    pub fn packed(&self) -> &GateArena {
        &self.arena
    }

    /// Consumes the circuit into its arena (rewrite passes edit it in
    /// place and wrap it back up).
    pub(crate) fn into_arena(self) -> GateArena {
        self.arena
    }

    /// Grows the circuit to at least `num_lines` lines.
    pub fn ensure_lines(&mut self, num_lines: usize) {
        if num_lines > self.num_lines {
            self.num_lines = num_lines;
            self.arena.grow_lines(num_lines);
        }
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a line outside the circuit.
    pub fn add_gate(&mut self, gate: Gate) {
        assert!(
            gate.max_line() < self.num_lines,
            "gate {gate} exceeds {} lines",
            self.num_lines
        );
        self.arena.push(&gate);
    }

    /// Appends a NOT gate.
    pub fn not(&mut self, target: usize) {
        self.add_gate(Gate::not(target));
    }

    /// Appends a CNOT gate.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.add_gate(Gate::cnot(control, target));
    }

    /// Appends a Toffoli gate (two positive controls).
    pub fn toffoli(&mut self, c1: usize, c2: usize, target: usize) {
        self.add_gate(Gate::toffoli(c1, c2, target));
    }

    /// Appends a general MPMCT gate.
    pub fn mct(&mut self, controls: Vec<Control>, target: usize) {
        self.add_gate(Gate::mct(controls, target));
    }

    /// Appends a SWAP of two lines (three CNOTs).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }

    /// Appends every gate of `other` (same line space).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more lines than `self`.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert!(other.num_lines <= self.num_lines, "line-space mismatch");
        for (_, g) in other.arena.iter() {
            self.arena.push_view(g);
        }
    }

    /// Appends `other` with its line `i` mapped onto `map[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the map is too short or maps outside this circuit.
    pub fn extend_remapped(&mut self, other: &Circuit, map: &[usize]) {
        assert!(map.len() >= other.num_lines, "map too short");
        for g in other.gates() {
            self.add_gate(g.remapped(map));
        }
    }

    /// The inverse circuit. MPMCT gates are self-inverse, so this is just
    /// the reversed cascade.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        let mut arena = GateArena::new(self.num_lines);
        let ids: Vec<usize> = self.arena.iter().map(|(id, _)| id).collect();
        for &id in ids.iter().rev() {
            arena.push_view(self.arena.gate(id));
        }
        Circuit {
            num_lines: self.num_lines,
            arena,
        }
    }

    /// Simulates the circuit on a state (in place).
    pub fn apply(&self, state: &mut BitState) {
        for (_, g) in self.arena.iter() {
            state.apply_packed(&g);
        }
    }

    /// Simulates on a ≤64-line input word, returning the output word.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than 64 lines.
    pub fn simulate_u64(&self, input: u64) -> u64 {
        assert!(self.num_lines <= 64, "too many lines for u64 simulation");
        let mut s = input;
        for (_, g) in self.arena.iter() {
            if g.fires_u64(s) {
                s ^= 1 << g.target();
            }
        }
        s
    }

    /// Simulates the circuit on a batch of states (in place) with the
    /// vectorized block-major kernel ([`BatchState::apply_arena`]): the
    /// cascade is applied [`crate::batchsim::LANE_CHUNK`]-word block by
    /// block, with branchless fixed-width inner loops and zero heap
    /// allocation.
    pub fn apply_batch(&self, state: &mut BatchState) {
        state.apply_arena(&self.arena);
    }

    /// Simulates many ≤64-line input words at once with the bit-parallel
    /// engine, returning one output word per input (in input order).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than 64 lines.
    pub fn simulate_batch(&self, inputs: &[u64]) -> Vec<u64> {
        assert!(self.num_lines <= 64, "too many lines for u64 simulation");
        if inputs.is_empty() {
            return Vec::new();
        }
        let all_lines: Vec<usize> = (0..self.num_lines).collect();
        let mut state = BatchState::zeros(self.num_lines, inputs.len());
        state.load_register(&all_lines, inputs);
        self.apply_batch(&mut state);
        state.read_register(&all_lines)
    }

    /// The permutation the circuit realizes over all `2^n` basis states,
    /// computed in bit-parallel batches sharded across the worker pool
    /// (`qda_logic::par`): each pool job sweeps one span of consecutive
    /// batches with a single reused [`BatchState`], and the spans are
    /// concatenated in index order — the table is byte-identical at any
    /// worker count. The consecutive input blocks are synthesized
    /// directly into the batch lanes ([`BatchState::load_consecutive`])
    /// — no input vector is ever materialized.
    ///
    /// # Errors
    ///
    /// Returns [`TooWideError`] if the circuit has more than
    /// [`PERMUTATION_LINE_LIMIT`] lines: the explicit table would not fit
    /// in memory, and for ≥ 64 lines the `2^n` size computation would
    /// silently wrap in release builds (returning a one-entry
    /// "permutation" at exactly 64 lines).
    pub fn permutation(&self) -> Result<Vec<u64>, TooWideError> {
        if self.num_lines > PERMUTATION_LINE_LIMIT {
            return Err(TooWideError {
                lines: self.num_lines,
                limit: PERMUTATION_LINE_LIMIT,
            });
        }
        let size = 1u64 << self.num_lines;
        let all_lines: Vec<usize> = (0..self.num_lines).collect();
        let (span, jobs) = span_jobs(size);
        let chunks = par::run_indexed(jobs, |job| {
            let lo = job as u64 * span;
            let hi = (lo + span).min(size);
            let mut out = Vec::with_capacity((hi - lo) as usize);
            let mut state = BatchState::zeros(self.num_lines, 0);
            for (base, count) in consecutive_batches_in(lo, hi) {
                state.reset(count);
                state.load_consecutive(&all_lines, base);
                state.apply_arena(&self.arena);
                out.extend(state.read_register(&all_lines));
            }
            out
        });
        let mut perm = Vec::with_capacity(size as usize);
        for chunk in chunks {
            perm.extend(chunk);
        }
        Ok(perm)
    }

    /// Cost summary.
    pub fn cost(&self) -> CircuitCost {
        CircuitCost::of(self)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} lines:", self.num_lines)?;
        for g in self.gates() {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

/// Allocates and recycles ancilla lines, tracking the high-water mark.
///
/// Synthesis back-ends that clean up intermediate results (the REVS
/// strategies of the paper) release lines back to the allocator so later
/// computations can reuse them; the final qubit count is the high-water
/// mark, not the total allocation count.
///
/// # Example
///
/// ```
/// use qda_rev::circuit::LineAllocator;
///
/// let mut alloc = LineAllocator::new(3); // lines 0..3 pre-assigned
/// let a = alloc.alloc();
/// let b = alloc.alloc();
/// alloc.release(a);
/// let c = alloc.alloc(); // reuses a
/// assert_eq!(c, a);
/// assert_eq!(alloc.high_water(), 5);
/// # let _ = b;
/// ```
#[derive(Clone, Debug)]
pub struct LineAllocator {
    reserved: usize,
    next: usize,
    high_water: usize,
    free: Vec<usize>,
    /// `in_free[line - reserved]`: whether the line currently sits in the
    /// free pool. Backs the O(1) double-release check in
    /// [`LineAllocator::release`].
    in_free: Vec<bool>,
    /// `(line, gate position)` pairs recorded by
    /// [`LineAllocator::release_at`], in release order. The static
    /// lifecycle analysis (`qda-analyze`) replays these to prove each
    /// released line was uncomputed and never touched again.
    events: Vec<(usize, usize)>,
}

impl LineAllocator {
    /// Creates an allocator whose first fresh line is `reserved`.
    pub fn new(reserved: usize) -> Self {
        Self {
            reserved,
            next: reserved,
            high_water: reserved,
            free: Vec::new(),
            in_free: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Allocates a zero-initialized line (callers must return lines to the
    /// free list only when they are restored to zero).
    pub fn alloc(&mut self) -> usize {
        if let Some(l) = self.free.pop() {
            self.in_free[l - self.reserved] = false;
            return l;
        }
        let l = self.next;
        self.next += 1;
        self.in_free.push(false);
        self.high_water = self.high_water.max(self.next);
        l
    }

    /// Allocates `k` lines.
    pub fn alloc_many(&mut self, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.alloc()).collect()
    }

    /// Returns a clean (zero) line to the pool.
    ///
    /// # Panics
    ///
    /// Panics — in every build profile — on a double release or on
    /// releasing a line this allocator never produced. Either would hand
    /// the same "clean" ancilla to two owners later, silently synthesizing
    /// aliased, wrong circuits.
    pub fn release(&mut self, line: usize) {
        assert!(
            line >= self.reserved && line < self.next,
            "release of line {line}, which this allocator never produced \
             (fresh lines are {}..{})",
            self.reserved,
            self.next
        );
        assert!(
            !self.in_free[line - self.reserved],
            "double release of line {line}: it would be handed out to two owners"
        );
        self.in_free[line - self.reserved] = true;
        self.free.push(line);
    }

    /// Returns many lines to the pool.
    pub fn release_many<I: IntoIterator<Item = usize>>(&mut self, lines: I) {
        for l in lines {
            self.release(l);
        }
    }

    /// [`LineAllocator::release`], additionally recording that the release
    /// happened after `gate_position` gates of the circuit under
    /// construction. The recorded schedule ([`LineAllocator::release_events`])
    /// lets the static lifecycle analysis check release discipline —
    /// use-after-release and release-of-live — against the built circuit.
    ///
    /// # Panics
    ///
    /// As [`LineAllocator::release`].
    pub fn release_at(&mut self, line: usize, gate_position: usize) {
        self.release(line);
        self.events.push((line, gate_position));
    }

    /// The `(line, gate position)` release schedule recorded by
    /// [`LineAllocator::release_at`], in release order.
    pub fn release_events(&self) -> &[(usize, usize)] {
        &self.events
    }

    /// Highest number of simultaneously live lines seen so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_is_reversible() {
        let mut c = Circuit::new(4);
        c.not(0);
        c.cnot(0, 1);
        c.toffoli(1, 2, 3);
        c.swap(0, 3);
        let inv = c.inverse();
        for x in 0..16u64 {
            assert_eq!(inv.simulate_u64(c.simulate_u64(x)), x);
        }
    }

    #[test]
    fn permutation_is_bijective() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        c.cnot(2, 0);
        c.not(1);
        let perm = c.permutation().expect("3 lines is within the cap");
        let mut seen = [false; 8];
        for &y in &perm {
            assert!(!seen[y as usize], "not a permutation");
            seen[y as usize] = true;
        }
    }

    #[test]
    fn extend_remapped_relocates_gates() {
        let mut inner = Circuit::new(2);
        inner.cnot(0, 1);
        let mut outer = Circuit::new(5);
        outer.extend_remapped(&inner, &[4, 2]);
        assert_eq!(outer.gates()[0].target(), 2);
        assert_eq!(outer.gates()[0].controls()[0].line(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_out_of_range_gates() {
        let mut c = Circuit::new(2);
        c.toffoli(0, 1, 2);
    }

    #[test]
    fn wide_simulation_matches_narrow() {
        let mut c = Circuit::new(8);
        c.not(7);
        c.toffoli(7, 0, 3);
        let mut s = BitState::from_u64(8, 0b0000_0001);
        c.apply(&mut s);
        assert_eq!(s.to_u64(), c.simulate_u64(0b0000_0001));
    }

    #[test]
    fn allocator_records_release_events() {
        let mut a = LineAllocator::new(1);
        let x = a.alloc();
        let y = a.alloc();
        a.release_at(x, 7);
        a.release_at(y, 9);
        assert_eq!(a.release_events(), &[(x, 7), (y, 9)]);
        assert_eq!(a.alloc(), y, "release_at really frees the line");
        assert_eq!(
            LineAllocator::new(3).release_events(),
            &[] as &[(usize, usize)]
        );
    }

    #[test]
    fn allocator_reuse_and_high_water() {
        let mut a = LineAllocator::new(2);
        let x = a.alloc();
        let y = a.alloc();
        assert_eq!((x, y), (2, 3));
        a.release(x);
        assert_eq!(a.alloc(), 2);
        assert_eq!(a.high_water(), 4);
        let more = a.alloc_many(3);
        assert_eq!(more.len(), 3);
        assert_eq!(a.high_water(), 7);
    }
}
