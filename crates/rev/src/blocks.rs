//! Hand-crafted reversible arithmetic building blocks.
//!
//! These are the components the paper's *manual* baseline designs are made
//! of: the Cuccaro ripple-carry adder \[25\], controlled adders/subtractors,
//! comparators and textbook shift-and-add multipliers. `qda-arith` uses
//! them to assemble the RESDIV and QNEWTON baselines of Table I.
//!
//! All functions *append* gates to an existing [`Circuit`]; registers are
//! slices of line indices, least-significant bit first. Every block keeps
//! its ancillae clean (returns them to zero).

use crate::circuit::Circuit;
use crate::gate::{Control, Gate};

/// Validates the line arguments of a block builder **before any gate is
/// appended**: every line must fit the circuit and every named role must
/// be disjoint from every other (a register sharing a line with an
/// ancilla or control would silently compute the wrong function). Until
/// this check existed, an out-of-range index could slip through whenever
/// the builder happened to append no gate on it (e.g. a zero bit of
/// [`load_constant`]), only failing much later in simulation.
///
/// # Panics
///
/// Panics with the offending role name on an out-of-range or shared line.
fn validate_roles(circuit: &Circuit, roles: &[(&str, &[usize])]) {
    let n = circuit.num_lines();
    let mut owner: Vec<Option<&str>> = vec![None; n];
    for (name, lines) in roles {
        for &line in *lines {
            assert!(
                line < n,
                "block register `{name}` line {line} out of range for a {n}-line circuit"
            );
            match owner[line] {
                Some(prev) => panic!(
                    "block registers `{prev}` and `{name}` share line {line}; \
                     roles must be disjoint"
                ),
                None => owner[line] = Some(name),
            }
        }
    }
}

/// [`validate_roles`] plus the optional carry/borrow and control roles
/// shared by the adder family.
fn validate_adder_roles(
    circuit: &Circuit,
    a: &[usize],
    b: &[usize],
    ancilla: usize,
    carry_out: Option<usize>,
    control: Option<Control>,
) {
    let carry: Vec<usize> = carry_out.into_iter().collect();
    let ctl: Vec<usize> = control.into_iter().map(Control::line).collect();
    validate_roles(
        circuit,
        &[
            ("a", a),
            ("b", b),
            ("ancilla", &[ancilla]),
            ("carry_out", &carry),
            ("control", &ctl),
        ],
    );
}

/// Appends `b ← b + a (mod 2^n)` using the Cuccaro/CDKM ripple-carry adder.
///
/// * `a`, `b` — equal-width registers; `a` is preserved.
/// * `ancilla` — one clean (zero) line, returned clean.
/// * `carry_out` — optional line receiving `carry XOR`; must be clean to
///   read the true carry.
/// * `control` — optional extra control making the whole addition
///   conditional (only gates writing into `b`/`carry_out` are controlled;
///   the ripple scaffolding self-cancels when the control is off).
///
/// # Panics
///
/// Panics if the registers differ in width or are empty.
///
/// # Example
///
/// ```
/// use qda_rev::blocks::cuccaro_add;
/// use qda_rev::circuit::Circuit;
/// use qda_rev::state::BitState;
///
/// let mut c = Circuit::new(9); // a:0..4, b:4..8, ancilla:8
/// cuccaro_add(&mut c, &[0, 1, 2, 3], &[4, 5, 6, 7], 8, None, None);
/// let mut s = BitState::zeros(9);
/// s.write_register(&[0, 1, 2, 3], 5);
/// s.write_register(&[4, 5, 6, 7], 9);
/// c.apply(&mut s);
/// assert_eq!(s.read_register(&[4, 5, 6, 7]), 14);
/// ```
pub fn cuccaro_add(
    circuit: &mut Circuit,
    a: &[usize],
    b: &[usize],
    ancilla: usize,
    carry_out: Option<usize>,
    control: Option<Control>,
) {
    assert_eq!(a.len(), b.len(), "register width mismatch");
    assert!(!a.is_empty(), "empty registers");
    validate_adder_roles(circuit, a, b, ancilla, carry_out, control);
    let n = a.len();
    // Gate helpers: `plain` gates self-cancel when the control is off,
    // `ctl` gates write into the result and carry the extra control.
    let ctl = |circuit: &mut Circuit, gate: Gate| match control {
        Some(c) => circuit.add_gate(gate.with_control(c)),
        None => circuit.add_gate(gate),
    };
    // Carry lines: c_0 = ancilla, c_i = a[i-1] for i >= 1.
    let carry = |i: usize| if i == 0 { ancilla } else { a[i - 1] };
    // MAJ sweep.
    for i in 0..n {
        ctl(circuit, Gate::cnot(a[i], b[i]));
        circuit.cnot(a[i], carry(i));
        circuit.toffoli(carry(i), b[i], a[i]);
    }
    if let Some(z) = carry_out {
        ctl(circuit, Gate::cnot(a[n - 1], z));
    }
    // UMA sweep (reverse order).
    for i in (0..n).rev() {
        circuit.toffoli(carry(i), b[i], a[i]);
        circuit.cnot(a[i], carry(i));
        ctl(circuit, Gate::cnot(carry(i), b[i]));
    }
}

/// Appends `b ← b − a (mod 2^n)` via the identity `b − a = ¬(¬b + a)`.
///
/// `borrow_out`, if given, receives `XOR` of the borrow flag
/// (`1` iff `b < a` as unsigned integers).
///
/// The complementing X gates are unconditional — with `control` off they
/// cancel pairwise, so the subtraction as a whole is conditional.
///
/// # Panics
///
/// Panics if the registers differ in width or are empty.
pub fn cuccaro_sub(
    circuit: &mut Circuit,
    a: &[usize],
    b: &[usize],
    ancilla: usize,
    borrow_out: Option<usize>,
    control: Option<Control>,
) {
    // Validate before the complementing NOTs: a bad register must not
    // leave half-applied flips behind.
    validate_adder_roles(circuit, a, b, ancilla, borrow_out, control);
    for &line in b {
        circuit.not(line);
    }
    // ¬b + a carries out exactly when b < a… check: ¬b + a = 2^n−1−b+a ≥ 2^n
    // iff a ≥ b+1 iff b < a.
    cuccaro_add(circuit, a, b, ancilla, borrow_out, control);
    for &line in b {
        circuit.not(line);
    }
}

/// Appends gates computing `target ^= (b < a)` (unsigned), preserving `a`
/// and `b`. Costs one subtraction + one addition.
///
/// # Panics
///
/// Panics if the registers differ in width or are empty.
pub fn less_than(circuit: &mut Circuit, a: &[usize], b: &[usize], ancilla: usize, target: usize) {
    cuccaro_sub(circuit, a, b, ancilla, Some(target), None);
    cuccaro_add(circuit, a, b, ancilla, None, None);
}

/// Appends `out ← out + a·b` (textbook shift-and-add), preserving `a` and
/// `b`.
///
/// Requirements: `out.len() >= a.len() + b.len()`, and the high
/// `out[a.len()..]` lines above the current partial-sum width must be clean
/// for carries to land correctly — which holds when `out` starts at zero
/// (the usual case).
///
/// # Panics
///
/// Panics if `out` is narrower than `a.len() + b.len()`.
pub fn multiply_add(
    circuit: &mut Circuit,
    a: &[usize],
    b: &[usize],
    out: &[usize],
    ancilla: usize,
) {
    assert!(
        out.len() >= a.len() + b.len(),
        "product register too narrow: {} < {} + {}",
        out.len(),
        a.len(),
        b.len()
    );
    validate_roles(
        circuit,
        &[("a", a), ("b", b), ("out", out), ("ancilla", &[ancilla])],
    );
    let na = a.len();
    for (i, &bi) in b.iter().enumerate() {
        let window: Vec<usize> = out[i..i + na].to_vec();
        cuccaro_add(
            circuit,
            a,
            &window,
            ancilla,
            Some(out[i + na]),
            Some(Control::positive(bi)),
        );
    }
}

/// Appends CNOTs copying register `src` into clean register `dst`
/// (`dst ^= src`).
///
/// # Panics
///
/// Panics if the widths differ.
pub fn copy_register(circuit: &mut Circuit, src: &[usize], dst: &[usize]) {
    assert_eq!(src.len(), dst.len(), "register width mismatch");
    validate_roles(circuit, &[("src", src), ("dst", dst)]);
    for (&s, &d) in src.iter().zip(dst) {
        circuit.cnot(s, d);
    }
}

/// Appends X gates writing the classical constant `value` into a clean
/// register.
pub fn load_constant(circuit: &mut Circuit, dst: &[usize], value: u64) {
    validate_roles(circuit, &[("dst", dst)]);
    for (i, &d) in dst.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            circuit.not(d);
        }
    }
}

/// Appends X gates writing an arbitrary-width constant (bits LSB first)
/// into a clean register. Bits beyond `dst.len()` are ignored.
pub fn load_constant_bits(circuit: &mut Circuit, dst: &[usize], bits: &[bool]) {
    validate_roles(circuit, &[("dst", dst)]);
    for (i, &d) in dst.iter().enumerate() {
        if *bits.get(i).unwrap_or(&false) {
            circuit.not(d);
        }
    }
}

/// Appends `b ← b + value (mod 2^n)` for a classical constant, using a
/// scratch register that is loaded, added and unloaded.
///
/// `scratch` must be a clean register of the same width; it is returned
/// clean.
///
/// # Panics
///
/// Panics if widths differ.
pub fn add_constant(
    circuit: &mut Circuit,
    value: u64,
    b: &[usize],
    scratch: &[usize],
    ancilla: usize,
    control: Option<Control>,
) {
    assert_eq!(scratch.len(), b.len(), "register width mismatch");
    let ctl: Vec<usize> = control.into_iter().map(Control::line).collect();
    validate_roles(
        circuit,
        &[
            ("b", b),
            ("scratch", scratch),
            ("ancilla", &[ancilla]),
            ("control", &ctl),
        ],
    );
    load_constant(circuit, scratch, value);
    cuccaro_add(circuit, scratch, b, ancilla, None, control);
    load_constant(circuit, scratch, value);
}

/// Appends swaps realizing a cyclic left rotation of the register lines by
/// `k` positions (value × 2^k mod (2^n − 1)-ish relabeling; used for the
/// constant shifts of the Newton designs, where a *logical* shift is a pure
/// relabeling and only a rotation needs gates).
pub fn rotate_left(circuit: &mut Circuit, reg: &[usize], k: usize) {
    validate_roles(circuit, &[("reg", reg)]);
    let n = reg.len();
    if n == 0 {
        return;
    }
    let k = k % n;
    if k == 0 {
        return;
    }
    // Reversal trick: rotate = reverse(whole) after reversing both halves.
    let mut order: Vec<usize> = (0..n).collect();
    order.rotate_left(n - k);
    // Apply the permutation with swaps (cycle decomposition).
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut cycle = vec![start];
        let mut cur = order[start];
        while cur != start {
            cycle.push(cur);
            cur = order[cur];
        }
        for &c in &cycle {
            visited[c] = true;
        }
        for w in cycle.windows(2) {
            circuit.swap(reg[w[0]], reg[w[1]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::BitState;

    fn run(circuit: &Circuit, writes: &[(&[usize], u64)], read: &[usize]) -> u64 {
        let mut s = BitState::zeros(circuit.num_lines());
        for (reg, v) in writes {
            s.write_register(reg, *v);
        }
        circuit.apply(&mut s);
        s.read_register(read)
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let a: Vec<usize> = (0..4).collect();
        let b: Vec<usize> = (4..8).collect();
        let mut c = Circuit::new(10);
        cuccaro_add(&mut c, &a, &b, 8, Some(9), None);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut s = BitState::zeros(10);
                s.write_register(&a, x);
                s.write_register(&b, y);
                c.apply(&mut s);
                assert_eq!(s.read_register(&b), (x + y) & 15, "sum {x}+{y}");
                assert_eq!(s.read_register(&a), x, "addend preserved");
                assert!(!s.get(8), "ancilla clean");
                assert_eq!(u64::from(s.get(9)), (x + y) >> 4, "carry {x}+{y}");
            }
        }
    }

    #[test]
    fn adder_1bit_edge_case() {
        let mut c = Circuit::new(4);
        cuccaro_add(&mut c, &[0], &[1], 2, Some(3), None);
        for x in 0..2u64 {
            for y in 0..2u64 {
                let mut s = BitState::zeros(4);
                s.write_register(&[0], x);
                s.write_register(&[1], y);
                c.apply(&mut s);
                assert_eq!(s.read_register(&[1]), (x + y) & 1);
                assert_eq!(u64::from(s.get(3)), (x + y) >> 1);
            }
        }
    }

    #[test]
    fn controlled_adder_obeys_control() {
        let a: Vec<usize> = (0..3).collect();
        let b: Vec<usize> = (3..6).collect();
        let mut c = Circuit::new(9);
        cuccaro_add(&mut c, &a, &b, 6, Some(7), Some(Control::positive(8)));
        for ctl in 0..2u64 {
            for x in 0..8u64 {
                for y in 0..8u64 {
                    let mut s = BitState::zeros(9);
                    s.write_register(&a, x);
                    s.write_register(&b, y);
                    s.set(8, ctl == 1);
                    c.apply(&mut s);
                    let expected = if ctl == 1 { (x + y) & 7 } else { y };
                    assert_eq!(s.read_register(&b), expected, "ctl={ctl} {x}+{y}");
                    assert_eq!(s.read_register(&a), x);
                    assert!(!s.get(6), "ancilla clean");
                    let exp_carry = if ctl == 1 { (x + y) >> 3 } else { 0 };
                    assert_eq!(u64::from(s.get(7)), exp_carry);
                }
            }
        }
    }

    #[test]
    fn subtractor_and_borrow() {
        let a: Vec<usize> = (0..4).collect();
        let b: Vec<usize> = (4..8).collect();
        let mut c = Circuit::new(10);
        cuccaro_sub(&mut c, &a, &b, 8, Some(9), None);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut s = BitState::zeros(10);
                s.write_register(&a, x);
                s.write_register(&b, y);
                c.apply(&mut s);
                assert_eq!(s.read_register(&b), y.wrapping_sub(x) & 15, "{y}-{x}");
                assert_eq!(u64::from(s.get(9)), u64::from(y < x), "borrow {y}<{x}");
                assert!(!s.get(8));
            }
        }
    }

    #[test]
    fn controlled_subtractor() {
        let a: Vec<usize> = (0..3).collect();
        let b: Vec<usize> = (3..6).collect();
        let mut c = Circuit::new(8);
        cuccaro_sub(&mut c, &a, &b, 6, None, Some(Control::positive(7)));
        for ctl in 0..2u64 {
            for x in 0..8u64 {
                for y in 0..8u64 {
                    let mut s = BitState::zeros(8);
                    s.write_register(&a, x);
                    s.write_register(&b, y);
                    s.set(7, ctl == 1);
                    c.apply(&mut s);
                    let expected = if ctl == 1 { y.wrapping_sub(x) & 7 } else { y };
                    assert_eq!(s.read_register(&b), expected, "ctl={ctl} {y}-{x}");
                }
            }
        }
    }

    #[test]
    fn comparator_preserves_operands() {
        let a: Vec<usize> = (0..3).collect();
        let b: Vec<usize> = (3..6).collect();
        let mut c = Circuit::new(8);
        less_than(&mut c, &a, &b, 6, 7);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut s = BitState::zeros(8);
                s.write_register(&a, x);
                s.write_register(&b, y);
                c.apply(&mut s);
                assert_eq!(u64::from(s.get(7)), u64::from(y < x), "{y} < {x}");
                assert_eq!(s.read_register(&a), x);
                assert_eq!(s.read_register(&b), y);
                assert!(!s.get(6));
            }
        }
    }

    #[test]
    fn multiplier_3x3() {
        let a: Vec<usize> = (0..3).collect();
        let b: Vec<usize> = (3..6).collect();
        let out: Vec<usize> = (6..12).collect();
        let mut c = Circuit::new(13);
        multiply_add(&mut c, &a, &b, &out, 12);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut s = BitState::zeros(13);
                s.write_register(&a, x);
                s.write_register(&b, y);
                c.apply(&mut s);
                assert_eq!(s.read_register(&out), x * y, "{x}*{y}");
                assert_eq!(s.read_register(&a), x);
                assert_eq!(s.read_register(&b), y);
                assert!(!s.get(12));
            }
        }
    }

    #[test]
    fn constant_addition() {
        let b: Vec<usize> = (0..4).collect();
        let scratch: Vec<usize> = (4..8).collect();
        let mut c = Circuit::new(9);
        add_constant(&mut c, 11, &b, &scratch, 8, None);
        for y in 0..16u64 {
            let mut s = BitState::zeros(9);
            s.write_register(&b, y);
            c.apply(&mut s);
            assert_eq!(s.read_register(&b), (y + 11) & 15);
            assert_eq!(s.read_register(&scratch), 0, "scratch clean");
        }
    }

    #[test]
    fn rotation_by_swaps() {
        let reg: Vec<usize> = (0..5).collect();
        let mut c = Circuit::new(5);
        rotate_left(&mut c, &reg, 2);
        for v in [0b00001u64, 0b10110, 0b11111, 0b01010] {
            let mut s = BitState::zeros(5);
            s.write_register(&reg, v);
            c.apply(&mut s);
            let expected = ((v << 2) | (v >> 3)) & 0b11111;
            assert_eq!(s.read_register(&reg), expected, "rot {v:#07b}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn load_constant_rejects_out_of_range_lines_even_for_zero_bits() {
        // Bit 9 of the value is 0, so no gate would ever touch line 9 —
        // the old code accepted this silently.
        let mut c = Circuit::new(4);
        load_constant(&mut c, &[0, 1, 9], 0b011);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rotate_left_rejects_out_of_range_lines_even_for_zero_rotation() {
        let mut c = Circuit::new(3);
        rotate_left(&mut c, &[0, 1, 7], 0);
    }

    #[test]
    #[should_panic(expected = "share line")]
    fn adder_rejects_overlapping_registers_before_appending() {
        let mut c = Circuit::new(10);
        cuccaro_add(&mut c, &[0, 1, 2], &[2, 3, 4], 8, None, None);
    }

    #[test]
    #[should_panic(expected = "ancilla")]
    fn adder_rejects_ancilla_inside_a_register() {
        let mut c = Circuit::new(10);
        cuccaro_add(&mut c, &[0, 1, 2], &[3, 4, 5], 4, None, None);
    }

    #[test]
    fn subtractor_validation_fires_before_any_gate_lands() {
        let mut c = Circuit::new(8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cuccaro_sub(&mut c, &[0, 1], &[1, 2], 6, None, None);
        }));
        assert!(result.is_err(), "overlap must be rejected");
        assert_eq!(c.num_gates(), 0, "no half-applied complementing NOTs");
    }

    #[test]
    #[should_panic(expected = "share line")]
    fn copy_register_rejects_aliased_lines() {
        let mut c = Circuit::new(4);
        copy_register(&mut c, &[0, 1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "control")]
    fn add_constant_rejects_control_inside_target_register() {
        let mut c = Circuit::new(9);
        add_constant(&mut c, 3, &[0, 1], &[2, 3], 4, Some(Control::positive(1)));
    }

    #[test]
    fn copy_and_load() {
        let mut c = Circuit::new(8);
        load_constant(&mut c, &[0, 1, 2, 3], 0b1001);
        copy_register(&mut c, &[0, 1, 2, 3], &[4, 5, 6, 7]);
        let out = run(&c, &[], &[4, 5, 6, 7]);
        assert_eq!(out, 0b1001);
    }
}
