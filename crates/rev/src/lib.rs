//! Reversible circuits over the mixed-polarity multiple-controlled Toffoli
//! (MPMCT) gate library, plus the quantum-cost machinery of the paper.
//!
//! Provides:
//!
//! * [`gate::Gate`] / [`circuit::Circuit`] — the reversible-circuit IR all
//!   synthesis back-ends emit,
//! * [`packed`] — the packed-mask struct-of-arrays gate storage behind
//!   [`circuit::Circuit`]: control/polarity bit masks instead of per-gate
//!   control vectors, with O(1) firing/support/commutation tests,
//! * [`cost`] — T-count and qubit accounting (the paper's two cost axes),
//! * [`state`] / [`batchsim`] / [`equiv`] — bit-exact scalar and 64-way
//!   bit-parallel simulation, and equivalence checking on top of them
//!   (the role ABC `cec` plays in the paper),
//! * [`opt`] — post-synthesis peephole optimization (commutation-aware
//!   cancellation, control merging, NOT-propagation), every run
//!   machine-checkable against the original via [`batchsim`],
//! * [`resynth`] — windowed resynthesis: bounded-support subcircuits are
//!   replayed into explicit permutations and re-synthesized by pluggable
//!   [`resynth::WindowSynthesizer`] back-ends, with the same per-splice
//!   and whole-circuit soundness gates as [`opt`],
//! * [`blocks`] — hand-crafted reversible arithmetic (Cuccaro ripple-carry
//!   adder, controlled adders, comparators, shift-and-add multipliers) used
//!   by the manual RESDIV/QNEWTON baselines.
//!
//! # Example
//!
//! ```
//! use qda_rev::circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.toffoli(0, 1, 2);
//! c.cnot(0, 1);
//! assert_eq!(c.simulate_u64(0b011), 0b101); // target flips, then b ^= a
//! ```

pub mod batchsim;
pub mod blocks;
pub mod circuit;
pub mod cost;
pub mod decompose;
pub mod equiv;
pub mod gate;
pub mod io;
pub mod opt;
pub mod packed;
pub mod resynth;
pub mod state;
#[cfg(feature = "testkit")]
pub mod testkit;

pub use batchsim::BatchState;
pub use circuit::{Circuit, LineAllocator, TooWideError};
pub use cost::CircuitCost;
pub use gate::{Control, Gate};
pub use opt::{optimize, optimize_checked, OptOptions, OptStats};
pub use packed::{GateArena, PackedGate, PackedGateBuf};
pub use resynth::{
    resynthesize, resynthesize_checked, ResynthOptions, ResynthStats, Resynthesized,
    WindowSynthesizer,
};
pub use state::BitState;
