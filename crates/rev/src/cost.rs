//! Quantum cost accounting: T-count and qubit count.
//!
//! Following the paper (and its references Maslov \[26\] and Barenco et
//! al. \[27\]), the T gate dominates the cost of fault-tolerant execution, so
//! circuits are costed by the number of T gates required to decompose each
//! MPMCT gate:
//!
//! | controls `c` | T-count |
//! |--------------|---------|
//! | 0 (NOT)      | 0       |
//! | 1 (CNOT)     | 0       |
//! | 2 (Toffoli)  | 7       |
//! | `c ≥ 3`      | `8c − 9`|
//!
//! The `c ≥ 3` row is the linear-in-controls decomposition with one
//! borrowed (dirty) ancilla; it extends the Toffoli value continuously
//! (`8·2 − 9 = 7`). Negative controls are free: they conjugate controls
//! with X gates, which are Clifford.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt;

/// T-count of a single MPMCT gate with `controls` controls.
///
/// # Example
///
/// ```
/// use qda_rev::cost::t_count_mct;
///
/// assert_eq!(t_count_mct(0), 0);
/// assert_eq!(t_count_mct(1), 0);
/// assert_eq!(t_count_mct(2), 7);
/// assert_eq!(t_count_mct(3), 15);
/// assert_eq!(t_count_mct(27), 207);
/// ```
pub fn t_count_mct(controls: usize) -> u64 {
    match controls {
        0 | 1 => 0,
        c => 8 * c as u64 - 9,
    }
}

/// T-count of one gate.
pub fn t_count_gate(gate: &Gate) -> u64 {
    t_count_mct(gate.num_controls())
}

/// Aggregated cost figures of a reversible circuit — the columns of the
/// paper's result tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CircuitCost {
    /// Number of circuit lines (qubits).
    pub qubits: usize,
    /// Total gate count.
    pub gates: usize,
    /// Gates with zero controls.
    pub not_count: usize,
    /// Gates with one control.
    pub cnot_count: usize,
    /// Gates with exactly two controls.
    pub toffoli_count: usize,
    /// Gates with three or more controls.
    pub mct_count: usize,
    /// Largest control count of any gate.
    pub max_controls: usize,
    /// Total T-count under the model above.
    pub t_count: u64,
}

impl CircuitCost {
    /// Costs a circuit. Walks the packed arena directly: the control
    /// count of each gate is a popcount over its control mask words, so
    /// no gate is ever materialized.
    pub fn of(circuit: &Circuit) -> Self {
        let mut cost = CircuitCost {
            qubits: circuit.num_lines(),
            ..Default::default()
        };
        for (_, g) in circuit.packed() {
            cost.gates += 1;
            let c = g.num_controls();
            match c {
                0 => cost.not_count += 1,
                1 => cost.cnot_count += 1,
                2 => cost.toffoli_count += 1,
                _ => cost.mct_count += 1,
            }
            cost.max_controls = cost.max_controls.max(c);
            cost.t_count += t_count_mct(c);
        }
        cost
    }
}

impl fmt::Display for CircuitCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} gates (NOT {}, CNOT {}, TOF {}, MCT {}), T-count {}",
            self.qubits,
            self.gates,
            self.not_count,
            self.cnot_count,
            self.toffoli_count,
            self.mct_count,
            self.t_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Control;

    #[test]
    fn model_values() {
        assert_eq!(t_count_mct(2), 7);
        // Continuity at the Toffoli boundary: 8*2-9 == 7.
        assert_eq!(8 * 2 - 9, 7);
        assert_eq!(t_count_mct(4), 23);
        assert_eq!(t_count_mct(10), 71);
    }

    #[test]
    fn negative_controls_cost_nothing_extra() {
        let pos = Gate::toffoli(0, 1, 2);
        let neg = Gate::mct(vec![Control::negative(0), Control::negative(1)], 2);
        assert_eq!(t_count_gate(&pos), t_count_gate(&neg));
    }

    #[test]
    fn circuit_aggregation() {
        let mut c = Circuit::new(5);
        c.not(0);
        c.cnot(0, 1);
        c.toffoli(0, 1, 2);
        c.mct(
            vec![
                Control::positive(0),
                Control::positive(1),
                Control::positive(2),
                Control::negative(3),
            ],
            4,
        );
        let cost = CircuitCost::of(&c);
        assert_eq!(cost.qubits, 5);
        assert_eq!(cost.gates, 4);
        assert_eq!(cost.not_count, 1);
        assert_eq!(cost.cnot_count, 1);
        assert_eq!(cost.toffoli_count, 1);
        assert_eq!(cost.mct_count, 1);
        assert_eq!(cost.max_controls, 4);
        assert_eq!(cost.t_count, 7 + (8 * 4 - 9));
    }
}
