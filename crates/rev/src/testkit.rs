//! Shared proptest strategies for the differential suites (feature
//! `testkit`).
//!
//! Every crate that differential-tests reversible-circuit machinery —
//! `qda-rev`'s own suites, `qda-revsynth`'s synthesis properties, and the
//! flow-level suites in `qda-core` — needs the same two generators: a
//! random MPMCT cascade and a random permutation. This module is the one
//! home for them, so the suites stop re-rolling their own (subtly
//! different) copies and a generator fix reaches every consumer at once.
//!
//! Enable it from a dependent's `[dev-dependencies]`:
//!
//! ```toml
//! qda-rev = { workspace = true, features = ["testkit"] }
//! ```

use crate::circuit::Circuit;
use crate::gate::{Control, Gate};
use proptest::prelude::*;

/// A random mixed-polarity MPMCT circuit: the line count is drawn from
/// `lines`, followed by up to `max_gates` gates whose target, control
/// set, and control polarities are derived from three random words.
pub fn arb_mpmct_circuit(
    lines: std::ops::Range<usize>,
    max_gates: usize,
) -> impl Strategy<Value = Circuit> {
    (
        lines,
        prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..max_gates),
    )
        .prop_map(|(lines, raw)| {
            let mut c = Circuit::new(lines);
            for (tsel, cmask, pmask) in raw {
                let target = (tsel % lines as u64) as usize;
                let controls: Vec<Control> = (0..lines)
                    .filter(|&l| l != target && (cmask >> l) & 1 == 1)
                    .map(|l| {
                        if (pmask >> l) & 1 == 1 {
                            Control::positive(l)
                        } else {
                            Control::negative(l)
                        }
                    })
                    .collect();
                c.add_gate(Gate::mct(controls, target));
            }
            c
        })
}

/// A uniformly shuffled permutation of `0..2^r` (Fisher–Yates driven by a
/// random seed word), in the explicit `Vec<u64>` form the functional
/// synthesis back-ends consume.
///
/// # Panics
///
/// Panics if `r > 16` (the explicit table would not fit test budgets).
pub fn arb_permutation(r: usize) -> impl Strategy<Value = Vec<u64>> {
    assert!(r <= 16, "explicit permutation strategies capped at r = 16");
    let size = 1usize << r;
    any::<u64>().prop_map(move |seed| {
        // SplitMix64 stream: cheap, deterministic in the drawn seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut perm: Vec<u64> = (0..size as u64).collect();
        for i in (1..size).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    })
}
