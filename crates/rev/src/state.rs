//! Classical bit-state simulation of reversible circuits.
//!
//! Reversible circuits over MPMCT gates permute classical basis states, so
//! simulation is exact bit manipulation — no amplitudes involved. States
//! over arbitrarily many lines are packed 64 lines per word, which keeps
//! simulation of the million-line hierarchical circuits of Table IV
//! tractable.

use crate::gate::Gate;
use crate::packed::PackedGate;

/// A classical assignment to the lines of a reversible circuit.
///
/// # Example
///
/// ```
/// use qda_rev::state::BitState;
///
/// let mut s = BitState::zeros(100);
/// s.set(70, true);
/// assert!(s.get(70));
/// assert!(!s.get(69));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitState {
    num_lines: usize,
    words: Vec<u64>,
}

impl BitState {
    /// The all-zero state on `num_lines` lines.
    pub fn zeros(num_lines: usize) -> Self {
        Self {
            num_lines,
            words: vec![0; num_lines.div_ceil(64).max(1)],
        }
    }

    /// Builds a state on `num_lines` lines from a ≤64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `x` has bits beyond `num_lines`.
    pub fn from_u64(num_lines: usize, x: u64) -> Self {
        if num_lines < 64 {
            assert!(x < (1u64 << num_lines), "value exceeds line count");
        }
        let mut s = Self::zeros(num_lines);
        s.words[0] = x;
        s
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Value of one line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn get(&self, line: usize) -> bool {
        assert!(line < self.num_lines, "line {line} out of range");
        (self.words[line >> 6] >> (line & 63)) & 1 == 1
    }

    /// Sets one line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn set(&mut self, line: usize, value: bool) {
        assert!(line < self.num_lines, "line {line} out of range");
        if value {
            self.words[line >> 6] |= 1 << (line & 63);
        } else {
            self.words[line >> 6] &= !(1 << (line & 63));
        }
    }

    /// Flips one line.
    pub fn flip(&mut self, line: usize) {
        assert!(line < self.num_lines, "line {line} out of range");
        self.words[line >> 6] ^= 1 << (line & 63);
    }

    /// Applies one gate in place.
    pub fn apply(&mut self, gate: &Gate) {
        let fires = gate
            .controls()
            .iter()
            .all(|c| self.get(c.line()) == c.is_positive());
        if fires {
            self.flip(gate.target());
        }
    }

    /// Applies one packed gate in place: the firing test is a masked
    /// compare over the state words (`(state ^ pol) & ctrl == 0` per
    /// word) instead of a per-control loop.
    ///
    /// # Panics
    ///
    /// Panics if the gate's target is out of range.
    pub fn apply_packed(&mut self, gate: &PackedGate<'_>) {
        if gate.fires_words(&self.words) {
            self.flip(gate.target());
        }
    }

    /// Reads an unsigned integer from a slice of lines
    /// (`lines[0]` = least-significant bit).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 lines are requested.
    pub fn read_register(&self, lines: &[usize]) -> u64 {
        assert!(lines.len() <= 64, "register too wide");
        lines
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &l)| acc | (u64::from(self.get(l)) << i))
    }

    /// Writes an unsigned integer to a slice of lines.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 lines are addressed.
    pub fn write_register(&mut self, lines: &[usize], value: u64) {
        assert!(lines.len() <= 64, "register too wide");
        for (i, &l) in lines.iter().enumerate() {
            self.set(l, (value >> i) & 1 == 1);
        }
    }

    /// The state as a ≤64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if the state has more than 64 lines.
    pub fn to_u64(&self) -> u64 {
        assert!(self.num_lines <= 64, "state too wide for u64");
        self.words[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Control, Gate};

    #[test]
    fn round_trip_u64() {
        let s = BitState::from_u64(10, 0b1010011);
        assert_eq!(s.to_u64(), 0b1010011);
    }

    #[test]
    fn wide_states() {
        let mut s = BitState::zeros(200);
        s.set(0, true);
        s.set(64, true);
        s.set(199, true);
        assert!(s.get(0) && s.get(64) && s.get(199));
        assert!(!s.get(128));
        s.flip(64);
        assert!(!s.get(64));
    }

    #[test]
    fn gate_application_beyond_word_boundary() {
        let mut s = BitState::zeros(130);
        s.set(100, true);
        let g = Gate::mct(vec![Control::positive(100)], 129);
        s.apply(&g);
        assert!(s.get(129));
        let h = Gate::mct(vec![Control::negative(100)], 128);
        s.apply(&h);
        assert!(!s.get(128));
    }

    #[test]
    fn register_io() {
        let mut s = BitState::zeros(100);
        let reg: Vec<usize> = (90..98).collect();
        s.write_register(&reg, 0xA5);
        assert_eq!(s.read_register(&reg), 0xA5);
        // Scattered register.
        let scattered = [3usize, 70, 5, 99];
        s.write_register(&scattered, 0b1011);
        assert_eq!(s.read_register(&scattered), 0b1011);
        assert!(s.get(3) && s.get(70) && !s.get(5) && s.get(99));
    }
}
