//! Mixed-polarity multiple-controlled Toffoli gates.

use std::fmt;

/// A single control of an MPMCT gate: a line index plus a polarity.
///
/// A positive control triggers on `1`, a negative control on `0` (the
/// "mixed polarity" of the paper's gate library — negative controls are
/// free at the T-count level because they are mere X conjugations).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Control {
    line: u32,
    positive: bool,
}

impl Control {
    /// A positive control on `line`.
    pub fn positive(line: usize) -> Self {
        Self {
            line: line as u32,
            positive: true,
        }
    }

    /// A negative control on `line`.
    pub fn negative(line: usize) -> Self {
        Self {
            line: line as u32,
            positive: false,
        }
    }

    /// The controlled line.
    pub fn line(self) -> usize {
        self.line as usize
    }

    /// Whether the control triggers on `1`.
    pub fn is_positive(self) -> bool {
        self.positive
    }
}

/// A mixed-polarity multiple-controlled Toffoli (MPMCT) gate.
///
/// The gate inverts `target` iff every positive control reads `1` and every
/// negative control reads `0`. With zero controls it is a NOT, with one a
/// CNOT, with two a Toffoli.
///
/// # Example
///
/// ```
/// use qda_rev::gate::{Control, Gate};
///
/// let g = Gate::mct(vec![Control::positive(0), Control::negative(2)], 1);
/// assert_eq!(g.num_controls(), 2);
/// assert!(g.fires(0b001)); // line0=1, line2=0
/// assert!(!g.fires(0b101));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Gate {
    controls: Vec<Control>,
    target: u32,
}

impl Gate {
    /// A NOT gate on `target`.
    pub fn not(target: usize) -> Self {
        Self::mct(Vec::new(), target)
    }

    /// A CNOT with positive control `control`.
    pub fn cnot(control: usize, target: usize) -> Self {
        Self::mct(vec![Control::positive(control)], target)
    }

    /// A Toffoli with two positive controls.
    pub fn toffoli(c1: usize, c2: usize, target: usize) -> Self {
        Self::mct(vec![Control::positive(c1), Control::positive(c2)], target)
    }

    /// A general MPMCT gate.
    ///
    /// Controls are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if the target appears among the controls, or if two controls
    /// on the same line have opposite polarity (the gate would never fire —
    /// reject it early as a construction bug).
    pub fn mct(mut controls: Vec<Control>, target: usize) -> Self {
        controls.sort_unstable();
        controls.dedup();
        for w in controls.windows(2) {
            assert!(
                w[0].line != w[1].line,
                "contradictory controls on line {}",
                w[0].line
            );
        }
        assert!(
            controls.iter().all(|c| c.line() != target),
            "target {target} cannot be controlled"
        );
        Self {
            controls,
            target: target as u32,
        }
    }

    /// The controls, sorted by line.
    pub fn controls(&self) -> &[Control] {
        &self.controls
    }

    /// The target line.
    pub fn target(&self) -> usize {
        self.target as usize
    }

    /// Number of controls.
    pub fn num_controls(&self) -> usize {
        self.controls.len()
    }

    /// Whether the gate fires on a ≤64-line assignment word.
    pub fn fires(&self, state: u64) -> bool {
        self.controls
            .iter()
            .all(|c| ((state >> c.line) & 1 == 1) == c.positive)
    }

    /// Applies the gate to a ≤64-line assignment word.
    pub fn apply_u64(&self, state: u64) -> u64 {
        if self.fires(state) {
            state ^ (1 << self.target)
        } else {
            state
        }
    }

    /// Returns a copy with every line shifted by `offset` (for circuit
    /// composition).
    #[must_use]
    pub fn shifted(&self, offset: usize) -> Gate {
        Gate {
            controls: self
                .controls
                .iter()
                .map(|c| Control {
                    line: c.line + offset as u32,
                    positive: c.positive,
                })
                .collect(),
            target: self.target + offset as u32,
        }
    }

    /// Returns a copy with lines remapped through `map` (`map[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if a referenced line is missing from the map.
    #[must_use]
    pub fn remapped(&self, map: &[usize]) -> Gate {
        Gate {
            controls: self
                .controls
                .iter()
                .map(|c| Control {
                    line: map[c.line()] as u32,
                    positive: c.positive,
                })
                .collect(),
            target: map[self.target()] as u32,
        }
    }

    /// Returns a copy with one extra control added.
    ///
    /// # Panics
    ///
    /// Panics on contradictions (same line, mixed polarity, or control on
    /// the target).
    #[must_use]
    pub fn with_control(&self, extra: Control) -> Gate {
        let mut controls = self.controls.clone();
        controls.push(extra);
        Gate::mct(controls, self.target())
    }

    /// Largest line index referenced by the gate.
    pub fn max_line(&self) -> usize {
        self.controls
            .iter()
            .map(|c| c.line())
            .chain(std::iter::once(self.target()))
            .max()
            .expect("gate always has a target")
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T(")?;
        for (i, c) in self.controls.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}{}", if c.is_positive() { "" } else { "!" }, c.line())?;
        }
        write!(f, ";{})", self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_cnot_toffoli_shortcuts() {
        assert_eq!(Gate::not(3).num_controls(), 0);
        assert_eq!(Gate::cnot(0, 1).num_controls(), 1);
        assert_eq!(Gate::toffoli(0, 1, 2).num_controls(), 2);
    }

    #[test]
    fn mixed_polarity_fire_conditions() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(1)], 2);
        assert_eq!(g.apply_u64(0b001), 0b101);
        assert_eq!(g.apply_u64(0b011), 0b011);
        assert_eq!(g.apply_u64(0b000), 0b000);
    }

    #[test]
    fn self_inverse() {
        let g = Gate::mct(vec![Control::positive(1), Control::negative(3)], 0);
        for s in 0..16u64 {
            assert_eq!(g.apply_u64(g.apply_u64(s)), s);
        }
    }

    #[test]
    #[should_panic(expected = "target")]
    fn rejects_control_on_target() {
        let _ = Gate::mct(vec![Control::positive(0)], 0);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn rejects_contradictory_controls() {
        let _ = Gate::mct(vec![Control::positive(0), Control::negative(0)], 1);
    }

    #[test]
    fn shifting_and_remapping() {
        let g = Gate::toffoli(0, 1, 2);
        let s = g.shifted(10);
        assert_eq!(s.target(), 12);
        assert_eq!(s.controls()[0].line(), 10);
        let r = g.remapped(&[5, 4, 3]);
        assert_eq!(r.target(), 3);
        assert_eq!(r.max_line(), 5);
    }

    #[test]
    fn with_control_extends() {
        let g = Gate::cnot(0, 1).with_control(Control::negative(2));
        assert_eq!(g.num_controls(), 2);
        assert!(g.fires(0b001));
        assert!(!g.fires(0b101));
    }

    #[test]
    fn display_format() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(2)], 1);
        assert_eq!(g.to_string(), "T(0,!2;1)");
    }
}
