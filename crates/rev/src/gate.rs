//! Mixed-polarity multiple-controlled Toffoli gates.

use std::fmt;

/// A single control of an MPMCT gate: a line index plus a polarity.
///
/// A positive control triggers on `1`, a negative control on `0` (the
/// "mixed polarity" of the paper's gate library — negative controls are
/// free at the T-count level because they are mere X conjugations).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Control {
    line: u32,
    positive: bool,
}

impl Control {
    /// A positive control on `line`.
    pub fn positive(line: usize) -> Self {
        Self {
            line: line as u32,
            positive: true,
        }
    }

    /// A negative control on `line`.
    pub fn negative(line: usize) -> Self {
        Self {
            line: line as u32,
            positive: false,
        }
    }

    /// The controlled line.
    pub fn line(self) -> usize {
        self.line as usize
    }

    /// Whether the control triggers on `1`.
    pub fn is_positive(self) -> bool {
        self.positive
    }
}

/// Why a control/target combination cannot form a well-formed MPMCT gate.
///
/// Produced by [`Gate::validate`] and [`Gate::try_mct`]; the panicking
/// constructors ([`Gate::mct`] and friends) render these as their panic
/// messages, so every construction path rejects malformed gates with the
/// same wording.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GateError {
    /// Two controls sit on the same line with opposite polarity — the
    /// gate could never fire.
    ContradictoryControls {
        /// The doubly-controlled line.
        line: usize,
    },
    /// The target line also appears as a control.
    ControlOnTarget {
        /// The target line.
        target: usize,
    },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::ContradictoryControls { line } => {
                write!(f, "contradictory controls on line {line}")
            }
            GateError::ControlOnTarget { target } => {
                write!(f, "target {target} cannot be controlled")
            }
        }
    }
}

impl std::error::Error for GateError {}

/// A mixed-polarity multiple-controlled Toffoli (MPMCT) gate.
///
/// The gate inverts `target` iff every positive control reads `1` and every
/// negative control reads `0`. With zero controls it is a NOT, with one a
/// CNOT, with two a Toffoli.
///
/// Controls are kept sorted by line, so structural equality (`==`) is
/// canonical — two gates constructed from the same control set in any
/// order compare equal, which is what lets the peephole optimizer
/// ([`crate::opt`]) detect cancelling pairs structurally (and what backs
/// the binary-search [`Gate::control_on`] lookup its commutation
/// analysis runs on). The derived `Ord` is the matching total order, for
/// callers that need canonically sorted gate sequences.
///
/// # Example
///
/// ```
/// use qda_rev::gate::{Control, Gate};
///
/// let g = Gate::mct(vec![Control::positive(0), Control::negative(2)], 1);
/// assert_eq!(g.num_controls(), 2);
/// assert!(g.fires(0b001)); // line0=1, line2=0
/// assert!(!g.fires(0b101));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Gate {
    controls: Vec<Control>,
    target: u32,
}

impl Gate {
    /// A NOT gate on `target`.
    pub fn not(target: usize) -> Self {
        Self::mct(Vec::new(), target)
    }

    /// A CNOT with positive control `control`.
    pub fn cnot(control: usize, target: usize) -> Self {
        Self::mct(vec![Control::positive(control)], target)
    }

    /// A Toffoli with two positive controls.
    pub fn toffoli(c1: usize, c2: usize, target: usize) -> Self {
        Self::mct(vec![Control::positive(c1), Control::positive(c2)], target)
    }

    /// A general MPMCT gate.
    ///
    /// Controls are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if the target appears among the controls, or if two controls
    /// on the same line have opposite polarity (the gate would never fire —
    /// reject it early as a construction bug).
    pub fn mct(controls: Vec<Control>, target: usize) -> Self {
        Self::try_mct(controls, target).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gate::mct`]: sorts and deduplicates the controls, then
    /// validates them against the target.
    ///
    /// # Errors
    ///
    /// Returns [`GateError`] when the target appears among the controls or
    /// two controls on the same line have opposite polarity.
    pub fn try_mct(mut controls: Vec<Control>, target: usize) -> Result<Self, GateError> {
        controls.sort_unstable();
        controls.dedup();
        Self::validate(&controls, target)?;
        Ok(Self {
            controls,
            target: target as u32,
        })
    }

    /// Validates a **sorted, deduplicated** control list against a target:
    /// no line carries two opposite-polarity controls and the target is
    /// not controlled. This is the single well-formedness check shared by
    /// every constructor (and re-run structurally by `qda-analyze`).
    ///
    /// # Errors
    ///
    /// Returns the first [`GateError`] found, scanning controls in line
    /// order.
    pub fn validate(controls: &[Control], target: usize) -> Result<(), GateError> {
        for w in controls.windows(2) {
            if w[0].line == w[1].line {
                return Err(GateError::ContradictoryControls { line: w[0].line() });
            }
        }
        if controls.iter().any(|c| c.line() == target) {
            return Err(GateError::ControlOnTarget { target });
        }
        Ok(())
    }

    /// The controls, sorted by line.
    pub fn controls(&self) -> &[Control] {
        &self.controls
    }

    /// The target line.
    pub fn target(&self) -> usize {
        self.target as usize
    }

    /// Number of controls.
    pub fn num_controls(&self) -> usize {
        self.controls.len()
    }

    /// Whether the gate fires on a ≤64-line assignment word.
    pub fn fires(&self, state: u64) -> bool {
        self.controls
            .iter()
            .all(|c| ((state >> c.line) & 1 == 1) == c.positive)
    }

    /// Applies the gate to a ≤64-line assignment word.
    pub fn apply_u64(&self, state: u64) -> u64 {
        if self.fires(state) {
            state ^ (1 << self.target)
        } else {
            state
        }
    }

    /// Returns a copy with every line shifted by `offset` (for circuit
    /// composition).
    #[must_use]
    pub fn shifted(&self, offset: usize) -> Gate {
        Gate {
            controls: self
                .controls
                .iter()
                .map(|c| Control {
                    line: c.line + offset as u32,
                    positive: c.positive,
                })
                .collect(),
            target: self.target + offset as u32,
        }
    }

    /// Returns a copy with lines remapped through `map` (`map[old] = new`).
    ///
    /// The result is re-canonicalized: a non-monotonic map reorders the
    /// control list, and the sorted-controls invariant behind
    /// [`Gate::control_on`] / [`Gate::controls_conflict`] must survive the
    /// remap (it used not to — resynthesis splices remap through
    /// arbitrary window orders).
    ///
    /// # Panics
    ///
    /// Panics if a referenced line is missing from the map, or if the map
    /// collides two of the gate's lines onto one (the remapped gate would
    /// be malformed).
    #[must_use]
    pub fn remapped(&self, map: &[usize]) -> Gate {
        let controls: Vec<Control> = self
            .controls
            .iter()
            .map(|c| Control {
                line: map[c.line()] as u32,
                positive: c.positive,
            })
            .collect();
        let target = map[self.target()];
        let gate = Gate::mct(controls, target);
        assert_eq!(
            gate.num_controls(),
            self.num_controls(),
            "remap of {self} collides two controls onto one line"
        );
        gate
    }

    /// Returns a copy with one extra control added.
    ///
    /// # Panics
    ///
    /// Panics on contradictions (same line, mixed polarity, or control on
    /// the target).
    #[must_use]
    pub fn with_control(&self, extra: Control) -> Gate {
        let mut controls = self.controls.clone();
        controls.push(extra);
        Gate::mct(controls, self.target())
    }

    /// The control this gate places on `line`, if any (controls are
    /// sorted by line, so this is a binary search).
    pub fn control_on(&self, line: usize) -> Option<Control> {
        self.controls
            .binary_search_by_key(&(line as u32), |c| c.line)
            .ok()
            .map(|i| self.controls[i])
    }

    /// Whether the gate reads or writes `line` (as control or target).
    pub fn acts_on(&self, line: usize) -> bool {
        self.target() == line || self.control_on(line).is_some()
    }

    /// Whether both gates place a control on a common line with opposite
    /// polarity. Such gates can never fire on the same state, which is why
    /// they always commute (see [`crate::opt::rules::commutes`]).
    pub fn controls_conflict(&self, other: &Gate) -> bool {
        // Merge-join over the two sorted control lists.
        let (mut i, mut j) = (0, 0);
        while i < self.controls.len() && j < other.controls.len() {
            let (a, b) = (self.controls[i], other.controls[j]);
            match a.line.cmp(&b.line) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a.positive != b.positive {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// Returns a copy with the polarity of the control on `line` flipped
    /// (the effect of conjugating the gate with a NOT on `line`).
    ///
    /// # Panics
    ///
    /// Panics if the gate has no control on `line`.
    #[must_use]
    pub fn with_flipped_control(&self, line: usize) -> Gate {
        let i = self
            .controls
            .binary_search_by_key(&(line as u32), |c| c.line)
            .unwrap_or_else(|_| panic!("gate {self} has no control on line {line}"));
        let mut controls = self.controls.clone();
        controls[i].positive = !controls[i].positive;
        Gate {
            controls,
            target: self.target,
        }
    }

    /// Returns a copy with the control on `line` removed.
    ///
    /// # Panics
    ///
    /// Panics if the gate has no control on `line`.
    #[must_use]
    pub fn without_control(&self, line: usize) -> Gate {
        let i = self
            .controls
            .binary_search_by_key(&(line as u32), |c| c.line)
            .unwrap_or_else(|_| panic!("gate {self} has no control on line {line}"));
        let mut controls = self.controls.clone();
        controls.remove(i);
        Gate {
            controls,
            target: self.target,
        }
    }

    /// Largest line index referenced by the gate.
    pub fn max_line(&self) -> usize {
        self.controls
            .iter()
            .map(|c| c.line())
            .chain(std::iter::once(self.target()))
            .max()
            .expect("gate always has a target")
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T(")?;
        for (i, c) in self.controls.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}{}", if c.is_positive() { "" } else { "!" }, c.line())?;
        }
        write!(f, ";{})", self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_cnot_toffoli_shortcuts() {
        assert_eq!(Gate::not(3).num_controls(), 0);
        assert_eq!(Gate::cnot(0, 1).num_controls(), 1);
        assert_eq!(Gate::toffoli(0, 1, 2).num_controls(), 2);
    }

    #[test]
    fn mixed_polarity_fire_conditions() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(1)], 2);
        assert_eq!(g.apply_u64(0b001), 0b101);
        assert_eq!(g.apply_u64(0b011), 0b011);
        assert_eq!(g.apply_u64(0b000), 0b000);
    }

    #[test]
    fn self_inverse() {
        let g = Gate::mct(vec![Control::positive(1), Control::negative(3)], 0);
        for s in 0..16u64 {
            assert_eq!(g.apply_u64(g.apply_u64(s)), s);
        }
    }

    #[test]
    #[should_panic(expected = "target")]
    fn rejects_control_on_target() {
        let _ = Gate::mct(vec![Control::positive(0)], 0);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn rejects_contradictory_controls() {
        let _ = Gate::mct(vec![Control::positive(0), Control::negative(0)], 1);
    }

    #[test]
    fn shifting_and_remapping() {
        let g = Gate::toffoli(0, 1, 2);
        let s = g.shifted(10);
        assert_eq!(s.target(), 12);
        assert_eq!(s.controls()[0].line(), 10);
        let r = g.remapped(&[5, 4, 3]);
        assert_eq!(r.target(), 3);
        assert_eq!(r.max_line(), 5);
    }

    #[test]
    fn with_control_extends() {
        let g = Gate::cnot(0, 1).with_control(Control::negative(2));
        assert_eq!(g.num_controls(), 2);
        assert!(g.fires(0b001));
        assert!(!g.fires(0b101));
    }

    #[test]
    fn display_format() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(2)], 1);
        assert_eq!(g.to_string(), "T(0,!2;1)");
    }

    #[test]
    fn equality_is_canonical_in_control_order() {
        let a = Gate::mct(vec![Control::negative(3), Control::positive(1)], 0);
        let b = Gate::mct(vec![Control::positive(1), Control::negative(3)], 0);
        assert_eq!(a, b);
        // Same lines, different polarity: not equal.
        let c = Gate::mct(vec![Control::positive(1), Control::positive(3)], 0);
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_total_and_respects_control_lists() {
        // The derived Ord is lexicographic over the sorted control list,
        // then the target — so a NOT (no controls) sorts first.
        let not = Gate::not(5);
        let cnot = Gate::cnot(0, 5);
        let tof = Gate::toffoli(0, 1, 5);
        assert!(not < cnot && cnot < tof);
        // Antisymmetry + reflexivity on a small sample.
        assert_eq!(not.cmp(&not), std::cmp::Ordering::Equal);
        assert_eq!(cnot.cmp(&not), std::cmp::Ordering::Greater);
    }

    #[test]
    fn control_lookup_hits_and_misses() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(4)], 2);
        assert_eq!(g.control_on(0), Some(Control::positive(0)));
        assert_eq!(g.control_on(4), Some(Control::negative(4)));
        assert_eq!(g.control_on(2), None, "target is not a control");
        assert_eq!(g.control_on(3), None);
        assert!(g.acts_on(0) && g.acts_on(2) && g.acts_on(4));
        assert!(!g.acts_on(1));
        // Degenerate 0-control NOT acts only on its target.
        let not = Gate::not(1);
        assert_eq!(not.control_on(1), None);
        assert!(not.acts_on(1) && !not.acts_on(0));
    }

    #[test]
    fn conflict_detection_over_overlapping_control_sets() {
        let a = Gate::mct(vec![Control::positive(0), Control::negative(1)], 5);
        let b = Gate::mct(vec![Control::positive(1), Control::positive(2)], 6);
        assert!(a.controls_conflict(&b), "line 1 with opposite polarity");
        assert!(b.controls_conflict(&a), "conflict is symmetric");
        let c = Gate::mct(vec![Control::negative(1), Control::positive(3)], 6);
        assert!(!a.controls_conflict(&c), "line 1 agrees on polarity");
        // Negative-control-only gates conflict exactly on polarity.
        let neg = Gate::mct(vec![Control::negative(0), Control::negative(2)], 5);
        let neg2 = Gate::mct(vec![Control::negative(0)], 6);
        assert!(!neg.controls_conflict(&neg2));
        assert!(neg.controls_conflict(&Gate::mct(vec![Control::positive(2)], 6)));
        // A NOT has no controls: never conflicts, not even with itself.
        assert!(!Gate::not(0).controls_conflict(&Gate::not(0)));
        assert!(!Gate::not(0).controls_conflict(&a));
    }

    #[test]
    fn flip_and_remove_controls() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(2)], 1);
        let flipped = g.with_flipped_control(2);
        assert_eq!(flipped.control_on(2), Some(Control::positive(2)));
        assert_eq!(flipped.control_on(0), Some(Control::positive(0)));
        assert_eq!(flipped.with_flipped_control(2), g, "flip is an involution");
        let dropped = g.without_control(2);
        assert_eq!(dropped.num_controls(), 1);
        assert_eq!(dropped.control_on(2), None);
        assert_eq!(dropped.target(), 1);
    }

    #[test]
    #[should_panic(expected = "no control on line")]
    fn flipping_a_missing_control_is_loud() {
        let _ = Gate::cnot(0, 1).with_flipped_control(1);
    }

    #[test]
    fn try_mct_reports_structured_errors() {
        let e = Gate::try_mct(vec![Control::positive(0)], 0).unwrap_err();
        assert_eq!(e, GateError::ControlOnTarget { target: 0 });
        assert_eq!(e.to_string(), "target 0 cannot be controlled");
        let e = Gate::try_mct(vec![Control::positive(2), Control::negative(2)], 1).unwrap_err();
        assert_eq!(e, GateError::ContradictoryControls { line: 2 });
        assert_eq!(e.to_string(), "contradictory controls on line 2");
        let g = Gate::try_mct(vec![Control::negative(3), Control::positive(1)], 0).unwrap();
        assert_eq!(
            g,
            Gate::mct(vec![Control::positive(1), Control::negative(3)], 0)
        );
    }

    #[test]
    fn validate_accepts_every_constructed_gate() {
        for g in [
            Gate::not(2),
            Gate::cnot(3, 1),
            Gate::mct(vec![Control::negative(0), Control::positive(4)], 2),
        ] {
            assert_eq!(Gate::validate(g.controls(), g.target()), Ok(()));
        }
    }

    #[test]
    fn remapping_recanonicalizes_control_order() {
        // A decreasing map reverses the line order; the remapped gate must
        // still keep its controls sorted or `control_on` silently breaks.
        let g = Gate::mct(vec![Control::positive(0), Control::negative(1)], 2);
        let r = g.remapped(&[5, 4, 3]);
        assert_eq!(r.control_on(4), Some(Control::negative(4)));
        assert_eq!(r.control_on(5), Some(Control::positive(5)));
        let lines: Vec<usize> = r.controls().iter().map(|c| c.line()).collect();
        assert_eq!(lines, vec![4, 5], "controls sorted after remap");
        // Remapping with the inverse map round-trips.
        let mut inv = vec![0; 6];
        for (old, &new) in [5usize, 4, 3].iter().enumerate() {
            inv[new] = old;
        }
        assert_eq!(r.remapped(&inv), g);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn remapping_onto_a_shared_line_is_loud() {
        let g = Gate::mct(vec![Control::positive(0), Control::positive(1)], 2);
        let _ = g.remapped(&[0, 0, 2]);
    }
}
