//! Windowed resynthesis of MPMCT circuits: beyond-peephole optimization
//! by re-entrant synthesis on bounded-support subcircuits.
//!
//! The peephole pass ([`crate::opt`]) rewrites with a *local template
//! catalogue* — pairs of gates brought adjacent by commutation. What it
//! cannot see is redundancy spread over a whole group of gates: a cluster
//! whose composite permutation has a much cheaper realization than the
//! cascade that computes it. This pass closes that gap:
//!
//! 1. **Window extraction** — slide over the packed [`GateArena`] and
//!    greedily grow windows of support-connected gates whose combined
//!    support (targets + controls) fits in at most
//!    [`ResynthOptions::max_lines`] lines (default 6, hard cap
//!    [`MAX_WINDOW_LINES`]). Growth commutes past gates on disjoint
//!    lines, so the compute/use/uncompute triples Bennett cleanup
//!    scatters through a cascade still land in one window. Support
//!    tests are mask operations on the packed gate views — no gate is
//!    materialized until a window is actually spliced.
//! 2. **Permutation recovery** — remap the window onto `k` local lines
//!    and replay all `2^k` basis states through the bit-parallel
//!    [`crate::batchsim`] engine ([`crate::circuit::Circuit::permutation`]).
//! 3. **Re-entrant synthesis** — hand the recovered permutation to every
//!    registered [`WindowSynthesizer`] (the TBS and ESOP back-ends of
//!    `qda-revsynth`, injected from above because synthesis sits on top
//!    of this crate) and keep the cheapest candidate. The back-ends
//!    race in parallel ([`qda_logic::par`]); candidates are folded in
//!    registration order, so the winner — and therefore the rewritten
//!    circuit — is byte-identical whatever `QDA_WORKERS` says.
//! 4. **Acceptance** — splice the candidate in only when
//!    [`RewriteCost::accepted`] says it *strictly* improves
//!    `(T-count, gates)` lexicographically; every splice is re-verified
//!    against the original window by exhaustive batch simulation first,
//!    and an unsound candidate is dropped (and counted) rather than
//!    spliced.
//!
//! Passes repeat until a full sweep accepts nothing, so the result is a
//! fixpoint: running the pass on its own output changes nothing. The
//! checked entry point [`resynthesize_checked`] mirrors the PR 5
//! soundness contract of [`crate::opt::optimize_checked`] — the whole
//! rewritten circuit is equivalence-checked against the original over
//! the full line space, and a divergence surfaces as an
//! [`OptMismatch`] witness, never as a silently wrong cost figure.

use crate::circuit::Circuit;
use crate::opt::rules::RewriteCost;
use crate::opt::{equivalence_witness, OptMismatch};
use crate::packed::{GateArena, PackedGate, PackedGateBuf};
use qda_logic::par;

/// Hard cap on the window support: `2^8` basis states per permutation
/// recovery keeps every attempt a single batch-simulation sweep.
pub const MAX_WINDOW_LINES: usize = 8;

/// A synthesis back-end that can re-realize a small explicit permutation
/// over `log₂ perm.len()` lines *in place* (same line count, no
/// ancillae). Implementations live above this crate (`qda-revsynth`
/// provides the TBS, ESOP and linear back-ends); the pass treats them as
/// untrusted candidate generators — every candidate is simulation-checked
/// against the window before it may be spliced.
pub trait WindowSynthesizer: Sync {
    /// Back-end name (for stats and debugging).
    fn name(&self) -> &str;

    /// Synthesizes a circuit realizing `perm` over `log₂ perm.len()`
    /// lines, or `None` when this back-end does not apply.
    fn synthesize(&self, perm: &[u64]) -> Option<Circuit>;
}

/// Tuning knobs of the resynthesis pass.
#[derive(Clone, Copy, Debug)]
pub struct ResynthOptions {
    /// Maximum combined support of a window, in lines (clamped to
    /// [`MAX_WINDOW_LINES`]).
    pub max_lines: usize,
    /// Maximum number of gates a window may contain.
    pub max_window_gates: usize,
    /// Window growth may commute past at most this many unrelated gates
    /// (gates whose support is disjoint from the window's). Bennett-style
    /// compute/use/uncompute triples are separated by exactly such gates,
    /// so 0 would blind the pass to them; large values trade sweep time
    /// for reach.
    pub max_commute_skips: usize,
}

impl Default for ResynthOptions {
    fn default() -> Self {
        Self {
            max_lines: 6,
            max_window_gates: 24,
            max_commute_skips: 64,
        }
    }
}

/// Per-window accounting of one resynthesis run.
///
/// Every extracted window is either accepted or rejected:
/// `windows_attempted == windows_accepted + windows_rejected` holds after
/// every run, and the gate/T deltas sum over exactly the accepted
/// windows, so `gates_removed − gates_added` equals the circuit's total
/// gate-count reduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResynthStats {
    /// Windows extracted and costed (≥ 2 gates, support within bounds).
    pub windows_attempted: u64,
    /// Windows whose cheapest sound candidate was strictly cheaper and
    /// was spliced in.
    pub windows_accepted: u64,
    /// Windows kept as-is (no candidate, or none strictly cheaper).
    pub windows_rejected: u64,
    /// Candidates a back-end produced that failed the window-level batch
    /// simulation check (or came back on the wrong line count) and were
    /// dropped before costing. Stays zero with sound back-ends.
    pub candidates_unsound: u64,
    /// Gates removed by accepted splices.
    pub gates_removed: u64,
    /// Gates inserted by accepted splices.
    pub gates_added: u64,
    /// T-count removed by accepted splices.
    pub t_removed: u64,
    /// T-count inserted by accepted splices.
    pub t_added: u64,
    /// Full sweeps run until the fixpoint (at least 1).
    pub passes: u64,
}

impl ResynthStats {
    /// Net gate-count reduction over the whole run. Negative when
    /// accepted splices traded extra gates for a strictly lower T-count
    /// (the acceptance order is lexicographic on `(T-count, gates)`).
    pub fn gates_saved(&self) -> i64 {
        self.gates_removed as i64 - self.gates_added as i64
    }

    /// Net T-count reduction over the whole run (never negative).
    pub fn t_saved(&self) -> i64 {
        self.t_removed as i64 - self.t_added as i64
    }
}

/// Result of a resynthesis run.
#[derive(Clone, Debug)]
pub struct Resynthesized {
    /// The rewritten circuit (same line count, never lexicographically
    /// worse on `(T-count, gates)`).
    pub circuit: Circuit,
    /// Per-window accounting.
    pub stats: ResynthStats,
}

/// The sorted support (target + control lines) of a packed gate,
/// recovered from the set bits of its control mask words.
fn gate_support(g: &PackedGate<'_>) -> Vec<usize> {
    let mut s: Vec<usize> = Vec::with_capacity(g.num_controls() + 1);
    for (w, word) in g.ctrl_words().iter().enumerate() {
        let mut bits = *word;
        while bits != 0 {
            s.push(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
    // Control bits come out ascending; only the target needs placing.
    let t = g.target();
    if let Err(pos) = s.binary_search(&t) {
        s.insert(pos, t);
    }
    s
}

/// Merges `extra`'s lines into the sorted `support`, returning `None`
/// as soon as the union would exceed `cap`.
fn merge_support(support: &[usize], extra: &PackedGate<'_>, cap: usize) -> Option<Vec<usize>> {
    let mut merged = support.to_vec();
    for line in gate_support(extra) {
        if let Err(pos) = merged.binary_search(&line) {
            if merged.len() == cap {
                return None;
            }
            merged.insert(pos, line);
        }
    }
    Some(merged)
}

/// One sweep over the cascade. Returns `true` when at least one window
/// was spliced.
fn sweep(
    circuit: &mut Circuit,
    options: &ResynthOptions,
    synths: &[&dyn WindowSynthesizer],
    stats: &mut ResynthStats,
) -> bool {
    let max_lines = options.max_lines.clamp(1, MAX_WINDOW_LINES);
    let max_gates = options.max_window_gates.max(2);
    let mut list: GateArena = circuit.clone().into_arena();
    let mut changed = false;
    let mut cursor = list.first();
    while let Some(id) = cursor {
        // Greedily grow the window from `id`: a gate joins when it shares
        // a line with the window and the union support stays within the
        // line budget. Gates whose support is *disjoint* from the window
        // commute past it, so growth may skip over them (their lines are
        // then poisoned: a later gate touching a skipped line cannot join,
        // or the commuting argument — and the splice — would be unsound).
        let mut support = gate_support(&list.gate(id));
        if support.len() > max_lines {
            cursor = list.next_live(id);
            continue;
        }
        let mut ids = vec![id];
        let mut skipped_lines: Vec<usize> = Vec::new();
        let mut skips_left = options.max_commute_skips;
        let mut j = list.next_live(id);
        while let Some(jid) = j {
            if ids.len() >= max_gates {
                break;
            }
            let g = list.gate(jid);
            let gsup = gate_support(&g);
            let overlaps_window = gsup.iter().any(|l| support.binary_search(l).is_ok());
            let overlaps_skipped = gsup.iter().any(|l| skipped_lines.binary_search(l).is_ok());
            if overlaps_window && !overlaps_skipped {
                let Some(grown) = merge_support(&support, &g, max_lines) else {
                    break;
                };
                support = grown;
                ids.push(jid);
            } else if !overlaps_window && skips_left > 0 {
                for line in gsup {
                    if let Err(pos) = skipped_lines.binary_search(&line) {
                        skipped_lines.insert(pos, line);
                    }
                }
                skips_left -= 1;
            } else {
                break;
            }
            j = list.next_live(jid);
        }
        if ids.len() < 2 {
            cursor = list.next_live(id);
            continue;
        }
        stats.windows_attempted += 1;
        // Recover the window's permutation on local lines 0..k.
        let k = support.len();
        let mut to_local = vec![usize::MAX; support[k - 1] + 1];
        for (local, &line) in support.iter().enumerate() {
            to_local[line] = local;
        }
        let mut sub = Circuit::new(k);
        for &w in &ids {
            sub.add_gate(list.materialize(w).remapped(&to_local));
        }
        let perm = sub
            .permutation()
            .expect("window support is capped at MAX_WINDOW_LINES = 8 lines");
        // Race every back-end over the window in parallel, then fold the
        // results in registration order: the first strictly-cheapest
        // candidate wins exactly as it would under a serial scan, so the
        // outcome does not depend on the worker count.
        let candidates = par::run_indexed(synths.len(), |si| {
            let candidate = synths[si].synthesize(&perm)?;
            // The splice check: a candidate may only replace the window
            // if batch simulation proves it equivalent on all 2^k states.
            if candidate.num_lines() != k || equivalence_witness(&sub, &candidate).is_some() {
                return Some(Err(()));
            }
            Some(Ok(candidate))
        });
        let mut best: Option<Circuit> = None;
        for verdict in candidates.into_iter().flatten() {
            let Ok(candidate) = verdict else {
                stats.candidates_unsound += 1;
                continue;
            };
            let cheaper = match &best {
                None => true,
                Some(b) => {
                    let (ct, cg) = (candidate.cost().t_count, candidate.num_gates());
                    let (bt, bg) = (b.cost().t_count, b.num_gates());
                    (ct, cg) < (bt, bg)
                }
            };
            if cheaper {
                best = Some(candidate);
            }
        }
        let removed_controls: Vec<usize> =
            ids.iter().map(|&w| list.gate(w).num_controls()).collect();
        let added_controls = |b: &Circuit| -> Vec<usize> {
            b.packed().iter().map(|(_, g)| g.num_controls()).collect()
        };
        let accepted = best.as_ref().is_some_and(|b| {
            RewriteCost::of_controls(&removed_controls, &added_controls(b)).accepted()
        });
        if !accepted {
            stats.windows_rejected += 1;
            cursor = list.next_live(id);
            continue;
        }
        let replacement = best.expect("accepted implies a candidate");
        let cost = RewriteCost::of_controls(&removed_controls, &added_controls(&replacement));
        stats.windows_accepted += 1;
        stats.gates_removed += cost.gates_removed as u64;
        stats.gates_added += cost.gates_added as u64;
        stats.t_removed += cost.t_removed;
        stats.t_added += cost.t_added;
        // Splice: insert the replacement (mapped back to circuit lines)
        // before the window, then drop the original gates.
        let resume = list.next_live(*ids.last().expect("non-empty window"));
        let words = list.words_per_gate();
        for g in replacement.gates() {
            let buf = PackedGateBuf::from_gate(&g.remapped(&support), words);
            list.insert_before(ids[0], &buf);
        }
        for &w in &ids {
            list.remove(w);
        }
        changed = true;
        cursor = resume;
    }
    if changed {
        *circuit = Circuit::from_arena(list);
    }
    changed
}

/// Runs windowed resynthesis to a fixpoint and returns the rewritten
/// circuit plus per-window statistics.
///
/// The output realizes the same permutation over **all** lines (checked
/// variant: [`resynthesize_checked`]), keeps the line count, and is never
/// lexicographically worse on `(T-count, gates)` than the input — every
/// splice is individually simulation-verified and strictly improving in
/// that order (a splice may add a gate when it strictly cuts T-count),
/// so the sweep loop terminates and a second run is a no-op.
pub fn resynthesize(
    circuit: &Circuit,
    options: &ResynthOptions,
    synths: &[&dyn WindowSynthesizer],
) -> Resynthesized {
    let mut out = circuit.clone();
    let mut stats = ResynthStats::default();
    loop {
        stats.passes += 1;
        if !sweep(&mut out, options, synths, &mut stats) {
            break;
        }
    }
    let (before, after) = (circuit.cost(), out.cost());
    assert!(
        (after.t_count, after.gates) <= (before.t_count, before.gates),
        "resynthesis acceptance policy violated: {before} -> {after}"
    );
    Resynthesized {
        circuit: out,
        stats,
    }
}

/// [`resynthesize`], then machine-check the rewritten circuit against the
/// original with [`equivalence_witness`] — the same final gate the
/// peephole optimizer runs, so an unsound back-end (or a splice bug)
/// surfaces as a hard error carrying a witness state.
///
/// # Errors
///
/// Returns the witness when the rewritten circuit diverges.
pub fn resynthesize_checked(
    circuit: &Circuit,
    options: &ResynthOptions,
    synths: &[&dyn WindowSynthesizer],
) -> Result<Resynthesized, OptMismatch> {
    let out = resynthesize(circuit, options, synths);
    match equivalence_witness(circuit, &out.circuit) {
        None => Ok(out),
        Some(witness) => Err(witness),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    /// Recognizes identity windows and replaces them with nothing — the
    /// smallest sound back-end, enough to exercise the splice machinery.
    struct IdentitySynth;
    impl WindowSynthesizer for IdentitySynth {
        fn name(&self) -> &str {
            "identity"
        }
        fn synthesize(&self, perm: &[u64]) -> Option<Circuit> {
            let r = perm.len().trailing_zeros() as usize;
            perm.iter()
                .enumerate()
                .all(|(x, &y)| x as u64 == y)
                .then(|| Circuit::new(r))
        }
    }

    /// Always returns a *wrong* candidate (an extra NOT), to prove the
    /// window-level check refuses to splice it.
    struct BrokenSynth;
    impl WindowSynthesizer for BrokenSynth {
        fn name(&self) -> &str {
            "broken"
        }
        fn synthesize(&self, perm: &[u64]) -> Option<Circuit> {
            let r = perm.len().trailing_zeros() as usize;
            let mut c = Circuit::new(r);
            c.not(0);
            c.not(0);
            c.not(0);
            Some(c)
        }
    }

    #[test]
    fn identity_window_is_removed() {
        // Three gates composing to the identity on lines {0,1,2}, but not
        // pairwise cancelling — the peephole pass cannot remove them.
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(0, 1);
        c.toffoli(0, 1, 2);
        c.toffoli(0, 1, 2);
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &[&IdentitySynth]).unwrap();
        assert_eq!(out.circuit.num_gates(), 0);
        assert_eq!(out.circuit.num_lines(), 3);
        assert_eq!(out.stats.windows_accepted, 1);
        assert_eq!(out.stats.gates_removed, 4);
        assert_eq!(out.stats.gates_added, 0);
    }

    #[test]
    fn non_identity_windows_are_rejected_and_counted() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.toffoli(0, 1, 2);
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &[&IdentitySynth]).unwrap();
        assert_eq!(out.circuit.num_gates(), 2);
        assert_eq!(out.stats.windows_accepted, 0);
        assert!(out.stats.windows_rejected > 0);
        assert_eq!(
            out.stats.windows_attempted,
            out.stats.windows_accepted + out.stats.windows_rejected
        );
    }

    #[test]
    fn unsound_candidates_are_dropped_not_spliced() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(1, 0);
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &[&BrokenSynth]).unwrap();
        assert_eq!(out.circuit.gates(), c.gates(), "broken candidate refused");
        assert!(out.stats.candidates_unsound > 0);
        assert_eq!(out.stats.windows_accepted, 0);
    }

    #[test]
    fn growth_commutes_past_unrelated_gates() {
        // The identity pair on {0,1,2} is split by a gate on {5,6}: only
        // a window that commutes past it can see both halves.
        let mut c = Circuit::new(7);
        c.toffoli(0, 1, 2);
        c.cnot(5, 6);
        c.toffoli(0, 1, 2);
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &[&IdentitySynth]).unwrap();
        assert_eq!(out.circuit.num_gates(), 1);
        assert_eq!(out.circuit.gates()[0], Gate::cnot(5, 6));
        // With skipping disabled the pair is unreachable again.
        let stuck = resynthesize(
            &c,
            &ResynthOptions {
                max_commute_skips: 0,
                ..Default::default()
            },
            &[&IdentitySynth],
        );
        assert_eq!(stuck.circuit.num_gates(), 3);
    }

    #[test]
    fn poisoned_lines_block_unsound_windows() {
        // The CNOT(0,1) pair would be an identity window, but the gate
        // between them reads line 1 *and* touches the skipped gate's
        // line 4 — joining it past the skipped gate, or pairing the
        // outer CNOTs around it, would both be unsound. Growth must
        // stop at the poisoned gate and leave the cascade alone.
        let mut c = Circuit::new(7);
        c.cnot(0, 1);
        c.cnot(4, 6);
        c.cnot(1, 4);
        c.cnot(0, 1);
        let out = resynthesize_checked(&c, &ResynthOptions::default(), &[&IdentitySynth]).unwrap();
        assert_eq!(out.circuit.gates(), c.gates(), "no sound identity window");
    }

    #[test]
    fn no_synthesizers_means_no_change() {
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.cnot(2, 3);
        let out = resynthesize(&c, &ResynthOptions::default(), &[]);
        assert_eq!(out.circuit, c);
        assert_eq!(out.stats.windows_accepted, 0);
        assert_eq!(out.stats.passes, 1);
    }

    #[test]
    fn window_support_respects_the_cap() {
        // A spread-out identity pair on lines {0,9}: with max_lines = 2
        // the window still forms (support is 2 lines), and the identity
        // back-end removes it.
        let mut c = Circuit::new(10);
        c.cnot(0, 9);
        c.cnot(0, 9);
        let out = resynthesize(
            &c,
            &ResynthOptions {
                max_lines: 2,
                ..Default::default()
            },
            &[&IdentitySynth],
        );
        assert_eq!(out.circuit.num_gates(), 0);
    }

    #[test]
    fn options_clamp_to_the_hard_cap() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(0, 1);
        let out = resynthesize(
            &c,
            &ResynthOptions {
                max_lines: 99,
                ..Default::default()
            },
            &[&IdentitySynth],
        );
        assert_eq!(out.circuit.num_gates(), 0, "cap clamps, not panics");
    }
}
