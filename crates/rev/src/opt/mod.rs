//! Post-synthesis peephole optimization of MPMCT circuits.
//!
//! The paper frames the reversible back-end as a place for post-synthesis
//! optimization before costing, and all three synthesis flows emit
//! circuits with obvious local redundancy: Bennett cleanup mirrors gates
//! around the output copies, in-place XOR application leaves CNOT chains,
//! and ESOP cubes produce same-target gates whose control polarities can
//! fuse. This module removes that redundancy with a **worklist-driven,
//! windowed peephole pass**:
//!
//! * [`rules::commutes`] — commutation analysis over gate pairs (equal
//!   targets, disjoint target/support, or conflicting controls);
//! * **cancellation** — two equal gates that can be brought adjacent by
//!   commutation annihilate (MPMCT gates are self-inverse);
//! * [`rules::merge`] — control-merge templates: two gates equal except
//!   one control's polarity fuse without that control, and a gate whose
//!   control set extends another's by one control is absorbed into it
//!   with the extra control flipped;
//! * **NOT-propagation** — an X gate is pushed rightward, flipping the
//!   polarity of downstream controls on its line, until it annihilates
//!   with a partner X;
//! * [`rules::RewriteCost`] — the cost-aware acceptance policy: a rewrite
//!   fires only if it never increases the T-count, with gate count as the
//!   tie-break;
//! * **constant propagation** ([`optimize_assuming`]) — when the caller
//!   asserts that some lines start at `|0⟩` (the flows assert it for
//!   every non-input line, matching the verification contract), a
//!   forward constant-value pass removes gates with a provably
//!   unsatisfiable control (const-0) and drops provably satisfied
//!   controls (const-1). Its equivalence gate
//!   ([`equivalence_witness_assuming`]) checks exactly the assumed state
//!   space — all states with the assumed lines at zero.
//!
//! The pass first splits the cascade into **support-connected
//! components** (union-find over lines): gates in different components
//! commute trivially, so each component's worklist runs independently —
//! serially or sharded over [`qda_logic::par`] worker threads
//! (`QDA_WORKERS`) — and the survivors are merged back in original gate
//! order. Serial and parallel runs are byte-identical by construction.
//! Within a component, scans are bounded by [`OptOptions::window`] live
//! gates of that component, and every rewrite requeues only its
//! neighbourhood, keeping the whole pass near-linear in circuit size.
//! All gate storage is the packed [`crate::packed::GateArena`]:
//! commutation, conflict and the merge templates are whole-word mask
//! operations, never control-vector walks.
//!
//! Every rule preserves the function on the **full line space** —
//! ancillae and garbage lines included — and [`optimize_checked`]
//! machine-checks exactly that with the bit-parallel [`crate::batchsim`]
//! engine: exhaustively up to [`EXHAUSTIVE_LINE_LIMIT`] lines, with
//! [`SAMPLED_STATES`] random states above.
//!
//! # Example
//!
//! ```
//! use qda_rev::circuit::Circuit;
//! use qda_rev::gate::{Control, Gate};
//! use qda_rev::opt::{optimize, OptOptions};
//!
//! // Two Toffolis differing in one control polarity fuse into a CNOT
//! // (the differing control becomes a don't-care), and the NOT pair on
//! // line 0 annihilates by flipping the controls in between.
//! let mut c = Circuit::new(3);
//! c.not(0);
//! c.mct(vec![Control::positive(0), Control::positive(1)], 2);
//! c.mct(vec![Control::positive(0), Control::negative(1)], 2);
//! c.not(0);
//! let out = optimize(&c, &OptOptions::default());
//! assert_eq!(out.stats.polarity_merges, 1);
//! assert_eq!(out.stats.not_absorptions, 1);
//! assert_eq!(out.circuit.gates(), &[Gate::mct(vec![Control::negative(0)], 2)]);
//! assert_eq!(out.circuit.cost().t_count, 0); // both Toffolis gone
//! ```

pub mod rules;

use crate::batchsim::{consecutive_batches_in, span_jobs, BatchState, BATCH_STATES};
use crate::circuit::Circuit;
use crate::packed::{GateArena, PackedGateBuf};
use qda_logic::par;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rules::{MergeRule, RewriteCost};
use std::collections::VecDeque;
use std::fmt;

/// Circuits with at most this many lines are equivalence-checked
/// exhaustively over all `2^n` basis states; wider circuits are sampled.
pub const EXHAUSTIVE_LINE_LIMIT: usize = 16;

/// Number of random full-width states used to check circuits wider than
/// [`EXHAUSTIVE_LINE_LIMIT`].
pub const SAMPLED_STATES: u64 = 4096;

/// Tuning knobs of the peephole pass.
#[derive(Clone, Copy, Debug)]
pub struct OptOptions {
    /// Maximum number of live gates a forward scan may cross when looking
    /// for a cancellation/merge partner or a NOT-propagation sink. Keeps
    /// the pass near-linear; larger windows see through longer commuting
    /// stretches (e.g. the output-copy block of a Bennett circuit).
    pub window: usize,
}

impl Default for OptOptions {
    fn default() -> Self {
        Self { window: 32 }
    }
}

/// Per-rule rewrite counters of one optimizer run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptStats {
    /// Equal gate pairs annihilated.
    pub cancellations: u64,
    /// Control-merge fusions via [`MergeRule::Polarity`].
    pub polarity_merges: u64,
    /// Control-merge fusions via [`MergeRule::Subset`].
    pub subset_merges: u64,
    /// X-gate pairs annihilated by NOT-propagation (with the polarity
    /// flips committed to the gates in between).
    pub not_absorptions: u64,
    /// Gates removed by constant propagation because a control is
    /// provably never satisfied on the assumed state space (const-0 rule;
    /// only fires under [`optimize_assuming`]).
    pub const_dead: u64,
    /// Controls dropped by constant propagation because they are provably
    /// always satisfied on the assumed state space (const-1 rule; only
    /// fires under [`optimize_assuming`]).
    pub const_drops: u64,
    /// Structurally applicable rewrites the acceptance policy refused.
    /// The shipped rule catalogue never regresses the policy's cost
    /// order, so this stays zero; it exists so a future rule that *can*
    /// regress is observable rather than silently dropped.
    pub rejected: u64,
}

impl OptStats {
    /// Total number of accepted rewrites.
    pub fn total_rewrites(&self) -> u64 {
        self.cancellations
            + self.polarity_merges
            + self.subset_merges
            + self.not_absorptions
            + self.const_dead
            + self.const_drops
    }

    /// Adds another run's counters (used to fold per-component results).
    fn absorb(&mut self, other: &OptStats) {
        self.cancellations += other.cancellations;
        self.polarity_merges += other.polarity_merges;
        self.subset_merges += other.subset_merges;
        self.not_absorptions += other.not_absorptions;
        self.const_dead += other.const_dead;
        self.const_drops += other.const_drops;
        self.rejected += other.rejected;
    }
}

/// Result of an optimizer run.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The rewritten circuit (same line count, never more gates or T).
    pub circuit: Circuit,
    /// Per-rule rewrite counts.
    pub stats: OptStats,
}

/// One applicable rewrite found by a forward scan from gate `i`.
enum Rewrite {
    /// Gates `i` and `j` are equal and `i` commutes up to `j`: both die.
    Cancel { j: usize },
    /// Gates `i` and `j` fuse into `gate` at `j`'s position; `i` dies.
    Merge {
        j: usize,
        gate: PackedGateBuf,
        rule: MergeRule,
    },
    /// NOT gates `i` and `j` annihilate after flipping the control
    /// polarity on the NOT's line in every gate of `flips`.
    NotAbsorb { j: usize, flips: Vec<usize> },
}

/// Scans forward from `i` (bounded by `window` live gates) for the first
/// rewrite that the acceptance policy admits. A structural match the
/// policy refuses is counted in `rejected` and the scan continues — a
/// refused partner must not mask an acceptable one later in the window.
/// (Both match shapes share the scanned gate's target, so the commuting
/// walk always carries past a refusal.)
fn find_rewrite(arena: &GateArena, i: usize, window: usize, rejected: &mut u64) -> Option<Rewrite> {
    let g = arena.gate(i);
    // Cancellation / control-merge: walk right while `g` commutes with
    // everything in between, so the partner can be made adjacent.
    let mut next = arena.next_live(i);
    let mut steps = 0;
    while let Some(j) = next {
        if steps >= window {
            break;
        }
        let h = arena.gate(j);
        if g == h {
            if RewriteCost::of_controls(&[g.num_controls(), h.num_controls()], &[]).accepted() {
                return Some(Rewrite::Cancel { j });
            }
            *rejected += 1;
        } else if let Some((gate, rule)) = rules::merge_packed(&g, &h) {
            let counts = [g.num_controls(), h.num_controls()];
            if RewriteCost::of_controls(&counts, &[gate.view().num_controls()]).accepted() {
                return Some(Rewrite::Merge { j, gate, rule });
            }
            *rejected += 1;
        }
        if !g.commutes_with(&h) {
            break;
        }
        next = arena.next_live(j);
        steps += 1;
    }
    // NOT-propagation: an X on line `l` passes *any* gate — unchanged
    // when the gate does not read `l`, with a polarity flip when the gate
    // controls on `l` — so this scan only ends at the window bound or at
    // a partner X.
    if g.num_controls() == 0 {
        let l = g.target();
        let mut flips = Vec::new();
        let mut next = arena.next_live(i);
        let mut steps = 0;
        while let Some(j) = next {
            if steps >= window {
                break;
            }
            let h = arena.gate(j);
            if h.num_controls() == 0 {
                if h.target() == l {
                    if RewriteCost::of_controls(&[0, 0], &[]).accepted() {
                        return Some(Rewrite::NotAbsorb { j, flips });
                    }
                    *rejected += 1;
                }
            } else if h.control_on(l).is_some() {
                flips.push(j);
            }
            next = arena.next_live(j);
            steps += 1;
        }
    }
    None
}

/// Runs the peephole pass to a fixpoint and returns the rewritten
/// circuit plus per-rule statistics.
///
/// The output realizes the same permutation over **all** lines (checked
/// variant: [`optimize_checked`]), keeps the line count, and never has a
/// higher T-count or gate count than the input. Running `optimize` on
/// its own output changes nothing (idempotence) — the worklist requeues
/// the window around every rewrite, so the pass really reaches a
/// fixpoint of its rule set.
pub fn optimize(circuit: &Circuit, options: &OptOptions) -> Optimized {
    optimize_assuming(circuit, options, &[])
}

/// [`optimize`] under an **initial-state assumption**: every line in
/// `zero_lines` starts at `|0⟩`. On top of the peephole catalogue this
/// enables the two constant-propagation rules (const-0 gate removal,
/// const-1 control dropping), interleaved with the peephole pass to a
/// joint fixpoint. The output realizes the same permutation as the input
/// on the **assumed state space** — all states with the `zero_lines` at
/// zero — which is exactly what [`equivalence_witness_assuming`] checks
/// and what the flows' `verify_computes` contract initializes.
///
/// With an empty `zero_lines` this is exactly [`optimize`].
pub fn optimize_assuming(
    circuit: &Circuit,
    options: &OptOptions,
    zero_lines: &[usize],
) -> Optimized {
    let window = options.window.max(1);
    let mut stats = OptStats::default();
    let mut arena = circuit.clone().into_arena();
    let mut first = true;
    loop {
        let before_const = stats.total_rewrites();
        if !zero_lines.is_empty() {
            const_prop_pass(&mut arena, zero_lines, &mut stats);
        }
        let const_changed = stats.total_rewrites() != before_const;
        if !first && !const_changed {
            break;
        }
        arena = peephole_pass(&arena, window, &mut stats);
        first = false;
        if zero_lines.is_empty() {
            // No const rules in play: the peephole pass alone reaches its
            // fixpoint in one call (the worklist requeues internally).
            break;
        }
    }
    let out = Circuit::from_arena(arena);
    let (before, after) = (circuit.cost(), out.cost());
    assert!(
        after.t_count <= before.t_count && after.gates <= before.gates,
        "acceptance policy violated: {before} -> {after}"
    );
    Optimized {
        circuit: out,
        stats,
    }
}

/// The scalar constant lattice of the const-propagation pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConstVal {
    /// Provably `0` at this point for every assumed start state.
    Zero,
    /// Provably `1` at this point for every assumed start state.
    One,
    /// Unknown / input-dependent.
    Top,
}

impl ConstVal {
    fn flipped(self) -> ConstVal {
        match self {
            ConstVal::Zero => ConstVal::One,
            ConstVal::One => ConstVal::Zero,
            ConstVal::Top => ConstVal::Top,
        }
    }
}

/// One forward constant-propagation sweep over the arena: walks the live
/// gates tracking a [`ConstVal`] per line (lines in `zero_lines` start at
/// [`ConstVal::Zero`], everything else at [`ConstVal::Top`]), removing
/// gates whose control set is provably unsatisfiable and clearing
/// provably satisfied control bits in place. Counts land in
/// `stats.const_dead` / `stats.const_drops`.
fn const_prop_pass(arena: &mut GateArena, zero_lines: &[usize], stats: &mut OptStats) {
    let mut vals = vec![ConstVal::Top; arena.num_lines()];
    for &l in zero_lines {
        vals[l] = ConstVal::Zero;
    }
    let mut cur = arena.first();
    while let Some(i) = cur {
        cur = arena.next_live(i);
        let g = arena.gate(i);
        let target = g.target();
        let mut dead = false;
        let mut drops: Vec<usize> = Vec::new();
        for c in g.controls() {
            match (vals[c.line()], c.is_positive()) {
                // Control can never be satisfied: the gate never fires.
                (ConstVal::Zero, true) | (ConstVal::One, false) => {
                    dead = true;
                    break;
                }
                // Control is always satisfied: it carries no information.
                (ConstVal::Zero, false) | (ConstVal::One, true) => drops.push(c.line()),
                (ConstVal::Top, _) => {}
            }
        }
        if dead {
            stats.const_dead += 1;
            arena.remove(i);
            continue;
        }
        let controls_left = g.num_controls() - drops.len();
        if !drops.is_empty() {
            stats.const_drops += drops.len() as u64;
            let mut ctrl = g.ctrl_words().to_vec();
            let mut pol = g.pol_words().to_vec();
            for &l in &drops {
                ctrl[l >> 6] &= !(1u64 << (l & 63));
                pol[l >> 6] &= !(1u64 << (l & 63));
            }
            let t = u32::try_from(target).expect("line counts fit u32");
            arena.replace(i, &PackedGateBuf::from_masks(ctrl, pol, t));
        }
        vals[target] = if controls_left == 0 {
            vals[target].flipped()
        } else {
            ConstVal::Top
        };
    }
}

/// A plain union-find over circuit lines, used to split a cascade into
/// support-connected components.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut c = x;
        while self.parent[c] != r {
            let next = self.parent[c];
            self.parent[c] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The worklist-driven peephole core shared by [`optimize`] and
/// [`optimize_assuming`]: splits the cascade into support-connected
/// components, runs the cancellation/merge/NOT-propagation catalogue on
/// each component's worklist to its fixpoint — components are
/// independent jobs sharded over [`par::run_indexed`] — and merges the
/// survivors back in original gate order. Gates in different components
/// have disjoint supports, so every interleaving of their survivors is
/// equivalent; the original-order merge makes the result canonical and
/// worker-count-independent.
fn peephole_pass(arena: &GateArena, window: usize, stats: &mut OptStats) -> GateArena {
    let ids: Vec<usize> = arena.iter().map(|(id, _)| id).collect();
    let mut uf = UnionFind::new(arena.num_lines());
    for &id in &ids {
        let g = arena.gate(id);
        let t = g.target();
        for c in g.controls() {
            uf.union(t, c.line());
        }
    }
    // Group gate order-keys by component, components numbered in order
    // of first appearance (deterministic, independent of worker count).
    let mut comp_of_root: Vec<Option<usize>> = vec![None; arena.num_lines().max(1)];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for (key, &id) in ids.iter().enumerate() {
        let root = uf.find(arena.gate(id).target());
        let ci = *comp_of_root[root].get_or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[ci].push(key);
    }
    let results = par::run_indexed(components.len(), |ci| {
        let keys = &components[ci];
        let mut sub = GateArena::new(arena.num_lines());
        for &k in keys {
            sub.push_view(arena.gate(ids[k]));
        }
        let mut local = OptStats::default();
        run_worklist(&mut sub, window, &mut local);
        let survivors: Vec<(usize, PackedGateBuf)> = sub
            .iter()
            .map(|(id, g)| (keys[id], PackedGateBuf::from_view(g)))
            .collect();
        (survivors, local)
    });
    let mut all: Vec<(usize, PackedGateBuf)> = Vec::new();
    for (survivors, local) in results {
        all.extend(survivors);
        stats.absorb(&local);
    }
    all.sort_by_key(|&(k, _)| k);
    let mut out = GateArena::new(arena.num_lines());
    for (_, buf) in &all {
        out.push_buf(buf);
    }
    out
}

/// Runs one component's worklist to its fixpoint (in place).
fn run_worklist(arena: &mut GateArena, window: usize, stats: &mut OptStats) {
    let n = arena.len();
    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        if !arena.is_live(i) {
            continue;
        }
        let Some(rewrite) = find_rewrite(arena, i, window, &mut stats.rejected) else {
            continue;
        };
        // A rewrite shortens live distances for every gate whose forward
        // window reaches a changed position, so requeue the windows
        // before both sites (collected before the sites disappear).
        let mut requeue = arena.window_before(i, window);
        let j = match &rewrite {
            Rewrite::Cancel { j } | Rewrite::Merge { j, .. } | Rewrite::NotAbsorb { j, .. } => *j,
        };
        requeue.extend(arena.window_before(j, window));
        match rewrite {
            Rewrite::Cancel { j } => {
                arena.remove(i);
                arena.remove(j);
                stats.cancellations += 1;
            }
            Rewrite::Merge { j, gate, rule } => {
                arena.remove(i);
                arena.replace(j, &gate);
                requeue.push(j);
                match rule {
                    MergeRule::Polarity => stats.polarity_merges += 1,
                    MergeRule::Subset => stats.subset_merges += 1,
                }
            }
            Rewrite::NotAbsorb { j, flips } => {
                let line = arena.gate(i).target();
                arena.remove(i);
                arena.remove(j);
                for &f in &flips {
                    arena.flip_polarity(f, line);
                }
                requeue.extend(flips);
                stats.not_absorptions += 1;
            }
        }
        for id in requeue {
            if arena.is_live(id) && !queued[id] {
                queued[id] = true;
                queue.push_back(id);
            }
        }
    }
}

/// Witness that an optimized circuit diverged from its original: one
/// start state (as one word per 64-line chunk, low lines first) with the
/// full end states of both circuits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OptMismatch {
    /// The failing start state.
    pub input: Vec<u64>,
    /// Where the original circuit takes it.
    pub original: Vec<u64>,
    /// Where the rewritten circuit takes it.
    pub optimized: Vec<u64>,
}

impl fmt::Display for OptMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimizer changed the circuit function: state {:#x?} maps to {:#x?} in the \
             original but {:#x?} after rewriting",
            self.input, self.original, self.optimized
        )
    }
}

/// Checks that two same-width circuits realize the same permutation over
/// **all** their lines, returning a witness state on divergence.
///
/// Runs on the bit-parallel [`crate::batchsim`] engine: exhaustive over
/// the full `2^n` state space up to [`EXHAUSTIVE_LINE_LIMIT`] lines,
/// [`SAMPLED_STATES`] seeded-random full-width states above (lines are
/// loaded in 64-line chunks, so arbitrarily wide circuits are covered).
///
/// # Panics
///
/// Panics if the circuits differ in line count.
pub fn equivalence_witness(original: &Circuit, optimized: &Circuit) -> Option<OptMismatch> {
    assert_eq!(
        original.num_lines(),
        optimized.num_lines(),
        "equivalence check requires equal line counts"
    );
    let n = original.num_lines();
    if n <= EXHAUSTIVE_LINE_LIMIT {
        let all_lines: Vec<usize> = (0..n).collect();
        let total = 1u64 << n;
        let (span, jobs) = span_jobs(total);
        let spans = par::run_indexed(jobs, |job| {
            let lo = job as u64 * span;
            let hi = (lo + span).min(total);
            let mut sa = BatchState::zeros(n, 0);
            let mut sb = BatchState::zeros(n, 0);
            for (base, count) in consecutive_batches_in(lo, hi) {
                sa.reset(count);
                sa.load_consecutive(&all_lines, base);
                sb.copy_from(&sa);
                original.apply_batch(&mut sa);
                optimized.apply_batch(&mut sb);
                let a = sa.read_register(&all_lines);
                let b = sb.read_register(&all_lines);
                for (k, x) in (base..base + count as u64).enumerate() {
                    if a[k] != b[k] {
                        return Some(OptMismatch {
                            input: vec![x],
                            original: vec![a[k]],
                            optimized: vec![b[k]],
                        });
                    }
                }
            }
            None
        });
        // Spans fold in index order: the first witness is the one the
        // serial sweep would report.
        return spans.into_iter().flatten().next();
    }
    let all_lines: Vec<usize> = (0..n).collect();
    let chunks: Vec<&[usize]> = all_lines.chunks(64).collect();
    // Draw every sample up front (same RNG stream as the serial loop),
    // then shard whole batches across the pool.
    let mut rng = StdRng::seed_from_u64(0x0917_C3EC);
    let mut batches: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut remaining = SAMPLED_STATES;
    while remaining > 0 {
        let take = remaining.min(BATCH_STATES as u64) as usize;
        batches.push(
            chunks
                .iter()
                .map(|lines| {
                    let mask = if lines.len() == 64 {
                        u64::MAX
                    } else {
                        (1u64 << lines.len()) - 1
                    };
                    (0..take).map(|_| rng.gen::<u64>() & mask).collect()
                })
                .collect(),
        );
        remaining -= take as u64;
    }
    let results = par::run_indexed(batches.len(), |bi| {
        let chunk_values = &batches[bi];
        let take = chunk_values[0].len();
        let mut sa = BatchState::zeros(n, take);
        for (lines, values) in chunks.iter().zip(chunk_values) {
            sa.load_register(lines, values);
        }
        let mut sb = BatchState::zeros(n, 0);
        sb.copy_from(&sa);
        original.apply_batch(&mut sa);
        optimized.apply_batch(&mut sb);
        let outs_a: Vec<Vec<u64>> = chunks.iter().map(|lines| sa.read_register(lines)).collect();
        let outs_b: Vec<Vec<u64>> = chunks.iter().map(|lines| sb.read_register(lines)).collect();
        (0..take).find_map(|k| {
            if outs_a.iter().zip(&outs_b).any(|(a, b)| a[k] != b[k]) {
                Some(OptMismatch {
                    input: chunk_values.iter().map(|v| v[k]).collect(),
                    original: outs_a.iter().map(|v| v[k]).collect(),
                    optimized: outs_b.iter().map(|v| v[k]).collect(),
                })
            } else {
                None
            }
        })
    });
    results.into_iter().flatten().next()
}

/// [`equivalence_witness`] restricted to the **assumed state space**:
/// only start states with every line in `zero_lines` at `0` are
/// enumerated or sampled. This is the soundness gate matching
/// [`optimize_assuming`] — its constant-propagation rules are allowed to
/// change the function on states outside the assumption, exactly as the
/// flows' ancilla-initialization contract permits.
///
/// Exhaustive over all `2^f` assignments of the `f` free (unassumed)
/// lines when `f ≤` [`EXHAUSTIVE_LINE_LIMIT`], otherwise
/// [`SAMPLED_STATES`] seeded-random assignments of the free lines.
/// With an empty `zero_lines` this is exactly [`equivalence_witness`].
///
/// # Panics
///
/// Panics if the circuits differ in line count or a `zero_lines` entry is
/// out of range.
pub fn equivalence_witness_assuming(
    original: &Circuit,
    optimized: &Circuit,
    zero_lines: &[usize],
) -> Option<OptMismatch> {
    if zero_lines.is_empty() {
        return equivalence_witness(original, optimized);
    }
    assert_eq!(
        original.num_lines(),
        optimized.num_lines(),
        "equivalence check requires equal line counts"
    );
    let n = original.num_lines();
    let mut zero = vec![false; n];
    for &l in zero_lines {
        zero[l] = true;
    }
    let free_lines: Vec<usize> = (0..n).filter(|&l| !zero[l]).collect();
    let all_lines: Vec<usize> = (0..n).collect();
    let chunks: Vec<&[usize]> = all_lines.chunks(64).collect();
    // Compares one batch of prepared start states (in a caller-provided,
    // reused pair of buffers) and returns a witness on the first
    // divergence.
    let run_batch = |sa: &mut BatchState, sb: &mut BatchState, take: usize| {
        sb.copy_from(sa);
        let ins: Vec<Vec<u64>> = chunks.iter().map(|lines| sa.read_register(lines)).collect();
        original.apply_batch(sa);
        optimized.apply_batch(sb);
        let outs_a: Vec<Vec<u64>> = chunks.iter().map(|lines| sa.read_register(lines)).collect();
        let outs_b: Vec<Vec<u64>> = chunks.iter().map(|lines| sb.read_register(lines)).collect();
        (0..take).find_map(|k| {
            if outs_a.iter().zip(&outs_b).any(|(a, b)| a[k] != b[k]) {
                Some(OptMismatch {
                    input: ins.iter().map(|v| v[k]).collect(),
                    original: outs_a.iter().map(|v| v[k]).collect(),
                    optimized: outs_b.iter().map(|v| v[k]).collect(),
                })
            } else {
                None
            }
        })
    };
    if free_lines.len() <= EXHAUSTIVE_LINE_LIMIT {
        let total = 1u64 << free_lines.len();
        let (span, jobs) = span_jobs(total);
        let spans = par::run_indexed(jobs, |job| {
            let lo = job as u64 * span;
            let hi = (lo + span).min(total);
            let mut sa = BatchState::zeros(n, 0);
            let mut sb = BatchState::zeros(n, 0);
            for (base, count) in consecutive_batches_in(lo, hi) {
                sa.reset(count);
                sa.load_consecutive(&free_lines, base);
                if let Some(w) = run_batch(&mut sa, &mut sb, count) {
                    return Some(w);
                }
            }
            None
        });
        return spans.into_iter().flatten().next();
    }
    let free_chunks: Vec<&[usize]> = free_lines.chunks(64).collect();
    // Same up-front draw as `equivalence_witness`: the RNG stream is
    // identical to the serial loop's, one whole batch per pool job.
    let mut rng = StdRng::seed_from_u64(0x0917_C3EC);
    let mut batches: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut remaining = SAMPLED_STATES;
    while remaining > 0 {
        let take = remaining.min(BATCH_STATES as u64) as usize;
        batches.push(
            free_chunks
                .iter()
                .map(|lines| {
                    let mask = if lines.len() == 64 {
                        u64::MAX
                    } else {
                        (1u64 << lines.len()) - 1
                    };
                    (0..take).map(|_| rng.gen::<u64>() & mask).collect()
                })
                .collect(),
        );
        remaining -= take as u64;
    }
    let results = par::run_indexed(batches.len(), |bi| {
        let values = &batches[bi];
        let take = values[0].len();
        let mut sa = BatchState::zeros(n, take);
        for (lines, vals) in free_chunks.iter().zip(values) {
            sa.load_register(lines, vals);
        }
        let mut sb = BatchState::zeros(n, 0);
        run_batch(&mut sa, &mut sb, take)
    });
    results.into_iter().flatten().next()
}

/// [`optimize`], then machine-check the rewritten circuit against the
/// original with [`equivalence_witness`] — so an optimizer bug surfaces
/// as a hard error carrying a witness state, never as a silently wrong
/// cost figure.
///
/// # Errors
///
/// Returns the witness when the rewritten circuit diverges.
pub fn optimize_checked(circuit: &Circuit, options: &OptOptions) -> Result<Optimized, OptMismatch> {
    optimize_checked_assuming(circuit, options, &[])
}

/// [`optimize_assuming`], then machine-check the rewritten circuit with
/// [`equivalence_witness_assuming`] over the assumed state space.
///
/// # Errors
///
/// Returns the witness when the rewritten circuit diverges on a state
/// satisfying the assumption.
pub fn optimize_checked_assuming(
    circuit: &Circuit,
    options: &OptOptions,
    zero_lines: &[usize],
) -> Result<Optimized, OptMismatch> {
    let out = optimize_assuming(circuit, options, zero_lines);
    match equivalence_witness_assuming(circuit, &out.circuit, zero_lines) {
        None => Ok(out),
        Some(witness) => Err(witness),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Control, Gate};

    fn opts() -> OptOptions {
        OptOptions::default()
    }

    #[test]
    fn adjacent_equal_gates_cancel() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        c.toffoli(0, 1, 2);
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.circuit.num_gates(), 0);
        assert_eq!(out.stats.cancellations, 1);
        assert_eq!(out.circuit.num_lines(), 3, "line count preserved");
    }

    #[test]
    fn cancellation_commutes_through_disjoint_gates() {
        // The Toffoli pair is separated by gates on disjoint lines and by
        // a same-target CNOT chain; all commute, so the pair still dies.
        let mut c = Circuit::new(6);
        c.toffoli(0, 1, 2);
        c.cnot(3, 4);
        c.not(5);
        c.cnot(3, 2); // same target as the Toffoli: commutes
        c.toffoli(0, 1, 2);
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.stats.cancellations, 1);
        assert_eq!(out.circuit.num_gates(), 3);
    }

    #[test]
    fn blocked_pairs_are_left_alone() {
        // The CNOT rewrites line 1 — a control of the Toffoli — so the
        // pair must NOT cancel (and indeed is not equivalent to removal).
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        c.cnot(0, 1);
        c.toffoli(0, 1, 2);
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.circuit.num_gates(), 3);
        assert_eq!(out.stats.total_rewrites(), 0);
    }

    #[test]
    fn conflicting_controls_commute_past_a_target_overlap() {
        // b targets a control line of a, but their controls conflict on
        // line 3, so they can never both fire — a's partner is reachable.
        let mut c = Circuit::new(4);
        let a = Gate::mct(vec![Control::positive(1), Control::positive(3)], 0);
        let b = Gate::mct(vec![Control::negative(3)], 1);
        c.add_gate(a.clone());
        c.add_gate(b.clone());
        c.add_gate(a);
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.stats.cancellations, 1);
        assert_eq!(out.circuit.gates(), &[b]);
    }

    #[test]
    fn bennett_style_mirror_cancels_through_output_copies() {
        // compute | copy | uncompute — the innermost mirror pair sits
        // around the copy block and cancels first, cascading outward.
        let mut c = Circuit::new(6);
        c.toffoli(0, 1, 3); // compute
        c.toffoli(1, 2, 4);
        c.cnot(4, 5); // copy (reads only line 4)
        c.toffoli(1, 2, 4); // uncompute
        c.toffoli(0, 1, 3);
        let out = optimize_checked(&c, &opts()).unwrap();
        // The (1,2;4) pair is blocked by the copy reading line 4, but the
        // outer (0,1;3) pair commutes through everything and cancels.
        assert_eq!(out.stats.cancellations, 1);
        assert_eq!(out.circuit.num_gates(), 3);
    }

    #[test]
    fn window_bounds_the_partner_search() {
        // The spacers all read line 0, so the whole cascade is one
        // support-connected component — the window bound, which counts
        // live gates of the component, is what keeps the pair apart.
        // They commute with the Toffoli pair (disjoint targets, no
        // target/support overlap) and never cancel or merge with each
        // other (pairwise distinct targets).
        let mut c = Circuit::new(40);
        c.toffoli(0, 1, 2);
        for l in 3..39 {
            c.cnot(0, l); // 36 commuting spacers
        }
        c.toffoli(0, 1, 2);
        let narrow = optimize(&c, &OptOptions { window: 8 });
        assert_eq!(narrow.stats.total_rewrites(), 0, "partner out of window");
        let wide = optimize(&c, &OptOptions { window: 64 });
        assert_eq!(wide.stats.cancellations, 1);
    }

    #[test]
    fn disjoint_components_optimize_independently_and_merge_in_order() {
        // Three support-disjoint components interleaved in the cascade;
        // the middle one is irreducible, the outer two each cancel away
        // (component C as a nested mirror: inner pair first, then outer).
        let mut c = Circuit::new(9);
        c.toffoli(0, 1, 2); // component A
        c.toffoli(3, 4, 5); // component B (survives)
        c.cnot(6, 7); // component C
        c.cnot(7, 8); // component C
        c.toffoli(0, 1, 2); // component A cancels
        c.cnot(7, 8); // component C cancels
        c.cnot(6, 7); // component C cancels
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.stats.cancellations, 3);
        assert_eq!(out.circuit.gates(), &[Gate::toffoli(3, 4, 5)]);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        // The component shards are merged in original order regardless of
        // which worker finishes first; pin byte-identity across worker
        // counts within one process by forcing the serial path (the CI
        // matrix pins it across processes via QDA_WORKERS).
        let mut c = Circuit::new(12);
        for i in 0..4 {
            let base = 3 * i;
            c.toffoli(base, base + 1, base + 2);
            c.not(base);
            c.not(base);
            c.toffoli(base, base + 1, base + 2);
        }
        let a = optimize(&c, &opts());
        let b = optimize(&c, &opts());
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.circuit.num_gates(), 0);
    }

    #[test]
    fn not_propagation_flips_and_annihilates() {
        let mut c = Circuit::new(3);
        c.not(1);
        c.toffoli(0, 1, 2);
        c.cnot(1, 0);
        c.not(1);
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.stats.not_absorptions, 1);
        assert_eq!(
            out.circuit.gates(),
            &[
                Gate::mct(vec![Control::positive(0), Control::negative(1)], 2),
                Gate::mct(vec![Control::negative(1)], 0),
            ]
        );
    }

    #[test]
    fn rewrites_cascade_to_a_fixpoint() {
        // A NOT sandwich whose absorption enables a polarity merge whose
        // result cancels with a trailing CNOT: three rules chained.
        let mut c = Circuit::new(3);
        c.not(1);
        c.mct(vec![Control::positive(0), Control::negative(1)], 2);
        c.not(1);
        c.mct(vec![Control::positive(0), Control::negative(1)], 2);
        c.cnot(0, 2);
        let out = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(out.circuit.num_gates(), 0, "{}", out.circuit);
        assert!(out.stats.total_rewrites() >= 3);
    }

    #[test]
    fn optimizer_is_deterministic() {
        let mut c = Circuit::new(4);
        for _ in 0..3 {
            c.toffoli(0, 1, 3);
            c.cnot(2, 3);
            c.not(0);
        }
        let a = optimize(&c, &opts());
        let b = optimize(&c, &opts());
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn nothing_is_ever_rejected_by_the_policy() {
        let mut c = Circuit::new(5);
        for i in 0..4 {
            c.toffoli(i, (i + 1) % 5, (i + 2) % 5);
            c.not(i);
            c.not(i);
        }
        let out = optimize(&c, &opts());
        assert_eq!(out.stats.rejected, 0);
    }

    #[test]
    fn equivalence_witness_finds_divergence() {
        let mut a = Circuit::new(3);
        a.cnot(0, 2);
        let mut b = Circuit::new(3);
        b.cnot(1, 2);
        let w = equivalence_witness(&a, &b).expect("different circuits");
        // Re-confirm the witness by scalar simulation.
        assert_eq!(a.simulate_u64(w.input[0]), w.original[0]);
        assert_eq!(b.simulate_u64(w.input[0]), w.optimized[0]);
        assert_ne!(w.original, w.optimized);
        assert!(w.to_string().contains("optimizer changed"));
        assert_eq!(equivalence_witness(&a, &a), None);
    }

    #[test]
    fn equivalence_witness_samples_wide_circuits() {
        // 70 lines: beyond both the exhaustive limit and one 64-bit
        // chunk. A single-gate difference must still be caught.
        let mut a = Circuit::new(70);
        a.cnot(0, 69);
        a.toffoli(1, 68, 2);
        let mut b = a.clone();
        let w = equivalence_witness(&a, &b);
        assert_eq!(w, None, "identical circuits agree on every sample");
        b.not(67);
        let w = equivalence_witness(&a, &b).expect("NOT on line 67 must be seen");
        assert_eq!(w.input.len(), 2, "two 64-line chunks");
        assert_eq!(w.original[1] ^ w.optimized[1], 1 << (67 - 64));
    }

    #[test]
    fn const_rules_fire_only_under_the_assumption() {
        let mut c = Circuit::new(4);
        // Positive control on assumed-zero line 2: never fires.
        c.toffoli(0, 2, 1);
        // Negative control on line 2: always satisfied, drops away.
        c.mct(vec![Control::positive(3), Control::negative(2)], 1);
        let plain = optimize_checked(&c, &opts()).unwrap();
        assert_eq!(plain.stats.const_dead, 0);
        assert_eq!(plain.stats.const_drops, 0);
        assert_eq!(plain.circuit.num_gates(), 2, "no rules without assumption");
        let out = optimize_checked_assuming(&c, &opts(), &[2]).unwrap();
        assert_eq!(out.stats.const_dead, 1);
        assert_eq!(out.stats.const_drops, 1);
        assert_eq!(out.circuit.gates(), &[Gate::cnot(3, 1)]);
    }

    #[test]
    fn const_prop_tracks_not_gates_and_feeds_the_peephole_pass() {
        let mut c = Circuit::new(4);
        c.not(2); // assumed-zero line 2 becomes const 1
        c.toffoli(0, 2, 1); // positive control on const 1: drops to CNOT
        c.mct(vec![Control::positive(3), Control::negative(2)], 1); // never fires
        c.not(2); // line 2 back to const 0
        let out = optimize_checked_assuming(&c, &opts(), &[2]).unwrap();
        // After the const pass the NOT pair encloses no control on line 2
        // any more, so NOT-propagation annihilates it.
        assert_eq!(out.circuit.gates(), &[Gate::cnot(0, 1)]);
        assert_eq!(out.stats.const_dead, 1);
        assert_eq!(out.stats.const_drops, 1);
        assert!(
            out.stats.cancellations + out.stats.not_absorptions >= 1,
            "the peephole pass must have removed the NOT pair"
        );
    }

    #[test]
    fn assumed_equivalence_checks_exactly_the_assumed_states() {
        // toffoli(0,1,2) is the identity on every state with line 0 = 0.
        let mut a = Circuit::new(3);
        a.toffoli(0, 1, 2);
        let b = Circuit::new(3);
        assert!(equivalence_witness(&a, &b).is_some(), "full space differs");
        assert_eq!(equivalence_witness_assuming(&a, &b, &[0]), None);
        // A divergence inside the assumed space is still caught, and the
        // witness respects the assumption.
        let mut c = Circuit::new(3);
        c.cnot(1, 2);
        let w = equivalence_witness_assuming(&a, &c, &[0]).expect("differs at line0=0");
        assert_eq!(w.input[0] & 1, 0, "witness has line 0 at zero");
        assert_eq!(a.simulate_u64(w.input[0]), w.original[0]);
        assert_eq!(c.simulate_u64(w.input[0]), w.optimized[0]);
    }

    #[test]
    fn assumed_equivalence_samples_wide_circuits() {
        // 80 lines, 10 assumed zero: the free space is sampled. A gate
        // guarded by an assumed-zero line is invisible; one guarded by a
        // free line is not.
        let zeros: Vec<usize> = (70..80).collect();
        let mut a = Circuit::new(80);
        a.cnot(0, 69);
        let mut b = a.clone();
        b.add_gate(Gate::toffoli(1, 70, 2)); // control on assumed-zero 70
        assert_eq!(equivalence_witness_assuming(&a, &b, &zeros), None);
        b.add_gate(Gate::cnot(3, 4)); // free-line divergence
        let w = equivalence_witness_assuming(&a, &b, &zeros).expect("must be seen");
        for &l in &zeros {
            assert_eq!(w.input[l / 64] >> (l % 64) & 1, 0, "assumption holds");
        }
    }

    #[test]
    fn empty_and_single_gate_circuits_pass_through() {
        let empty = Circuit::new(4);
        let out = optimize_checked(&empty, &opts()).unwrap();
        assert_eq!(out.circuit.num_gates(), 0);
        let mut single = Circuit::new(4);
        single.toffoli(0, 1, 2);
        let out = optimize_checked(&single, &opts()).unwrap();
        assert_eq!(out.circuit.num_gates(), 1);
    }
}
