//! The rewrite-rule catalogue of the peephole optimizer: sound local
//! identities over MPMCT gate pairs, plus the cost-aware acceptance
//! policy that decides whether a structurally applicable rewrite may
//! fire.
//!
//! Every rule is a *semantic equivalence on the full line space* (not
//! just on designated input/output lines), so the optimizer preserves
//! ancilla cleanliness and input preservation for free. The unit tests
//! below check each rule exhaustively against scalar simulation.

use crate::cost::{t_count_gate, t_count_mct};
use crate::gate::Gate;
use crate::packed::{PackedGate, PackedGateBuf};

/// Whether two adjacent gates may be swapped without changing the circuit
/// function. Three sufficient (and individually exhaustive-tested)
/// conditions:
///
/// 1. **Equal targets** — both gates only XOR into the same line, and
///    neither fire condition can read that line (a target is never among
///    its own gate's controls).
/// 2. **Disjoint target/support** — neither target appears in the other
///    gate's support (controls or target), so neither gate can change the
///    other's fire condition.
/// 3. **Conflicting controls** — the gates share a control line with
///    opposite polarity, so they can never fire on the same state; the
///    firing one is the same whichever order they run in.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    a.target() == b.target()
        || (!a.acts_on(b.target()) && !b.acts_on(a.target()))
        || a.controls_conflict(b)
}

/// Which rewrite rule produced a gate-pair rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergeRule {
    /// Equal control sets except one line's polarity: the pair fires iff
    /// the shared controls hold (regardless of the differing line), so it
    /// fuses into one gate *without* that control.
    Polarity,
    /// One control set is the other plus exactly one extra control: the
    /// pair fuses into the larger gate with the extra control's polarity
    /// flipped (`P ⊕ (P ∧ x) = P ∧ ¬x`).
    Subset,
}

/// Attempts to fuse two gates with the same target into one gate.
/// Returns the fused gate and the rule that applied, or `None` when no
/// control-merge template matches. Equal gates are *not* merged — they
/// cancel outright, which the optimizer handles as its own (cheaper)
/// rule.
pub fn merge(a: &Gate, b: &Gate) -> Option<(Gate, MergeRule)> {
    if a.target() != b.target() {
        return None;
    }
    let (ca, cb) = (a.controls(), b.controls());
    if ca.len() == cb.len() {
        // Same lines, polarity differing on exactly one of them.
        let mut differing = None;
        for (x, y) in ca.iter().zip(cb) {
            if x.line() != y.line() {
                return None;
            }
            if x.is_positive() != y.is_positive() {
                if differing.is_some() {
                    return None;
                }
                differing = Some(x.line());
            }
        }
        let line = differing?; // equal gates cancel instead
        Some((a.without_control(line), MergeRule::Polarity))
    } else if ca.len().abs_diff(cb.len()) == 1 {
        let (small, large) = if ca.len() < cb.len() { (a, b) } else { (b, a) };
        // Every small control must appear identically in the large gate,
        // leaving exactly one extra control.
        let mut extra = None;
        let mut i = 0;
        let small_controls = small.controls();
        for c in large.controls() {
            if i < small_controls.len() && small_controls[i].line() == c.line() {
                if small_controls[i].is_positive() != c.is_positive() {
                    return None;
                }
                i += 1;
            } else {
                if extra.is_some() {
                    return None;
                }
                extra = Some(*c);
            }
        }
        let extra = extra.filter(|_| i == small_controls.len())?;
        Some((large.with_flipped_control(extra.line()), MergeRule::Subset))
    } else {
        None
    }
}

/// [`merge`] over packed gates: both templates reduce to a handful of
/// whole-word mask operations instead of walking control vectors.
///
/// * **Polarity** — control masks equal, polarity masks differing in
///   exactly one bit: drop that bit from both masks.
/// * **Subset** — one control mask extends the other by exactly one bit,
///   polarities agreeing on the shared controls
///   (`(pol_a ^ pol_b) & (ctrl_a & ctrl_b) == 0`): the larger gate with
///   the extra bit's polarity flipped.
pub fn merge_packed(a: &PackedGate<'_>, b: &PackedGate<'_>) -> Option<(PackedGateBuf, MergeRule)> {
    if a.target() != b.target() {
        return None;
    }
    let target = u32::try_from(a.target()).expect("line counts fit u32");
    let (ca, cb) = (a.ctrl_words(), b.ctrl_words());
    let (pa, pb) = (a.pol_words(), b.pol_words());
    if ca == cb {
        let diff_bits: u32 = pa.iter().zip(pb).map(|(&x, &y)| (x ^ y).count_ones()).sum();
        if diff_bits != 1 {
            return None; // 0 differing bits = equal gates, which cancel
        }
        let ctrl: Vec<u64> = ca
            .iter()
            .zip(pa.iter().zip(pb))
            .map(|(&c, (&x, &y))| c & !(x ^ y))
            .collect();
        let pol: Vec<u64> = pa.iter().zip(pb).map(|(&x, &y)| x & y).collect();
        return Some((
            PackedGateBuf::from_masks(ctrl, pol, target),
            MergeRule::Polarity,
        ));
    }
    // Shared controls must agree in polarity for the subset template.
    if pa
        .iter()
        .zip(pb)
        .zip(ca.iter().zip(cb))
        .any(|((&x, &y), (&cx, &cy))| (x ^ y) & (cx & cy) != 0)
    {
        return None;
    }
    let a_minus_b: Vec<u64> = ca.iter().zip(cb).map(|(&x, &y)| x & !y).collect();
    let b_minus_a: Vec<u64> = ca.iter().zip(cb).map(|(&x, &y)| !x & y).collect();
    let a_extra: u32 = a_minus_b.iter().map(|w| w.count_ones()).sum();
    let b_extra: u32 = b_minus_a.iter().map(|w| w.count_ones()).sum();
    let (large, extra) = match (a_extra, b_extra) {
        (1, 0) => (a, a_minus_b),
        (0, 1) => (b, b_minus_a),
        _ => return None,
    };
    let ctrl = large.ctrl_words().to_vec();
    let pol: Vec<u64> = large
        .pol_words()
        .iter()
        .zip(&extra)
        .map(|(&p, &e)| p ^ e)
        .collect();
    Some((
        PackedGateBuf::from_masks(ctrl, pol, target),
        MergeRule::Subset,
    ))
}

/// The cost delta of replacing `removed` gates with `added` gates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RewriteCost {
    /// Total T-count of the gates taken out.
    pub t_removed: u64,
    /// Total T-count of the gates put in.
    pub t_added: u64,
    /// Number of gates taken out.
    pub gates_removed: usize,
    /// Number of gates put in.
    pub gates_added: usize,
}

impl RewriteCost {
    /// Costs a rewrite replacing `removed` with `added`.
    pub fn of(removed: &[&Gate], added: &[&Gate]) -> Self {
        Self {
            t_removed: removed.iter().map(|g| t_count_gate(g)).sum(),
            t_added: added.iter().map(|g| t_count_gate(g)).sum(),
            gates_removed: removed.len(),
            gates_added: added.len(),
        }
    }

    /// [`RewriteCost::of`] from control counts alone (the T model only
    /// reads the control count, so packed gates cost a popcount each).
    pub fn of_controls(removed: &[usize], added: &[usize]) -> Self {
        Self {
            t_removed: removed.iter().map(|&c| t_count_mct(c)).sum(),
            t_added: added.iter().map(|&c| t_count_mct(c)).sum(),
            gates_removed: removed.len(),
            gates_added: added.len(),
        }
    }

    /// The acceptance policy: a rewrite may fire only if it never
    /// increases the T-count, with gate count as the tie-break — so every
    /// accepted rewrite strictly improves `(t_count, gates)`
    /// lexicographically. Control-polarity changes are free at both
    /// levels, which is what makes NOT-propagation admissible.
    pub fn accepted(&self) -> bool {
        self.t_added < self.t_removed
            || (self.t_added == self.t_removed && self.gates_added < self.gates_removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Control;

    /// All valid gates on `lines` lines (every target × control subset ×
    /// polarity assignment).
    fn all_gates(lines: usize) -> Vec<Gate> {
        let mut gates = Vec::new();
        for target in 0..lines {
            let others: Vec<usize> = (0..lines).filter(|&l| l != target).collect();
            for cmask in 0..(1u32 << others.len()) {
                for pmask in 0..(1u32 << others.len()) {
                    if pmask & !cmask != 0 {
                        continue; // polarity bits only for chosen controls
                    }
                    let controls: Vec<Control> = others
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| cmask >> i & 1 == 1)
                        .map(|(i, &l)| {
                            if pmask >> i & 1 == 1 {
                                Control::positive(l)
                            } else {
                                Control::negative(l)
                            }
                        })
                        .collect();
                    gates.push(Gate::mct(controls, target));
                }
            }
        }
        gates
    }

    fn pair_circuit(lines: usize, a: &Gate, b: &Gate) -> Circuit {
        let mut c = Circuit::new(lines);
        c.add_gate(a.clone());
        c.add_gate(b.clone());
        c
    }

    #[test]
    fn commutation_verdicts_are_sound() {
        // Exhaustive over all gate pairs on 3 lines (and a sanity count):
        // whenever `commutes` says yes, both orders must agree on every
        // basis state.
        let gates = all_gates(3);
        let mut commuting = 0u32;
        for a in &gates {
            for b in &gates {
                if !commutes(a, b) {
                    continue;
                }
                commuting += 1;
                let ab = pair_circuit(3, a, b);
                let ba = pair_circuit(3, b, a);
                for x in 0..8u64 {
                    assert_eq!(ab.simulate_u64(x), ba.simulate_u64(x), "{a} vs {b} x={x}");
                }
            }
        }
        // 27 distinct gates exist on 3 lines (729 ordered pairs); more
        // than half commute under the three conditions.
        assert!(commuting > 350, "rule far too conservative: {commuting}");
    }

    #[test]
    fn commutation_is_symmetric() {
        let gates = all_gates(3);
        for a in &gates {
            for b in &gates {
                assert_eq!(commutes(a, b), commutes(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn non_commuting_pairs_really_do_not_commute_often() {
        // The rule set is sufficient, not complete — but on 3 lines the
        // overwhelming majority of rejected pairs must genuinely not
        // commute, otherwise a rule is mis-implemented.
        let gates = all_gates(3);
        let (mut rejected, mut truly) = (0u32, 0u32);
        for a in &gates {
            for b in &gates {
                if commutes(a, b) {
                    continue;
                }
                rejected += 1;
                let ab = pair_circuit(3, a, b);
                let ba = pair_circuit(3, b, a);
                if (0..8u64).any(|x| ab.simulate_u64(x) != ba.simulate_u64(x)) {
                    truly += 1;
                }
            }
        }
        assert!(
            truly * 100 >= rejected * 90,
            "only {truly}/{rejected} rejected pairs actually fail to commute"
        );
    }

    #[test]
    fn equal_target_gates_always_commute() {
        let a = Gate::mct(vec![Control::positive(0), Control::negative(1)], 3);
        let b = Gate::mct(vec![Control::positive(1)], 3);
        assert!(commutes(&a, &b));
        assert!(commutes(&Gate::not(3), &a), "NOT on the shared target");
    }

    #[test]
    fn merged_pairs_are_semantically_equal() {
        // Exhaustive: wherever `merge` fires, the fused gate must equal
        // the adjacent pair on every basis state.
        let gates = all_gates(4);
        let mut fired = [0u32; 2];
        for a in &gates {
            for b in &gates {
                let Some((m, rule)) = merge(a, b) else {
                    continue;
                };
                fired[(rule == MergeRule::Subset) as usize] += 1;
                let pair = pair_circuit(4, a, b);
                let mut fused = Circuit::new(4);
                fused.add_gate(m.clone());
                for x in 0..16u64 {
                    assert_eq!(
                        pair.simulate_u64(x),
                        fused.simulate_u64(x),
                        "{a} · {b} ≠ {m} at x={x} ({rule:?})"
                    );
                }
            }
        }
        assert!(fired[0] > 0 && fired[1] > 0, "both rules must fire");
    }

    #[test]
    fn merge_is_symmetric_in_its_operands() {
        let gates = all_gates(4);
        for a in &gates {
            for b in &gates {
                assert_eq!(merge(a, b), merge(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn merge_requires_equal_targets_and_rejects_equal_gates() {
        let a = Gate::toffoli(0, 1, 2);
        assert_eq!(merge(&a, &a), None, "equal gates cancel, never merge");
        let other_target = Gate::toffoli(0, 1, 3);
        assert_eq!(merge(&a, &other_target), None);
    }

    #[test]
    fn polarity_merge_drops_the_differing_control() {
        let a = Gate::mct(vec![Control::positive(0), Control::positive(2)], 1);
        let b = Gate::mct(vec![Control::positive(0), Control::negative(2)], 1);
        let (m, rule) = merge(&a, &b).expect("polarity template");
        assert_eq!(rule, MergeRule::Polarity);
        assert_eq!(m, Gate::cnot(0, 1));
    }

    #[test]
    fn subset_merge_flips_the_extra_control() {
        // T(0;1) · T(0,2;1) = T(0,!2;1).
        let small = Gate::cnot(0, 1);
        let large = Gate::mct(vec![Control::positive(0), Control::positive(2)], 1);
        let (m, rule) = merge(&small, &large).expect("subset template");
        assert_eq!(rule, MergeRule::Subset);
        assert_eq!(
            m,
            Gate::mct(vec![Control::positive(0), Control::negative(2)], 1)
        );
        // NOT + CNOT on the same target is the degenerate subset case.
        let (m, _) = merge(&Gate::not(1), &Gate::cnot(0, 1)).expect("NOT/CNOT");
        assert_eq!(m, Gate::mct(vec![Control::negative(0)], 1));
    }

    #[test]
    fn acceptance_policy_never_takes_t_regressions() {
        let tof = Gate::toffoli(0, 1, 2);
        let cnot = Gate::cnot(0, 2);
        // T drop: accepted.
        assert!(RewriteCost::of(&[&tof, &tof], &[]).accepted());
        assert!(RewriteCost::of(&[&tof, &cnot], &[&tof]).accepted());
        // T tie, gate drop: accepted.
        assert!(RewriteCost::of(&[&cnot, &cnot], &[]).accepted());
        assert!(RewriteCost::of(&[&cnot, &cnot], &[&Gate::not(2)]).accepted());
        // No improvement on either axis: rejected.
        assert!(!RewriteCost::of(&[&cnot], &[&cnot]).accepted());
        // T regression, even with fewer gates: rejected.
        assert!(!RewriteCost::of(&[&cnot, &cnot], &[&tof]).accepted());
    }

    #[test]
    fn packed_merge_agrees_with_the_legacy_template_exhaustively() {
        // Every gate pair on 4 lines: the mask-level templates must fire
        // exactly where the control-vector templates fire, with the same
        // rule and the same fused gate.
        let gates = all_gates(4);
        for a in &gates {
            for b in &gates {
                let pa = PackedGateBuf::from_gate(a, 1);
                let pb = PackedGateBuf::from_gate(b, 1);
                match (merge(a, b), merge_packed(&pa.view(), &pb.view())) {
                    (None, None) => {}
                    (Some((g, r)), Some((p, pr))) => {
                        assert_eq!(r, pr, "{a} · {b}");
                        assert_eq!(p.view().to_gate(), g, "{a} · {b}");
                    }
                    (legacy, packed) => {
                        panic!("{a} · {b}: legacy {legacy:?} vs packed {packed:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn packed_commutation_agrees_with_the_legacy_rule_exhaustively() {
        let gates = all_gates(3);
        for a in &gates {
            for b in &gates {
                let pa = PackedGateBuf::from_gate(a, 1);
                let pb = PackedGateBuf::from_gate(b, 1);
                assert_eq!(
                    pa.view().commutes_with(&pb.view()),
                    commutes(a, b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn control_count_costing_matches_gate_costing() {
        let tof = Gate::toffoli(0, 1, 2);
        let cnot = Gate::cnot(0, 2);
        assert_eq!(
            RewriteCost::of(&[&tof, &cnot], &[&tof]),
            RewriteCost::of_controls(&[2, 1], &[2])
        );
        assert_eq!(
            RewriteCost::of(&[&cnot, &cnot], &[]),
            RewriteCost::of_controls(&[1, 1], &[])
        );
    }

    #[test]
    fn every_catalogue_rewrite_passes_the_policy() {
        // The rule catalogue is constructed to satisfy the policy by
        // design; pin that as an exhaustive fact on 4 lines.
        let gates = all_gates(4);
        for a in &gates {
            for b in &gates {
                if a == b {
                    assert!(RewriteCost::of(&[a, b], &[]).accepted(), "cancel {a}");
                }
                if let Some((m, rule)) = merge(a, b) {
                    assert!(
                        RewriteCost::of(&[a, b], &[&m]).accepted(),
                        "{rule:?}: {a} · {b} → {m}"
                    );
                }
            }
        }
    }
}
