//! The sliding-window gate store behind the worklist optimizer: a
//! doubly-linked list over a flat arena, so removing or replacing a gate
//! is O(1), forward scans skip dead slots in O(1) per step, and a
//! bounded window of live predecessors can be collected cheaply when a
//! rewrite needs to requeue its neighbourhood.
//!
//! Keeping stable ids (arena slots) instead of shifting a `Vec<Gate>`
//! is what makes the optimizer near-linear: a rewrite touches only the
//! gates it removes plus an O(window) requeue set, never the whole
//! cascade.

use crate::gate::Gate;

/// Sentinel id for "no gate" (list ends).
pub const NIL: usize = usize::MAX;

/// A gate cascade with O(1) removal/replacement and stable ids.
#[derive(Clone, Debug)]
pub struct GateList {
    gates: Vec<Option<Gate>>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    len: usize,
}

impl GateList {
    /// Builds the list from a cascade; id `i` is gate `i` of the input.
    pub fn new(gates: &[Gate]) -> Self {
        let n = gates.len();
        Self {
            gates: gates.iter().cloned().map(Some).collect(),
            prev: (0..n).map(|i| if i == 0 { NIL } else { i - 1 }).collect(),
            next: (0..n)
                .map(|i| if i + 1 == n { NIL } else { i + 1 })
                .collect(),
            head: if n == 0 { NIL } else { 0 },
            len: n,
        }
    }

    /// Number of live gates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no gate is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Id of the first live gate ([`NIL`] when empty).
    pub fn first(&self) -> usize {
        self.head
    }

    /// Whether `id` is a live gate.
    pub fn is_live(&self, id: usize) -> bool {
        id < self.gates.len() && self.gates[id].is_some()
    }

    /// The gate at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or out of range.
    pub fn gate(&self, id: usize) -> &Gate {
        self.gates[id].as_ref().expect("dead gate id")
    }

    /// Id of the live gate after `id` ([`NIL`] at the end).
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn next_live(&self, id: usize) -> usize {
        assert!(self.is_live(id), "next_live of dead id {id}");
        self.next[id]
    }

    /// Up to `k` live gate ids strictly before `id`, nearest first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn window_before(&self, id: usize, k: usize) -> Vec<usize> {
        assert!(self.is_live(id), "window_before of dead id {id}");
        let mut out = Vec::with_capacity(k);
        let mut p = self.prev[id];
        while p != NIL && out.len() < k {
            out.push(p);
            p = self.prev[p];
        }
        out
    }

    /// Removes the gate at `id` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn remove(&mut self, id: usize) {
        assert!(self.is_live(id), "remove of dead id {id}");
        let (p, n) = (self.prev[id], self.next[id]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n != NIL {
            self.prev[n] = p;
        }
        self.gates[id] = None;
        self.len -= 1;
    }

    /// Replaces the gate at `id`, keeping its position.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn replace(&mut self, id: usize, gate: Gate) {
        assert!(self.is_live(id), "replace of dead id {id}");
        self.gates[id] = Some(gate);
    }

    /// Inserts a gate immediately before the live gate `id`, growing the
    /// arena by one slot, and returns the new gate's id. O(1); existing
    /// ids are unaffected, so a splice can interleave insertions with
    /// removals freely (the resynthesis pass inserts a replacement window
    /// in order before the first original gate, then removes the
    /// originals).
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn insert_before(&mut self, id: usize, gate: Gate) -> usize {
        assert!(self.is_live(id), "insert_before of dead id {id}");
        let new = self.gates.len();
        let p = self.prev[id];
        self.gates.push(Some(gate));
        self.prev.push(p);
        self.next.push(id);
        if p == NIL {
            self.head = new;
        } else {
            self.next[p] = new;
        }
        self.prev[id] = new;
        self.len += 1;
        new
    }

    /// The live gates in cascade order.
    pub fn to_gates(&self) -> Vec<Gate> {
        let mut out = Vec::with_capacity(self.len);
        let mut id = self.head;
        while id != NIL {
            out.push(self.gates[id].clone().expect("live list node"));
            id = self.next[id];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Gate> {
        vec![
            Gate::not(0),
            Gate::cnot(0, 1),
            Gate::toffoli(0, 1, 2),
            Gate::cnot(1, 0),
            Gate::not(2),
        ]
    }

    #[test]
    fn round_trips_a_cascade() {
        let gates = sample();
        let list = GateList::new(&gates);
        assert_eq!(list.len(), 5);
        assert_eq!(list.to_gates(), gates);
        assert_eq!(list.first(), 0);
    }

    #[test]
    fn removal_links_over_dead_slots() {
        let mut list = GateList::new(&sample());
        list.remove(1);
        list.remove(3);
        assert_eq!(list.len(), 3);
        assert!(!list.is_live(1) && list.is_live(2));
        assert_eq!(list.next_live(0), 2);
        assert_eq!(list.next_live(2), 4);
        assert_eq!(list.next_live(4), NIL);
        let left: Vec<Gate> = list.to_gates();
        assert_eq!(
            left,
            vec![Gate::not(0), Gate::toffoli(0, 1, 2), Gate::not(2)]
        );
    }

    #[test]
    fn removing_the_head_moves_first() {
        let mut list = GateList::new(&sample());
        list.remove(0);
        assert_eq!(list.first(), 1);
        list.remove(1);
        assert_eq!(list.first(), 2);
        list.remove(2);
        list.remove(3);
        list.remove(4);
        assert!(list.is_empty());
        assert_eq!(list.first(), NIL);
    }

    #[test]
    fn replace_keeps_position() {
        let mut list = GateList::new(&sample());
        list.replace(2, Gate::cnot(2, 0));
        assert_eq!(list.to_gates()[2], Gate::cnot(2, 0));
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn window_before_is_bounded_and_skips_dead_ids() {
        let mut list = GateList::new(&sample());
        assert_eq!(list.window_before(4, 2), vec![3, 2]);
        assert_eq!(list.window_before(4, 10), vec![3, 2, 1, 0]);
        assert_eq!(list.window_before(0, 3), Vec::<usize>::new());
        list.remove(3);
        list.remove(1);
        assert_eq!(list.window_before(4, 10), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "dead id")]
    fn double_remove_is_loud() {
        let mut list = GateList::new(&sample());
        list.remove(1);
        list.remove(1);
    }

    #[test]
    fn insert_before_splices_in_order() {
        let mut list = GateList::new(&sample());
        // Replacement window [X(3), X(4)] spliced before gate 2, then the
        // original gates 2 and 3 removed — the resynthesis access pattern.
        let a = list.insert_before(2, Gate::not(3));
        let b = list.insert_before(2, Gate::not(4));
        assert!(list.is_live(a) && list.is_live(b));
        list.remove(2);
        list.remove(3);
        assert_eq!(
            list.to_gates(),
            vec![
                Gate::not(0),
                Gate::cnot(0, 1),
                Gate::not(3),
                Gate::not(4),
                Gate::not(2),
            ]
        );
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn insert_before_the_head_moves_first() {
        let mut list = GateList::new(&sample());
        let id = list.insert_before(list.first(), Gate::not(4));
        assert_eq!(list.first(), id);
        assert_eq!(list.to_gates()[0], Gate::not(4));
        assert_eq!(list.len(), 6);
        assert_eq!(list.window_before(0, 4), vec![id]);
    }

    #[test]
    #[should_panic(expected = "dead id")]
    fn insert_before_a_dead_id_is_loud() {
        let mut list = GateList::new(&sample());
        list.remove(2);
        list.insert_before(2, Gate::not(0));
    }
}
