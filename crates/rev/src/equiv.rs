//! Functional verification of synthesized reversible circuits.
//!
//! Mirrors the paper's methodology ("correctness of the synthesized designs
//! has been verified using ABC's combinational equivalence checker `cec`"):
//! every circuit coming out of a synthesis flow is replayed against the
//! golden model, exhaustively when the input space is small and with
//! randomized sampling otherwise.
//!
//! Replay runs on the bit-parallel [`crate::batchsim`] engine by default:
//! both exhaustive enumeration and random sampling proceed in
//! [`BATCH_STATES`]-state batches, so every gate is applied to 64 states
//! per lane word at once. When a batch flags a discrepancy, the batch is
//! re-run scalar, in order, to recover the exact witness input — the
//! reported [`VerifyOutcome::Mismatch`] / [`VerifyOutcome::DirtyLine`] is
//! identical to what a pure scalar run ([`VerifyOptions::batch`] `=
//! false`) would produce.
//!
//! Exhaustive enumeration requires `2^n` to be representable *and*
//! affordable: with a full 64-bit interface the space can only ever be
//! sampled, no matter how large [`VerifyOptions::exhaustive_limit`] is.
//! (An earlier version computed `1u64 << 64` here, which wraps in release
//! builds to a one-iteration loop — `verify_computes` then returned
//! [`VerifyOutcome::Verified`] without checking anything.)

use crate::batchsim::{consecutive_batches_in, span_jobs, BatchState, BATCH_STATES};
use crate::circuit::{Circuit, TooWideError, PERMUTATION_LINE_LIMIT};
use crate::state::BitState;
use qda_logic::par;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// What to check and how hard to try.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Exhaustive enumeration is used when the number of input lines is at
    /// most this (and below 64 — a 64-bit space can only be sampled).
    pub exhaustive_limit: usize,
    /// Number of random input samples when exhaustive checking is off.
    pub random_samples: u64,
    /// Use the bit-parallel batch engine (the default). `false` replays
    /// one state and one gate at a time — ~64× slower, kept as an escape
    /// hatch and as the differential-testing reference.
    pub batch: bool,
    /// Additionally require every line that is neither an input nor an
    /// output to end at zero (clean ancillae, as Bennett-style circuits
    /// guarantee).
    pub check_ancilla_clean: bool,
    /// Additionally require input lines (that are not also output lines)
    /// to be preserved.
    pub check_inputs_preserved: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        // The batch engine makes much larger budgets affordable than the
        // scalar replay these defaults were originally tuned for
        // (exhaustive_limit 12 / 512 samples).
        Self {
            exhaustive_limit: 16,
            random_samples: 4096,
            batch: true,
            check_ancilla_clean: false,
            check_inputs_preserved: false,
        }
    }
}

/// Result of a verification run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyOutcome {
    /// Exhaustively proven correct.
    Verified,
    /// All random samples agreed.
    ProbablyCorrect {
        /// Number of inputs tested.
        samples: u64,
    },
    /// The circuit output disagrees with the oracle.
    Mismatch {
        /// Failing input value.
        input: u64,
        /// Oracle output.
        expected: u64,
        /// Circuit output.
        actual: u64,
    },
    /// An ancilla or preserved-input line ended in the wrong state.
    DirtyLine {
        /// Failing input value.
        input: u64,
        /// Offending line.
        line: usize,
    },
    /// Verification was skipped (interface wider than the 64-bit
    /// harness supports; e.g. the paper's n = 128 instance).
    Skipped,
}

impl VerifyOutcome {
    /// Whether no problem was found.
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            VerifyOutcome::Verified
                | VerifyOutcome::ProbablyCorrect { .. }
                | VerifyOutcome::Skipped
        )
    }
}

/// Replays one input scalar (one basis state, one gate at a time) and
/// checks outputs plus the optional line invariants.
fn check_scalar<F: Fn(u64) -> u64>(
    circuit: &Circuit,
    input_lines: &[usize],
    output_lines: &[usize],
    oracle: &F,
    options: &VerifyOptions,
    x: u64,
) -> VerifyOutcome {
    let mut state = BitState::zeros(circuit.num_lines());
    state.write_register(input_lines, x);
    circuit.apply(&mut state);
    let actual = state.read_register(output_lines);
    let expected = oracle(x);
    if actual != expected {
        return VerifyOutcome::Mismatch {
            input: x,
            expected,
            actual,
        };
    }
    if options.check_ancilla_clean || options.check_inputs_preserved {
        for line in 0..circuit.num_lines() {
            let is_input = input_lines.contains(&line);
            let is_output = output_lines.contains(&line);
            if is_output {
                continue;
            }
            if is_input {
                if options.check_inputs_preserved {
                    let idx = input_lines.iter().position(|&l| l == line).expect("input");
                    if state.get(line) != ((x >> idx) & 1 == 1) {
                        return VerifyOutcome::DirtyLine { input: x, line };
                    }
                }
            } else if options.check_ancilla_clean && state.get(line) {
                return VerifyOutcome::DirtyLine { input: x, line };
            }
        }
    }
    VerifyOutcome::Verified
}

/// Whether two lanes agree on every valid (non-phantom) state bit.
fn lanes_equal(state: &BatchState, a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .zip(b)
        .enumerate()
        .all(|(w, (x, y))| (x ^ y) & state.word_mask(w) == 0)
}

/// Checks one batch of arbitrary inputs bit-parallel (the sampling
/// path); on any discrepancy the batch is replayed scalar, in order, so
/// the reported witness is exactly the one a pure scalar run would find.
fn check_batch<F: Fn(u64) -> u64>(
    circuit: &Circuit,
    input_lines: &[usize],
    output_lines: &[usize],
    oracle: &F,
    options: &VerifyOptions,
    inputs: &[u64],
) -> VerifyOutcome {
    let mut state = BatchState::zeros(circuit.num_lines(), inputs.len());
    state.load_register(input_lines, inputs);
    check_loaded_batch(
        circuit,
        input_lines,
        output_lines,
        oracle,
        options,
        &mut state,
        inputs.iter().copied(),
    )
}

/// Checks the consecutive inputs `base..base + count` bit-parallel in a
/// caller-provided (reused) batch buffer. The inputs are never
/// materialized: the lanes are synthesized in place by
/// [`BatchState::load_consecutive`].
#[allow(clippy::too_many_arguments)]
fn check_consecutive_batch<F: Fn(u64) -> u64>(
    circuit: &Circuit,
    input_lines: &[usize],
    output_lines: &[usize],
    oracle: &F,
    options: &VerifyOptions,
    state: &mut BatchState,
    base: u64,
    count: usize,
) -> VerifyOutcome {
    state.reset(count);
    state.load_consecutive(input_lines, base);
    check_loaded_batch(
        circuit,
        input_lines,
        output_lines,
        oracle,
        options,
        state,
        base..base + count as u64,
    )
}

/// The shared tail of the two batch checkers: runs a loaded batch and,
/// on any discrepancy, replays the same inputs scalar, in order.
fn check_loaded_batch<F, I>(
    circuit: &Circuit,
    input_lines: &[usize],
    output_lines: &[usize],
    oracle: &F,
    options: &VerifyOptions,
    state: &mut BatchState,
    inputs: I,
) -> VerifyOutcome
where
    F: Fn(u64) -> u64,
    I: Iterator<Item = u64> + Clone,
{
    // Snapshot the lanes the preserved-inputs check compares against.
    let preserved: Vec<(usize, Vec<u64>)> = if options.check_inputs_preserved {
        input_lines
            .iter()
            .filter(|l| !output_lines.contains(l))
            .map(|&l| (l, state.lane(l).to_vec()))
            .collect()
    } else {
        Vec::new()
    };
    circuit.apply_batch(state);

    let actual = state.read_register(output_lines);
    let mut clean = actual
        .iter()
        .zip(inputs.clone())
        .all(|(&a, x)| a == oracle(x));
    if clean {
        clean = preserved
            .iter()
            .all(|(l, before)| lanes_equal(state, state.lane(*l), before));
    }
    if clean && options.check_ancilla_clean {
        let zero = vec![0u64; state.words_per_line()];
        clean = (0..circuit.num_lines())
            .filter(|l| !output_lines.contains(l) && !input_lines.contains(l))
            .all(|l| lanes_equal(state, state.lane(l), &zero));
    }
    if clean {
        return VerifyOutcome::Verified;
    }
    for x in inputs {
        let r = check_scalar(circuit, input_lines, output_lines, oracle, options, x);
        if !r.is_ok() {
            return r;
        }
    }
    unreachable!("batch simulation flagged a failure that scalar replay cannot reproduce")
}

/// Checks that `circuit` computes `oracle` when `input_lines` carry the
/// input bits (all other lines start at zero) and `output_lines` carry the
/// result afterwards.
///
/// `input_lines` and `output_lines` may overlap (in-place circuits).
///
/// Inputs are enumerated exhaustively when there are fewer than 64 of
/// them and at most [`VerifyOptions::exhaustive_limit`]; otherwise
/// [`VerifyOptions::random_samples`] random inputs are drawn (a full
/// 64-bit interface is always sampled — the exhaustive space is not
/// enumerable). Both paths run bit-parallel unless
/// [`VerifyOptions::batch`] is off, and report the same witness either
/// way.
///
/// Batch sweeps are sharded across the worker pool (`qda_logic::par`):
/// exhaustive enumeration hands each pool job a span of consecutive
/// batches (swept with one reused [`BatchState`]), the sampling path
/// hands each job one pre-drawn batch; results fold in span order taking
/// the first failure, so the outcome — witness included — is
/// byte-identical to the serial sweep at any worker count.
///
/// # Panics
///
/// Panics if more than 64 input or output lines are given.
pub fn verify_computes<F: Fn(u64) -> u64 + Sync>(
    circuit: &Circuit,
    input_lines: &[usize],
    output_lines: &[usize],
    oracle: F,
    options: &VerifyOptions,
) -> VerifyOutcome {
    assert!(input_lines.len() <= 64 && output_lines.len() <= 64);
    let n = input_lines.len();
    if n < 64 && n <= options.exhaustive_limit {
        let total = 1u64 << n;
        if options.batch {
            let (span, jobs) = span_jobs(total);
            let spans = par::run_indexed(jobs, |job| {
                let lo = job as u64 * span;
                let hi = (lo + span).min(total);
                let mut state = BatchState::zeros(circuit.num_lines(), 0);
                for (base, count) in consecutive_batches_in(lo, hi) {
                    let r = check_consecutive_batch(
                        circuit,
                        input_lines,
                        output_lines,
                        &oracle,
                        options,
                        &mut state,
                        base,
                        count,
                    );
                    if !r.is_ok() {
                        return r;
                    }
                }
                VerifyOutcome::Verified
            });
            for r in spans {
                if !r.is_ok() {
                    return r;
                }
            }
        } else {
            for x in 0..total {
                let r = check_scalar(circuit, input_lines, output_lines, &oracle, options, x);
                if !r.is_ok() {
                    return r;
                }
            }
        }
        VerifyOutcome::Verified
    } else {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        if options.batch {
            // Draw every sample up front (same RNG stream as the serial
            // loop), then shard whole batches across the pool.
            let mut batches: Vec<Vec<u64>> = Vec::new();
            let mut remaining = options.random_samples;
            while remaining > 0 {
                let take = remaining.min(BATCH_STATES as u64);
                batches.push((0..take).map(|_| rng.gen::<u64>() & mask).collect());
                remaining -= take;
            }
            let results = par::run_indexed(batches.len(), |bi| {
                check_batch(
                    circuit,
                    input_lines,
                    output_lines,
                    &oracle,
                    options,
                    &batches[bi],
                )
            });
            for r in results {
                if !r.is_ok() {
                    return r;
                }
            }
        } else {
            for _ in 0..options.random_samples {
                let x: u64 = rng.gen::<u64>() & mask;
                let r = check_scalar(circuit, input_lines, output_lines, &oracle, options, x);
                if !r.is_ok() {
                    return r;
                }
            }
        }
        VerifyOutcome::ProbablyCorrect {
            samples: options.random_samples,
        }
    }
}

/// Checks that a circuit realizes a given permutation over **all** its
/// lines (used by transformation-based synthesis, whose specification is a
/// reversible function on the full line space). Runs in bit-parallel
/// batches over lanes synthesized in place
/// ([`BatchState::load_consecutive`]); a mismatch witness is re-confirmed
/// by scalar simulation.
///
/// # Errors
///
/// Returns [`TooWideError`] if the circuit has more than
/// [`PERMUTATION_LINE_LIMIT`] lines (the exhaustive table would not fit —
/// and a `2^n` size computed at ≥ 64 lines would wrap).
///
/// # Panics
///
/// Panics if `perm` does not have exactly `2^n` entries.
pub fn verify_permutation(circuit: &Circuit, perm: &[u64]) -> Result<VerifyOutcome, TooWideError> {
    if circuit.num_lines() > PERMUTATION_LINE_LIMIT {
        return Err(TooWideError {
            lines: circuit.num_lines(),
            limit: PERMUTATION_LINE_LIMIT,
        });
    }
    let size = 1u64 << circuit.num_lines();
    assert!(
        perm.len() as u64 == size,
        "verify_permutation: permutation has {} entries, expected 2^{} = {size}",
        perm.len(),
        circuit.num_lines()
    );
    let all_lines: Vec<usize> = (0..circuit.num_lines()).collect();
    let (span, jobs) = span_jobs(size);
    let spans = par::run_indexed(jobs, |job| {
        let lo = job as u64 * span;
        let hi = (lo + span).min(size);
        let mut state = BatchState::zeros(circuit.num_lines(), 0);
        for (base, count) in consecutive_batches_in(lo, hi) {
            state.reset(count);
            state.load_consecutive(&all_lines, base);
            circuit.apply_batch(&mut state);
            let actual = state.read_register(&all_lines);
            for (k, input) in (base..base + count as u64).enumerate() {
                let expected = perm[input as usize];
                if actual[k] != expected {
                    // Scalar re-run: report a witness independent of the
                    // batch engine — and if the scalar value disagrees with
                    // the batch value *and* matches the permutation, the
                    // batch engine itself is broken; fail loudly instead of
                    // returning an incoherent Mismatch.
                    let scalar = circuit.simulate_u64(input);
                    assert!(
                        scalar != expected,
                        "batch simulation flagged input {input} (got {}, expected {expected}) \
                         but scalar simulation agrees with the permutation",
                        actual[k]
                    );
                    return VerifyOutcome::Mismatch {
                        input,
                        expected,
                        actual: scalar,
                    };
                }
            }
        }
        VerifyOutcome::Verified
    });
    // Spans fold in index order, so the first failure is the same witness
    // the serial sweep would report.
    for r in spans {
        if !r.is_ok() {
            return Ok(r);
        }
    }
    Ok(VerifyOutcome::Verified)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bennett-style XOR: out ^= a ^ b on 3 lines.
    fn xor_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        c.cnot(1, 2);
        c
    }

    #[test]
    fn verifies_correct_circuit() {
        let c = xor_circuit();
        let out = verify_computes(
            &c,
            &[0, 1],
            &[2],
            |x| (x & 1) ^ ((x >> 1) & 1),
            &VerifyOptions {
                check_ancilla_clean: true,
                check_inputs_preserved: true,
                ..Default::default()
            },
        );
        assert_eq!(out, VerifyOutcome::Verified);
    }

    #[test]
    fn detects_functional_mismatch() {
        let c = xor_circuit();
        let out = verify_computes(&c, &[0, 1], &[2], |x| x & 1, &VerifyOptions::default());
        assert!(matches!(out, VerifyOutcome::Mismatch { .. }));
    }

    #[test]
    fn detects_dirty_ancilla() {
        let mut c = Circuit::new(4);
        c.cnot(0, 2);
        c.cnot(0, 3); // scribbles on line 3 and never cleans it
        let out = verify_computes(
            &c,
            &[0, 1],
            &[2],
            |x| x & 1,
            &VerifyOptions {
                check_ancilla_clean: true,
                ..Default::default()
            },
        );
        assert!(matches!(out, VerifyOutcome::DirtyLine { line: 3, .. }));
    }

    #[test]
    fn detects_clobbered_inputs() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        c.not(1); // destroys input line 1
        let out = verify_computes(
            &c,
            &[0, 1],
            &[2],
            |x| x & 1,
            &VerifyOptions {
                check_inputs_preserved: true,
                ..Default::default()
            },
        );
        assert!(matches!(out, VerifyOutcome::DirtyLine { line: 1, .. }));
    }

    #[test]
    fn randomized_path_for_wide_inputs() {
        // 16-input parity, checked with sampling (limit forced low).
        let mut c = Circuit::new(17);
        for i in 0..16 {
            c.cnot(i, 16);
        }
        let inputs: Vec<usize> = (0..16).collect();
        let out = verify_computes(
            &c,
            &inputs,
            &[16],
            |x| (x.count_ones() % 2) as u64,
            &VerifyOptions {
                exhaustive_limit: 8,
                random_samples: 64,
                ..Default::default()
            },
        );
        assert_eq!(out, VerifyOutcome::ProbablyCorrect { samples: 64 });
    }

    #[test]
    fn batch_and_scalar_report_the_same_witness() {
        // out ^= a, but the oracle wants a & b: first failing input is
        // x = 1 (a = 1, b = 0) in enumeration order.
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        let run = |batch| {
            verify_computes(
                &c,
                &[0, 1],
                &[2],
                |x| (x & 1) & ((x >> 1) & 1),
                &VerifyOptions {
                    batch,
                    ..Default::default()
                },
            )
        };
        let scalar = run(false);
        assert_eq!(
            scalar,
            VerifyOutcome::Mismatch {
                input: 1,
                expected: 0,
                actual: 1
            }
        );
        assert_eq!(run(true), scalar);
    }

    #[test]
    fn batch_and_scalar_agree_on_dirty_line_witnesses() {
        let mut c = Circuit::new(4);
        c.cnot(0, 2);
        c.cnot(1, 3); // dirty ancilla 3, first dirtied at x = 2
        let run = |batch| {
            verify_computes(
                &c,
                &[0, 1],
                &[2],
                |x| x & 1,
                &VerifyOptions {
                    batch,
                    check_ancilla_clean: true,
                    check_inputs_preserved: true,
                    ..Default::default()
                },
            )
        };
        let scalar = run(false);
        assert_eq!(scalar, VerifyOutcome::DirtyLine { input: 2, line: 3 });
        assert_eq!(run(true), scalar);
    }

    #[test]
    fn exhaustive_spans_multiple_batches() {
        // 11 inputs = 2048 states = two full 1024-state batches.
        let mut c = Circuit::new(12);
        for i in 0..11 {
            c.cnot(i, 11);
        }
        let inputs: Vec<usize> = (0..11).collect();
        let out = verify_computes(
            &c,
            &inputs,
            &[11],
            |x| (x.count_ones() % 2) as u64,
            &VerifyOptions::default(),
        );
        assert_eq!(out, VerifyOutcome::Verified);
    }

    #[test]
    fn full_64_bit_interface_is_sampled_not_vacuously_verified() {
        // Identity on bit 0 → out: correct, but 2^64 inputs can never be
        // enumerated, so even exhaustive_limit = 64 must yield a sampled
        // verdict (the old shift `1u64 << 64` wrapped in release builds
        // and returned Verified after a single iteration).
        let mut c = Circuit::new(65);
        c.cnot(0, 64);
        let inputs: Vec<usize> = (0..64).collect();
        for batch in [false, true] {
            let opts = VerifyOptions {
                exhaustive_limit: 64,
                random_samples: 128,
                batch,
                ..Default::default()
            };
            let out = verify_computes(&c, &inputs, &[64], |x| x & 1, &opts);
            assert_eq!(out, VerifyOutcome::ProbablyCorrect { samples: 128 });
        }
    }

    #[test]
    fn full_64_bit_interface_still_catches_bugs() {
        // Empty circuit against a non-trivial oracle: sampling must find
        // a mismatch instead of vacuously passing.
        let c = Circuit::new(65);
        let inputs: Vec<usize> = (0..64).collect();
        for batch in [false, true] {
            let opts = VerifyOptions {
                exhaustive_limit: 64,
                random_samples: 128,
                batch,
                ..Default::default()
            };
            let out = verify_computes(&c, &inputs, &[64], |x| x & 1, &opts);
            assert!(matches!(out, VerifyOutcome::Mismatch { .. }), "{out:?}");
        }
    }

    #[test]
    fn permutation_check() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let perm: Vec<u64> = vec![0b00, 0b11, 0b10, 0b01];
        assert_eq!(verify_permutation(&c, &perm), Ok(VerifyOutcome::Verified));
        let wrong: Vec<u64> = vec![0, 1, 2, 3];
        assert!(matches!(
            verify_permutation(&c, &wrong),
            Ok(VerifyOutcome::Mismatch { .. })
        ));
    }

    #[test]
    fn permutation_check_spans_multiple_batches() {
        // 11 lines = 2048 states > one 1024-state batch.
        let mut c = Circuit::new(11);
        c.cnot(0, 10);
        let perm = c.permutation().expect("11 lines is within the cap");
        assert_eq!(verify_permutation(&c, &perm), Ok(VerifyOutcome::Verified));
        let mut wrong = perm;
        wrong.swap(1500, 1501);
        let out = verify_permutation(&c, &wrong);
        assert!(
            matches!(out, Ok(VerifyOutcome::Mismatch { input: 1500, .. })),
            "{out:?}"
        );
    }

    #[test]
    #[should_panic(expected = "expected 2^2")]
    fn permutation_length_mismatch_is_loud() {
        let c = Circuit::new(2);
        let _ = verify_permutation(&c, &[0, 1, 2]);
    }

    #[test]
    fn permutation_check_rejects_wide_circuits_with_a_typed_error() {
        let c = Circuit::new(64);
        assert_eq!(
            verify_permutation(&c, &[0]),
            Err(TooWideError {
                lines: 64,
                limit: PERMUTATION_LINE_LIMIT
            })
        );
    }
}
