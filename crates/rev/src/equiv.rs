//! Functional verification of synthesized reversible circuits.
//!
//! Mirrors the paper's methodology ("correctness of the synthesized designs
//! has been verified using ABC's combinational equivalence checker `cec`"):
//! every circuit coming out of a synthesis flow is replayed against the
//! golden model, exhaustively when the input space is small and with
//! randomized sampling otherwise.

use crate::circuit::Circuit;
use crate::state::BitState;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// What to check and how hard to try.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Exhaustive enumeration is used when the number of input lines is at
    /// most this.
    pub exhaustive_limit: usize,
    /// Number of random input samples when exhaustive checking is off.
    pub random_samples: u64,
    /// Additionally require every line that is neither an input nor an
    /// output to end at zero (clean ancillae, as Bennett-style circuits
    /// guarantee).
    pub check_ancilla_clean: bool,
    /// Additionally require input lines (that are not also output lines)
    /// to be preserved.
    pub check_inputs_preserved: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            exhaustive_limit: 12,
            random_samples: 512,
            check_ancilla_clean: false,
            check_inputs_preserved: false,
        }
    }
}

/// Result of a verification run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyOutcome {
    /// Exhaustively proven correct.
    Verified,
    /// All random samples agreed.
    ProbablyCorrect {
        /// Number of inputs tested.
        samples: u64,
    },
    /// The circuit output disagrees with the oracle.
    Mismatch {
        /// Failing input value.
        input: u64,
        /// Oracle output.
        expected: u64,
        /// Circuit output.
        actual: u64,
    },
    /// An ancilla or preserved-input line ended in the wrong state.
    DirtyLine {
        /// Failing input value.
        input: u64,
        /// Offending line.
        line: usize,
    },
    /// Verification was skipped (interface wider than the 64-bit
    /// harness supports; e.g. the paper's n = 128 instance).
    Skipped,
}

impl VerifyOutcome {
    /// Whether no problem was found.
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            VerifyOutcome::Verified
                | VerifyOutcome::ProbablyCorrect { .. }
                | VerifyOutcome::Skipped
        )
    }
}

/// Checks that `circuit` computes `oracle` when `input_lines` carry the
/// input bits (all other lines start at zero) and `output_lines` carry the
/// result afterwards.
///
/// `input_lines` and `output_lines` may overlap (in-place circuits).
///
/// # Panics
///
/// Panics if more than 64 input or output lines are given.
pub fn verify_computes<F: Fn(u64) -> u64>(
    circuit: &Circuit,
    input_lines: &[usize],
    output_lines: &[usize],
    oracle: F,
    options: &VerifyOptions,
) -> VerifyOutcome {
    assert!(input_lines.len() <= 64 && output_lines.len() <= 64);
    let n = input_lines.len();
    let run = |x: u64| -> VerifyOutcome {
        let mut state = BitState::zeros(circuit.num_lines());
        state.write_register(input_lines, x);
        circuit.apply(&mut state);
        let actual = state.read_register(output_lines);
        let expected = oracle(x);
        if actual != expected {
            return VerifyOutcome::Mismatch {
                input: x,
                expected,
                actual,
            };
        }
        if options.check_ancilla_clean || options.check_inputs_preserved {
            for line in 0..circuit.num_lines() {
                let is_input = input_lines.contains(&line);
                let is_output = output_lines.contains(&line);
                if is_output {
                    continue;
                }
                if is_input {
                    if options.check_inputs_preserved {
                        let idx = input_lines.iter().position(|&l| l == line).expect("input");
                        if state.get(line) != ((x >> idx) & 1 == 1) {
                            return VerifyOutcome::DirtyLine { input: x, line };
                        }
                    }
                } else if options.check_ancilla_clean && state.get(line) {
                    return VerifyOutcome::DirtyLine { input: x, line };
                }
            }
        }
        VerifyOutcome::Verified
    };
    if n <= options.exhaustive_limit {
        for x in 0..(1u64 << n) {
            let r = run(x);
            if !r.is_ok() {
                return r;
            }
        }
        VerifyOutcome::Verified
    } else {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        for _ in 0..options.random_samples {
            let x: u64 = rng.gen::<u64>() & mask;
            let r = run(x);
            if !r.is_ok() {
                return r;
            }
        }
        VerifyOutcome::ProbablyCorrect {
            samples: options.random_samples,
        }
    }
}

/// Checks that a circuit realizes a given permutation over **all** its
/// lines (used by transformation-based synthesis, whose specification is a
/// reversible function on the full line space).
///
/// # Panics
///
/// Panics if the circuit has more than 24 lines (exhaustive only).
pub fn verify_permutation(circuit: &Circuit, perm: &[u64]) -> VerifyOutcome {
    assert!(
        circuit.num_lines() <= 24,
        "too many lines for exhaustive check"
    );
    assert_eq!(perm.len() as u64, 1u64 << circuit.num_lines());
    for (x, &expected) in perm.iter().enumerate() {
        let actual = circuit.simulate_u64(x as u64);
        if actual != expected {
            return VerifyOutcome::Mismatch {
                input: x as u64,
                expected,
                actual,
            };
        }
    }
    VerifyOutcome::Verified
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bennett-style XOR: out ^= a ^ b on 3 lines.
    fn xor_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        c.cnot(1, 2);
        c
    }

    #[test]
    fn verifies_correct_circuit() {
        let c = xor_circuit();
        let out = verify_computes(
            &c,
            &[0, 1],
            &[2],
            |x| (x & 1) ^ ((x >> 1) & 1),
            &VerifyOptions {
                check_ancilla_clean: true,
                check_inputs_preserved: true,
                ..Default::default()
            },
        );
        assert_eq!(out, VerifyOutcome::Verified);
    }

    #[test]
    fn detects_functional_mismatch() {
        let c = xor_circuit();
        let out = verify_computes(&c, &[0, 1], &[2], |x| x & 1, &VerifyOptions::default());
        assert!(matches!(out, VerifyOutcome::Mismatch { .. }));
    }

    #[test]
    fn detects_dirty_ancilla() {
        let mut c = Circuit::new(4);
        c.cnot(0, 2);
        c.cnot(0, 3); // scribbles on line 3 and never cleans it
        let out = verify_computes(
            &c,
            &[0, 1],
            &[2],
            |x| x & 1,
            &VerifyOptions {
                check_ancilla_clean: true,
                ..Default::default()
            },
        );
        assert!(matches!(out, VerifyOutcome::DirtyLine { line: 3, .. }));
    }

    #[test]
    fn detects_clobbered_inputs() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        c.not(1); // destroys input line 1
        let out = verify_computes(
            &c,
            &[0, 1],
            &[2],
            |x| x & 1,
            &VerifyOptions {
                check_inputs_preserved: true,
                ..Default::default()
            },
        );
        assert!(matches!(out, VerifyOutcome::DirtyLine { line: 1, .. }));
    }

    #[test]
    fn randomized_path_for_wide_inputs() {
        // 16-input parity, checked with sampling (limit forced low).
        let mut c = Circuit::new(17);
        for i in 0..16 {
            c.cnot(i, 16);
        }
        let inputs: Vec<usize> = (0..16).collect();
        let out = verify_computes(
            &c,
            &inputs,
            &[16],
            |x| (x.count_ones() % 2) as u64,
            &VerifyOptions {
                exhaustive_limit: 8,
                random_samples: 64,
                ..Default::default()
            },
        );
        assert_eq!(out, VerifyOutcome::ProbablyCorrect { samples: 64 });
    }

    #[test]
    fn permutation_check() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let perm: Vec<u64> = vec![0b00, 0b11, 0b10, 0b01];
        assert_eq!(verify_permutation(&c, &perm), VerifyOutcome::Verified);
        let wrong: Vec<u64> = vec![0, 1, 2, 3];
        assert!(matches!(
            verify_permutation(&c, &wrong),
            VerifyOutcome::Mismatch { .. }
        ));
    }
}
