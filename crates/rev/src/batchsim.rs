//! Bit-parallel batch simulation of reversible circuits.
//!
//! [`crate::state::BitState`] replays one basis state at a time. This
//! module keeps the **transposed** representation instead: one machine
//! word per circuit *line*, where bit *k* of each word belongs to parallel
//! state *k*. An MPMCT gate then applies to 64 states at once as
//!
//! ```text
//! fire = AND over controls of (control lane ⊕ polarity)
//! target lane ^= fire
//! ```
//!
//! and with multi-word lanes (`words_per_line > 1`) to arbitrarily many
//! states — the same word-parallel trick `qda-logic`'s truth tables
//! exploit, turned into a simulation engine. [`crate::equiv`] uses it to
//! make functional verification ~64× faster than scalar replay; the
//! `verify_bench` binary of `qda-bench` measures the exact factor.
//!
//! # Example
//!
//! ```
//! use qda_rev::batchsim::BatchState;
//! use qda_rev::circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.cnot(0, 2);
//! c.cnot(1, 2);
//! // All eight 2-bit inputs at once.
//! let inputs: Vec<u64> = (0..8).collect();
//! let mut batch = BatchState::zeros(3, inputs.len());
//! batch.load_register(&[0, 1, 2], &inputs);
//! c.apply_batch(&mut batch);
//! let out = batch.read_register(&[2]);
//! assert_eq!(out[0b01], 1); // 0 ^ 1
//! assert_eq!(out[0b11], 0); // 1 ^ 1
//! ```

use crate::gate::Gate;
use crate::packed::{GateArena, PackedGate};

/// Default batch granularity for chunked bit-parallel runs (16 words per
/// lane): large enough to amortize the per-gate dispatch over the gate
/// list, small enough to keep a batch of a many-line circuit in cache.
pub const BATCH_STATES: usize = 1024;

/// Lane words per vectorized kernel step: the hot gate-application loops
/// of [`BatchState::apply_arena`] process fixed `[u64; LANE_CHUNK]`
/// blocks (512 bits — one or two SIMD registers on every current target)
/// with no per-gate branch in the inner loop, so the compiler
/// auto-vectorizes them. A full [`BATCH_STATES`] batch is exactly two
/// chunks per lane.
pub const LANE_CHUNK: usize = 8;

/// The consecutive inputs `0..total` as `(base, count)` ranges, chunked
/// [`BATCH_STATES`] at a time.
#[cfg(test)]
pub(crate) fn consecutive_batches(total: u64) -> impl Iterator<Item = (u64, usize)> {
    consecutive_batches_in(0, total)
}

/// The consecutive inputs `start..end` as `(base, count)` ranges, chunked
/// [`BATCH_STATES`] at a time (the shared driver of exhaustive
/// verification and permutation extraction; `start` must be
/// [`BATCH_STATES`]-aligned so every batch base stays word-aligned for
/// [`BatchState::load_consecutive`]). The ranges are pure arithmetic — no
/// input vector is materialized; callers synthesize the lanes directly
/// with [`BatchState::load_consecutive`].
pub(crate) fn consecutive_batches_in(start: u64, end: u64) -> impl Iterator<Item = (u64, usize)> {
    debug_assert!(start.is_multiple_of(BATCH_STATES as u64));
    let mut base = start;
    std::iter::from_fn(move || {
        if base >= end {
            return None;
        }
        let count = (end - base).min(BATCH_STATES as u64) as usize;
        let range = (base, count);
        base += count as u64;
        Some(range)
    })
}

/// Consecutive batches grouped into spans for pool sharding: each worker
/// job sweeps this many [`BATCH_STATES`] batches with one reused
/// [`BatchState`], so sharding costs one allocation per *job* instead of
/// one per batch. The span size is fixed — never derived from the worker
/// count — so the job structure (and hence every fold order and witness)
/// is identical at any parallelism.
pub(crate) const SPAN_BATCHES: u64 = 4;

/// Splits `0..total` into [`SPAN_BATCHES`]-batch spans; returns the span
/// width in states and the number of spans. Span `j` covers
/// `j * width .. min((j + 1) * width, total)`.
pub(crate) fn span_jobs(total: u64) -> (u64, usize) {
    let width = BATCH_STATES as u64 * SPAN_BATCHES;
    (
        width,
        usize::try_from(total.div_ceil(width)).expect("span count fits usize"),
    )
}

/// Transposed lane word for value-bit `i` of the 64 consecutive values
/// starting at a 64-aligned base: bits 0–5 cycle faster than a word, so
/// their lanes are fixed periodic patterns.
const LOW_BIT_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// In-place 64×64 bit-matrix transpose (masked delta swaps, LSB-first:
/// bit `c` of `a[r]` ↔ bit `r` of `a[c]`). This is the fast path between
/// the state-major world (one input/output word per state) and the
/// transposed lane world — ~10× fewer operations than moving each bit
/// individually.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// `num_states` classical assignments to the lines of a reversible
/// circuit, stored transposed: per line, `words_per_line` words whose bit
/// *k* (of word *w*) is the value of that line in state `w * 64 + k`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchState {
    num_lines: usize,
    num_states: usize,
    words_per_line: usize,
    /// Line-major lanes: `lanes[line * words_per_line + w]`.
    lanes: Vec<u64>,
}

impl BatchState {
    /// The all-zero batch of `num_states` states on `num_lines` lines.
    pub fn zeros(num_lines: usize, num_states: usize) -> Self {
        let words_per_line = num_states.div_ceil(64).max(1);
        Self {
            num_lines,
            num_states,
            words_per_line,
            lanes: vec![0; num_lines * words_per_line],
        }
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Resets the batch to all-zero lanes for `num_states` states,
    /// **reusing** the lane allocation (capacity permitting). This is the
    /// buffer-recycling entry point for `consecutive_batches`-style loops
    /// (exhaustive verification, permutation extraction, optimizer
    /// replay): one `BatchState` per worker, reset per batch, instead of
    /// a fresh heap allocation per batch.
    pub fn reset(&mut self, num_states: usize) {
        self.num_states = num_states;
        self.words_per_line = num_states.div_ceil(64).max(1);
        self.lanes.clear();
        self.lanes.resize(self.num_lines * self.words_per_line, 0);
    }

    /// Makes `self` a copy of `other`, reusing the lane allocation (the
    /// allocation-free counterpart of `clone()` for snapshot-and-replay
    /// loops).
    pub fn copy_from(&mut self, other: &Self) {
        self.num_lines = other.num_lines;
        self.num_states = other.num_states;
        self.words_per_line = other.words_per_line;
        self.lanes.clear();
        self.lanes.extend_from_slice(&other.lanes);
    }

    /// Number of parallel states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Words per lane (`ceil(num_states / 64)`, at least 1).
    pub fn words_per_line(&self) -> usize {
        self.words_per_line
    }

    /// The lane of one line: `words_per_line` words, state-bit packed.
    ///
    /// Bits at positions `>= num_states` of the last word are *phantom*
    /// states: gate application computes them like any other bit, so
    /// callers comparing whole lanes must mask with [`BatchState::word_mask`].
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn lane(&self, line: usize) -> &[u64] {
        assert!(line < self.num_lines, "line {line} out of range");
        &self.lanes[line * self.words_per_line..(line + 1) * self.words_per_line]
    }

    /// Mask of the valid (non-phantom) state bits of lane word `w`.
    pub fn word_mask(&self, w: usize) -> u64 {
        debug_assert!(w < self.words_per_line);
        let full_words = self.num_states / 64;
        if w < full_words {
            u64::MAX
        } else {
            // Only reachable for the tail word (or an empty batch).
            (1u64 << (self.num_states % 64)) - 1
        }
    }

    /// Value of `line` in state `state`.
    ///
    /// # Panics
    ///
    /// Panics if `line` or `state` is out of range.
    pub fn get(&self, line: usize, state: usize) -> bool {
        assert!(line < self.num_lines, "line {line} out of range");
        assert!(state < self.num_states, "state {state} out of range");
        (self.lanes[line * self.words_per_line + (state >> 6)] >> (state & 63)) & 1 == 1
    }

    /// Sets `line` in state `state`.
    ///
    /// # Panics
    ///
    /// Panics if `line` or `state` is out of range.
    pub fn set(&mut self, line: usize, state: usize, value: bool) {
        assert!(line < self.num_lines, "line {line} out of range");
        assert!(state < self.num_states, "state {state} out of range");
        let idx = line * self.words_per_line + (state >> 6);
        if value {
            self.lanes[idx] |= 1 << (state & 63);
        } else {
            self.lanes[idx] &= !(1 << (state & 63));
        }
    }

    /// Writes one input word per state into a register of lines
    /// (`lines[0]` = least-significant bit, like
    /// [`crate::state::BitState::write_register`]; bits of a value beyond
    /// `lines.len()` are ignored). This is the transpose step: bit *i* of
    /// `values[k]` becomes bit *k* of the lane of `lines[i]`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 lines are addressed, a line is out of
    /// range, or `values.len() != num_states`.
    pub fn load_register(&mut self, lines: &[usize], values: &[u64]) {
        assert!(lines.len() <= 64, "register too wide");
        assert_eq!(values.len(), self.num_states, "one value per state");
        for &line in lines {
            assert!(line < self.num_lines, "line {line} out of range");
        }
        let mut tile = [0u64; 64];
        for (w, chunk) in values.chunks(64).enumerate() {
            tile[..chunk.len()].copy_from_slice(chunk);
            tile[chunk.len()..].fill(0);
            transpose64(&mut tile);
            for (i, &line) in lines.iter().enumerate() {
                self.lanes[line * self.words_per_line + w] = tile[i];
            }
        }
    }

    /// Loads the consecutive values `base..base + num_states` into a
    /// register of lines without materializing them: value-bit `i` of a
    /// consecutive run is a closed-form lane word (a fixed periodic
    /// pattern for bits 0–5, a constant word for higher bits), so each
    /// lane is synthesized directly — no per-state loop, no transpose,
    /// no input vector.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 lines are addressed, a line is out of
    /// range, or `base` is not a multiple of 64 (consecutive loads start
    /// on a lane-word boundary; `consecutive_batches` guarantees this).
    pub fn load_consecutive(&mut self, lines: &[usize], base: u64) {
        assert!(lines.len() <= 64, "register too wide");
        assert_eq!(base % 64, 0, "consecutive loads start on a word boundary");
        for &line in lines {
            assert!(line < self.num_lines, "line {line} out of range");
        }
        for (i, &line) in lines.iter().enumerate() {
            let lane_start = line * self.words_per_line;
            for w in 0..self.words_per_line {
                let word_base = base + 64 * w as u64;
                let word = if let Some(&pattern) = LOW_BIT_PATTERNS.get(i) {
                    pattern
                } else if (word_base >> i) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                };
                self.lanes[lane_start + w] = word & self.word_mask(w);
            }
        }
    }

    /// Reads one output word per state from a register of lines (the
    /// inverse transpose of [`BatchState::load_register`]).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 lines are requested or a line is out of
    /// range.
    pub fn read_register(&self, lines: &[usize]) -> Vec<u64> {
        assert!(lines.len() <= 64, "register too wide");
        for &line in lines {
            assert!(line < self.num_lines, "line {line} out of range");
        }
        let mut values = vec![0u64; self.num_states];
        let mut tile = [0u64; 64];
        for (w, chunk) in values.chunks_mut(64).enumerate() {
            for (i, &line) in lines.iter().enumerate() {
                tile[i] = self.lanes[line * self.words_per_line + w];
            }
            tile[lines.len()..].fill(0);
            transpose64(&mut tile);
            chunk.copy_from_slice(&tile[..chunk.len()]);
        }
        values
    }

    /// Applies one MPMCT gate to all states at once.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a line outside the batch.
    pub fn apply(&mut self, gate: &Gate) {
        assert!(
            gate.max_line() < self.num_lines,
            "gate {gate} exceeds {} lines",
            self.num_lines
        );
        let wpl = self.words_per_line;
        let target = gate.target() * wpl;
        for w in 0..wpl {
            let mut fire = u64::MAX;
            for c in gate.controls() {
                let lane = self.lanes[c.line() * wpl + w];
                fire &= if c.is_positive() { lane } else { !lane };
            }
            self.lanes[target + w] ^= fire;
        }
    }

    /// Applies one packed MPMCT gate to all states at once, reusing a
    /// caller-provided scratch buffer for the fire mask (one word per
    /// lane word). Unlike [`BatchState::apply`] this decodes no gate:
    /// the control lanes named by the packed masks are AND-ed straight
    /// into `fire`, then XOR-ed into the target lane.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a line outside the batch or the
    /// scratch buffer is not [`BatchState::words_per_line`] words.
    pub fn apply_packed(&mut self, gate: &PackedGate<'_>, fire: &mut [u64]) {
        assert!(
            gate.target() < self.num_lines,
            "gate target {} exceeds {} lines",
            gate.target(),
            self.num_lines
        );
        let wpl = self.words_per_line;
        assert_eq!(
            fire.len(),
            wpl,
            "scratch buffer holds one word per lane word"
        );
        fire.fill(u64::MAX);
        for c in gate.controls() {
            let line = c.line();
            assert!(
                line < self.num_lines,
                "control line {line} exceeds the batch"
            );
            let lane = &self.lanes[line * wpl..(line + 1) * wpl];
            if c.is_positive() {
                for (f, &l) in fire.iter_mut().zip(lane) {
                    *f &= l;
                }
            } else {
                for (f, &l) in fire.iter_mut().zip(lane) {
                    *f &= !l;
                }
            }
        }
        let target = gate.target() * wpl;
        for (w, f) in fire.iter().enumerate() {
            self.lanes[target + w] ^= f;
        }
    }

    /// Applies a whole gate cascade to all states, block-major: for each
    /// [`LANE_CHUNK`]-word block of the lanes, every gate is applied to
    /// that block before moving on (states are independent, so the
    /// per-block order is immaterial — but the block's lane words stay
    /// hot in cache across the entire cascade). The inner loops run over
    /// fixed `[u64; LANE_CHUNK]` arrays with the control polarity folded
    /// into a branchless XOR mask, so they auto-vectorize; nothing is
    /// allocated.
    ///
    /// # Panics
    ///
    /// Panics if the arena's line space exceeds the batch's.
    pub fn apply_arena(&mut self, arena: &GateArena) {
        assert!(
            arena.num_lines() <= self.num_lines,
            "arena on {} lines exceeds the {}-line batch",
            arena.num_lines(),
            self.num_lines
        );
        let wpl = self.words_per_line;
        let full = wpl - wpl % LANE_CHUNK;
        let mut base = 0;
        while base < full {
            for (_, g) in arena.iter() {
                self.apply_gate_chunk(&g, base);
            }
            base += LANE_CHUNK;
        }
        if base < wpl {
            for (_, g) in arena.iter() {
                self.apply_gate_tail(&g, base, wpl - base);
            }
        }
    }

    /// Applies one gate to the full-width lane block at word offset
    /// `base`: fixed-size loops, branchless polarity (`lane ^ inv` with
    /// `inv ∈ {0, !0}`), no bounds checks surviving into the loop body.
    #[inline]
    fn apply_gate_chunk(&mut self, gate: &PackedGate<'_>, base: usize) {
        let wpl = self.words_per_line;
        let mut fire = [u64::MAX; LANE_CHUNK];
        for c in gate.controls() {
            let inv = if c.is_positive() { 0 } else { u64::MAX };
            let start = c.line() * wpl + base;
            let lane: &[u64; LANE_CHUNK] = self.lanes[start..start + LANE_CHUNK]
                .try_into()
                .expect("chunk is LANE_CHUNK words");
            for k in 0..LANE_CHUNK {
                fire[k] &= lane[k] ^ inv;
            }
        }
        let start = gate.target() * wpl + base;
        let target: &mut [u64; LANE_CHUNK] = (&mut self.lanes[start..start + LANE_CHUNK])
            .try_into()
            .expect("chunk is LANE_CHUNK words");
        for k in 0..LANE_CHUNK {
            target[k] ^= fire[k];
        }
    }

    /// Applies one gate to the ragged tail block (`len < LANE_CHUNK`
    /// words at offset `base`) — same branchless shape, variable width.
    #[inline]
    fn apply_gate_tail(&mut self, gate: &PackedGate<'_>, base: usize, len: usize) {
        let wpl = self.words_per_line;
        let mut fire = [u64::MAX; LANE_CHUNK];
        for c in gate.controls() {
            let inv = if c.is_positive() { 0 } else { u64::MAX };
            let start = c.line() * wpl + base;
            for (f, lane) in fire.iter_mut().zip(&self.lanes[start..start + len]) {
                *f &= lane ^ inv;
            }
        }
        let start = gate.target() * wpl + base;
        for (lane, f) in self.lanes[start..start + len].iter_mut().zip(&fire) {
            *lane ^= f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::{Control, Gate};
    use crate::state::BitState;

    #[test]
    fn transpose64_swaps_rows_and_columns() {
        let mut tile = [0u64; 64];
        for (r, row) in tile.iter_mut().enumerate() {
            *row = (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (1 << (r % 64));
        }
        let original = tile;
        transpose64(&mut tile);
        for (r, &row) in tile.iter().enumerate() {
            for (c, &col) in original.iter().enumerate() {
                assert_eq!((row >> c) & 1, (col >> r) & 1, "element ({r},{c})");
            }
        }
        transpose64(&mut tile);
        assert_eq!(tile, original, "transpose is an involution");
    }

    #[test]
    fn transposed_register_round_trip() {
        let values: Vec<u64> = (0..100).map(|k| k * 37 % 256).collect();
        let lines: Vec<usize> = (2..10).collect();
        let mut b = BatchState::zeros(12, values.len());
        b.load_register(&lines, &values);
        assert_eq!(b.words_per_line(), 2);
        assert_eq!(b.read_register(&lines), values);
        // Spot-check the transposition itself.
        assert_eq!(b.get(2, 3), values[3] & 1 == 1);
        assert_eq!(b.get(9, 70), (values[70] >> 7) & 1 == 1);
    }

    #[test]
    fn load_register_overwrites_previous_contents() {
        let mut b = BatchState::zeros(4, 70);
        b.load_register(&[0, 1], &vec![0b11; 70]);
        b.load_register(&[0, 1], &vec![0b00; 70]);
        assert!(b.read_register(&[0, 1]).iter().all(|&v| v == 0));
    }

    #[test]
    fn gate_semantics_match_scalar_simulation() {
        let g = Gate::mct(vec![Control::positive(0), Control::negative(1)], 2);
        let inputs: Vec<u64> = (0..8).collect();
        let mut b = BatchState::zeros(3, inputs.len());
        b.load_register(&[0, 1, 2], &inputs);
        b.apply(&g);
        let out = b.read_register(&[0, 1, 2]);
        for (k, &x) in inputs.iter().enumerate() {
            assert_eq!(out[k], g.apply_u64(x), "input {x}");
        }
    }

    #[test]
    fn multi_word_lanes_cross_the_word_boundary() {
        // 130 states: three words per lane, with a ragged tail.
        let mut c = Circuit::new(5);
        c.toffoli(0, 1, 4);
        c.cnot(4, 2);
        c.not(3);
        let inputs: Vec<u64> = (0..130).map(|k| (k * 7) % 32).collect();
        let mut b = BatchState::zeros(5, inputs.len());
        assert_eq!(b.words_per_line(), 3);
        b.load_register(&[0, 1, 2, 3, 4], &inputs);
        c.apply_batch(&mut b);
        let out = b.read_register(&[0, 1, 2, 3, 4]);
        for (k, &x) in inputs.iter().enumerate() {
            assert_eq!(out[k], c.simulate_u64(x), "state {k}");
        }
    }

    #[test]
    fn batch_agrees_with_bitstate_on_wide_circuits() {
        // 80 lines: beyond the one-word scalar fast path.
        let mut c = Circuit::new(80);
        c.cnot(0, 79);
        c.mct(vec![Control::positive(79), Control::negative(40)], 64);
        c.not(40);
        let mut b = BatchState::zeros(80, 3);
        b.set(0, 1, true);
        b.set(40, 2, true);
        c.apply_batch(&mut b);
        for state in 0..3 {
            let mut s = BitState::zeros(80);
            s.set(0, state == 1);
            s.set(40, state == 2);
            c.apply(&mut s);
            for line in 0..80 {
                assert_eq!(b.get(line, state), s.get(line), "line {line} state {state}");
            }
        }
    }

    #[test]
    fn word_mask_covers_exactly_the_valid_states() {
        let b = BatchState::zeros(1, 70);
        assert_eq!(b.word_mask(0), u64::MAX);
        assert_eq!(b.word_mask(1), (1 << 6) - 1);
        let full = BatchState::zeros(1, 128);
        assert_eq!(full.word_mask(1), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_out_of_range_gates() {
        let mut b = BatchState::zeros(2, 4);
        b.apply(&Gate::toffoli(0, 1, 2));
    }

    #[test]
    fn consecutive_batches_tile_the_range() {
        let mut expected = 0u64;
        for (base, count) in consecutive_batches(2 * BATCH_STATES as u64 + 100) {
            assert_eq!(base, expected, "ranges are contiguous");
            assert!(count > 0 && count <= BATCH_STATES);
            expected += count as u64;
        }
        assert_eq!(expected, 2 * BATCH_STATES as u64 + 100);
        assert_eq!(consecutive_batches(0).count(), 0);
    }

    #[test]
    fn load_consecutive_matches_the_explicit_transpose() {
        // A ragged batch (100 states) at a nonzero base, with value bits
        // on both sides of the 6-bit intra-word boundary.
        let base = 9 * 64;
        let lines: Vec<usize> = (0..12).collect();
        let values: Vec<u64> = (base..base + 100).collect();
        let mut explicit = BatchState::zeros(12, values.len());
        explicit.load_register(&lines, &values);
        let mut direct = BatchState::zeros(12, values.len());
        direct.load_consecutive(&lines, base);
        assert_eq!(direct, explicit);
    }

    #[test]
    fn load_consecutive_overwrites_previous_contents() {
        let mut b = BatchState::zeros(3, 70);
        b.load_register(&[0, 1, 2], &vec![0b111; 70]);
        b.load_consecutive(&[0, 1, 2], 0);
        // Only the three register bits land; higher value bits have no
        // line, so the lane values wrap mod 2^3.
        assert_eq!(
            b.read_register(&[0, 1, 2]),
            (0..70u64).map(|k| k % 8).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "word boundary")]
    fn load_consecutive_rejects_unaligned_bases() {
        BatchState::zeros(2, 4).load_consecutive(&[0, 1], 7);
    }

    /// A mixed-polarity cascade exercising >64 lines (two mask words).
    fn wide_cascade() -> Circuit {
        let mut c = Circuit::new(70);
        c.not(69);
        c.mct(vec![Control::positive(0), Control::negative(69)], 65);
        c.cnot(65, 1);
        c.mct(
            vec![
                Control::negative(1),
                Control::positive(2),
                Control::positive(68),
            ],
            3,
        );
        c.toffoli(3, 0, 69);
        c
    }

    #[test]
    fn apply_arena_matches_per_gate_apply_across_widths() {
        // Word counts covering: sub-chunk tail only (1, 2), exactly one
        // chunk (8), chunks + tail (19), and the hot two-chunk shape (16).
        for states in [40, 100, 8 * 64, 19 * 64 - 5, BATCH_STATES] {
            let c = wide_cascade();
            let mut by_arena = BatchState::zeros(70, states);
            for s in 0..states {
                by_arena.set(s % 70, s, s % 3 == 0);
            }
            let mut by_gate = by_arena.clone();
            by_arena.apply_arena(c.packed());
            let mut fire = vec![0u64; by_gate.words_per_line()];
            for (_, g) in c.packed().iter() {
                by_gate.apply_packed(&g, &mut fire);
            }
            assert_eq!(by_arena, by_gate, "{states} states");
        }
    }

    #[test]
    fn reset_reuses_the_allocation_and_zeroes_everything() {
        let mut b = BatchState::zeros(5, 1000);
        b.load_register(&[0, 1, 2], &(0..1000).collect::<Vec<u64>>());
        b.reset(130);
        assert_eq!(b.num_states(), 130);
        assert_eq!(b.words_per_line(), 3);
        assert_eq!(b, BatchState::zeros(5, 130), "reset state is pristine");
        // Growing again works too, and a reused batch behaves like a
        // fresh one end to end.
        b.reset(200);
        let mut fresh = BatchState::zeros(5, 200);
        let lines: Vec<usize> = (0..5).collect();
        b.load_consecutive(&lines, 64);
        fresh.load_consecutive(&lines, 64);
        let c = {
            let mut c = Circuit::new(5);
            c.toffoli(0, 1, 4);
            c.cnot(4, 2);
            c
        };
        b.apply_arena(c.packed());
        fresh.apply_arena(c.packed());
        assert_eq!(b, fresh);
    }

    #[test]
    fn copy_from_matches_clone() {
        let mut a = BatchState::zeros(4, 100);
        a.load_register(
            &[0, 1, 2, 3],
            &(0..100).map(|k| k * 5 % 16).collect::<Vec<u64>>(),
        );
        let mut b = BatchState::zeros(9, 3);
        b.copy_from(&a);
        assert_eq!(b, a.clone());
    }

    #[test]
    fn packed_apply_agrees_with_gate_apply() {
        use crate::packed::PackedGateBuf;
        let g = Gate::mct(vec![Control::positive(0), Control::negative(3)], 2);
        let packed = PackedGateBuf::from_gate(&g, 1);
        let inputs: Vec<u64> = (0..100).map(|k| k % 16).collect();
        let mut by_gate = BatchState::zeros(4, inputs.len());
        by_gate.load_register(&[0, 1, 2, 3], &inputs);
        let mut by_mask = by_gate.clone();
        by_gate.apply(&g);
        let mut fire = vec![0u64; by_mask.words_per_line()];
        by_mask.apply_packed(&packed.view(), &mut fire);
        assert_eq!(by_mask, by_gate);
    }
}
