//! Packed-mask gate IR: the struct-of-arrays arena behind [`Circuit`](crate::circuit::Circuit).
//!
//! A legacy [`Gate`] drags a `Vec<Control>` heap allocation through every
//! hot loop. The packed form flattens an MPMCT gate into a **control
//! mask** and a **polarity mask** of `words_per_gate` `u64` words plus a
//! target index: bit `l % 64` of word `l / 64` of the control mask says
//! line `l` is a control, and the same bit of the polarity mask says that
//! control is positive (the polarity mask is always a subset of the
//! control mask). The gate fires on a basis state `s` (same line-per-bit
//! layout as [`crate::state::BitState`]) iff
//!
//! ```text
//! (s ^ pol) & ctrl == 0        for every mask word
//! ```
//!
//! and the hot predicates collapse to single mask ops:
//!
//! * support of a gate = `ctrl | (1 << target)`,
//! * controls of `a` and `b` conflict (some shared line is demanded with
//!   opposite polarities — the gates can never both fire) iff
//!   `(ctrl_a & ctrl_b) & (pol_a ^ pol_b) != 0`,
//! * `a` and `b` commute iff they share a target, neither target is in
//!   the other's support, or their controls conflict.
//!
//! [`GateArena`] stores all gates of a circuit in struct-of-arrays form —
//! one flat `Vec<u64>` for all control words, one for all polarity words,
//! flat target/link arrays — threaded by a doubly-linked live list, so it
//! serves both as [`Circuit`](crate::circuit::Circuit)'s storage and as the mutable rewrite arena
//! the `opt`/`resynth` passes edit in place (it subsumes the former
//! `opt/window.rs` `GateList`). Slot ids are stable for the lifetime of
//! the arena and never recycled. The legacy [`Gate`] view is materialized
//! only at API boundaries (`io`, diagnostics, `gates()`).

use crate::gate::{Control, Gate};

/// Sentinel for "no node" in the arena's links.
const NIL: usize = usize::MAX;

/// Number of `u64` mask words needed for `num_lines` lines (at least one,
/// so empty circuits still have a well-formed stride).
#[must_use]
pub fn words_for_lines(num_lines: usize) -> usize {
    num_lines.div_ceil(64).max(1)
}

/// Iterator over the set bit positions of one mask word.
#[derive(Clone, Copy, Debug)]
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// A borrowed packed view of one gate: control mask words, polarity mask
/// words (subset of the control mask), and the target line. `Copy` and
/// allocation-free — this is what the inner engines pass around.
#[derive(Clone, Copy, Debug)]
pub struct PackedGate<'a> {
    ctrl: &'a [u64],
    pol: &'a [u64],
    target: u32,
}

impl PartialEq for PackedGate<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.target == other.target && self.ctrl == other.ctrl && self.pol == other.pol
    }
}

impl Eq for PackedGate<'_> {}

impl<'a> PackedGate<'a> {
    /// A view over raw mask slices. `pol` must be a subset of `ctrl` and
    /// the target bit must be clear in `ctrl` (callers inside this module
    /// maintain both).
    pub(crate) fn from_raw(ctrl: &'a [u64], pol: &'a [u64], target: u32) -> Self {
        debug_assert_eq!(ctrl.len(), pol.len());
        Self { ctrl, pol, target }
    }

    /// The control mask words.
    #[must_use]
    pub fn ctrl_words(&self) -> &'a [u64] {
        self.ctrl
    }

    /// The polarity mask words (set bit = positive control).
    #[must_use]
    pub fn pol_words(&self) -> &'a [u64] {
        self.pol
    }

    /// The target line.
    #[must_use]
    pub fn target(&self) -> usize {
        self.target as usize
    }

    /// Number of controls (popcount of the control mask).
    #[must_use]
    pub fn num_controls(&self) -> usize {
        self.ctrl.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The controls in ascending line order, decoded on the fly — no
    /// allocation.
    pub fn controls(&self) -> impl Iterator<Item = Control> + 'a {
        let pol = self.pol;
        self.ctrl.iter().enumerate().flat_map(move |(w, &cw)| {
            let pw = pol[w];
            BitIter(cw).map(move |b| {
                let line = w * 64 + b;
                if (pw >> b) & 1 == 1 {
                    Control::positive(line)
                } else {
                    Control::negative(line)
                }
            })
        })
    }

    /// `Some(positive)` when `line` is a control.
    #[must_use]
    pub fn control_on(&self, line: usize) -> Option<bool> {
        let (w, b) = (line / 64, line % 64);
        if w >= self.ctrl.len() || (self.ctrl[w] >> b) & 1 == 0 {
            return None;
        }
        Some((self.pol[w] >> b) & 1 == 1)
    }

    /// Whether the gate reads or writes `line`.
    #[must_use]
    pub fn acts_on(&self, line: usize) -> bool {
        self.target() == line || self.control_on(line).is_some()
    }

    /// Whether the gate fires on the packed basis state `state` (same
    /// line-per-bit word layout as the masks; missing trailing words are
    /// treated as zero).
    #[must_use]
    pub fn fires_words(&self, state: &[u64]) -> bool {
        self.ctrl.iter().enumerate().all(|(w, &cw)| {
            let s = state.get(w).copied().unwrap_or(0);
            (s ^ self.pol[w]) & cw == 0
        })
    }

    /// Whether the gate fires on a `u64` basis state (single-word
    /// circuits only).
    #[must_use]
    pub fn fires_u64(&self, state: u64) -> bool {
        debug_assert_eq!(self.ctrl.len(), 1, "fires_u64 needs a single-word gate");
        (state ^ self.pol[0]) & self.ctrl[0] == 0
    }

    /// Whether some shared control line is demanded with opposite
    /// polarities — the two gates can never both fire.
    #[must_use]
    pub fn controls_conflict(&self, other: &PackedGate<'_>) -> bool {
        self.ctrl
            .iter()
            .zip(other.ctrl)
            .zip(self.pol.iter().zip(other.pol))
            .any(|((&ca, &cb), (&pa, &pb))| (ca & cb) & (pa ^ pb) != 0)
    }

    /// Whether the two gates commute: same target, neither target in the
    /// other's support, or conflicting controls.
    #[must_use]
    pub fn commutes_with(&self, other: &PackedGate<'_>) -> bool {
        self.target == other.target
            || (!self.acts_on(other.target()) && !other.acts_on(self.target()))
            || self.controls_conflict(other)
    }

    /// Support mask word `w`: controls plus the target bit.
    #[must_use]
    pub fn support_word(&self, w: usize) -> u64 {
        let t = self.target();
        let target_bit = if t / 64 == w { 1u64 << (t % 64) } else { 0 };
        self.ctrl[w] | target_bit
    }

    /// Materializes the legacy [`Gate`] view (API boundaries and
    /// diagnostics only — allocates).
    #[must_use]
    pub fn to_gate(&self) -> Gate {
        Gate::mct(self.controls().collect(), self.target())
    }
}

/// An owned packed gate: the result type of packed rewrites (control
/// merges) before they are written back into an arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedGateBuf {
    ctrl: Vec<u64>,
    pol: Vec<u64>,
    target: u32,
}

impl PackedGateBuf {
    /// Packs a legacy gate into `words` mask words.
    ///
    /// # Panics
    ///
    /// Panics if a control or the target does not fit in `words` words.
    #[must_use]
    pub fn from_gate(gate: &Gate, words: usize) -> Self {
        let mut ctrl = vec![0u64; words];
        let mut pol = vec![0u64; words];
        for c in gate.controls() {
            let (w, b) = (c.line() / 64, c.line() % 64);
            assert!(
                w < words,
                "control line {} exceeds the mask stride",
                c.line()
            );
            ctrl[w] |= 1 << b;
            if c.is_positive() {
                pol[w] |= 1 << b;
            }
        }
        assert!(
            gate.target() / 64 < words,
            "target line {} exceeds the mask stride",
            gate.target()
        );
        Self {
            ctrl,
            pol,
            target: u32::try_from(gate.target()).expect("line indices fit in u32"),
        }
    }

    /// An owned copy of a borrowed view.
    #[must_use]
    pub fn from_view(view: PackedGate<'_>) -> Self {
        Self {
            ctrl: view.ctrl.to_vec(),
            pol: view.pol.to_vec(),
            target: view.target,
        }
    }

    /// Builds directly from mask words (rewrite results).
    pub(crate) fn from_masks(ctrl: Vec<u64>, pol: Vec<u64>, target: u32) -> Self {
        debug_assert_eq!(ctrl.len(), pol.len());
        Self { ctrl, pol, target }
    }

    /// The borrowed view of this buffer.
    #[must_use]
    pub fn view(&self) -> PackedGate<'_> {
        PackedGate::from_raw(&self.ctrl, &self.pol, self.target)
    }
}

/// Struct-of-arrays gate storage threaded by a doubly-linked live list.
///
/// All control words live in one flat `Vec<u64>` (`words_per_gate` words
/// per slot), likewise the polarity words; targets and links are flat
/// arrays. Removal unlinks a slot without shifting anything; insertion
/// appends a slot and links it in place. Ids are stable and never
/// recycled, so side tables indexed by id stay valid across rewrites.
#[derive(Clone, Debug)]
pub struct GateArena {
    num_lines: usize,
    wpg: usize,
    ctrl: Vec<u64>,
    pol: Vec<u64>,
    target: Vec<u32>,
    prev: Vec<usize>,
    next: Vec<usize>,
    live: Vec<bool>,
    head: usize,
    tail: usize,
    len: usize,
}

impl PartialEq for GateArena {
    /// Arenas are equal when their **live gate sequences** are equal —
    /// dead-slot layout and id numbering are representation details.
    fn eq(&self, other: &Self) -> bool {
        if self.num_lines != other.num_lines || self.len != other.len {
            return false;
        }
        self.iter().zip(other.iter()).all(|((_, a), (_, b))| a == b)
    }
}

impl Eq for GateArena {}

impl GateArena {
    /// An empty arena over `num_lines` lines.
    #[must_use]
    pub fn new(num_lines: usize) -> Self {
        Self {
            num_lines,
            wpg: words_for_lines(num_lines),
            ctrl: Vec::new(),
            pol: Vec::new(),
            target: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            live: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Packs a legacy gate cascade.
    #[must_use]
    pub fn from_gates(num_lines: usize, gates: &[Gate]) -> Self {
        let mut arena = Self::new(num_lines);
        for g in gates {
            arena.push(g);
        }
        arena
    }

    /// The line count the mask stride was sized for.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Mask words per gate.
    #[must_use]
    pub fn words_per_gate(&self) -> usize {
        self.wpg
    }

    /// Number of live gates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no gate is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First live id in circuit order.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head)
    }

    /// Last live id in circuit order.
    #[must_use]
    pub fn last(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Whether `id` is a live slot.
    #[must_use]
    pub fn is_live(&self, id: usize) -> bool {
        id < self.live.len() && self.live[id]
    }

    /// The packed view of live gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    #[must_use]
    pub fn gate(&self, id: usize) -> PackedGate<'_> {
        assert!(self.is_live(id), "gate() of dead id {id}");
        let at = id * self.wpg;
        PackedGate::from_raw(
            &self.ctrl[at..at + self.wpg],
            &self.pol[at..at + self.wpg],
            self.target[id],
        )
    }

    /// Materializes live gate `id` as a legacy [`Gate`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    #[must_use]
    pub fn materialize(&self, id: usize) -> Gate {
        self.gate(id).to_gate()
    }

    /// The next live id after `id` in circuit order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    #[must_use]
    pub fn next_live(&self, id: usize) -> Option<usize> {
        assert!(self.is_live(id), "next_live of dead id {id}");
        (self.next[id] != NIL).then(|| self.next[id])
    }

    /// Up to `k` live predecessors of `id`, nearest first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    #[must_use]
    pub fn window_before(&self, id: usize, k: usize) -> Vec<usize> {
        assert!(self.is_live(id), "window_before of dead id {id}");
        let mut out = Vec::with_capacity(k.min(8));
        let mut cur = self.prev[id];
        while cur != NIL && out.len() < k {
            out.push(cur);
            cur = self.prev[cur];
        }
        out
    }

    /// Appends a legacy gate at the end; returns its id.
    pub fn push(&mut self, gate: &Gate) -> usize {
        self.push_buf(&PackedGateBuf::from_gate(gate, self.wpg))
    }

    /// Appends an owned packed gate at the end; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's stride differs from the arena's.
    pub fn push_buf(&mut self, buf: &PackedGateBuf) -> usize {
        let id = self.alloc_slot(buf);
        // Link at the tail.
        self.prev[id] = self.tail;
        self.next[id] = NIL;
        if self.tail != NIL {
            self.next[self.tail] = id;
        } else {
            self.head = id;
        }
        self.tail = id;
        self.len += 1;
        id
    }

    /// Appends a borrowed packed view (possibly from an arena with a
    /// smaller stride — the mask words are zero-extended); returns its
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if the view's stride exceeds this arena's.
    pub fn push_view(&mut self, view: PackedGate<'_>) -> usize {
        assert!(
            view.ctrl.len() <= self.wpg,
            "gate stride exceeds the arena's"
        );
        let mut ctrl = view.ctrl.to_vec();
        let mut pol = view.pol.to_vec();
        ctrl.resize(self.wpg, 0);
        pol.resize(self.wpg, 0);
        self.push_buf(&PackedGateBuf::from_masks(ctrl, pol, view.target))
    }

    /// Inserts an owned packed gate immediately before live gate `id`;
    /// returns the new id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn insert_before(&mut self, id: usize, buf: &PackedGateBuf) -> usize {
        assert!(self.is_live(id), "insert_before dead id {id}");
        let new = self.alloc_slot(buf);
        let before = self.prev[id];
        self.prev[new] = before;
        self.next[new] = id;
        self.prev[id] = new;
        if before != NIL {
            self.next[before] = new;
        } else {
            self.head = new;
        }
        self.len += 1;
        new
    }

    fn alloc_slot(&mut self, buf: &PackedGateBuf) -> usize {
        assert_eq!(
            buf.ctrl.len(),
            self.wpg,
            "packed gate stride does not match the arena"
        );
        let id = self.target.len();
        self.ctrl.extend_from_slice(&buf.ctrl);
        self.pol.extend_from_slice(&buf.pol);
        self.target.push(buf.target);
        self.prev.push(NIL);
        self.next.push(NIL);
        self.live.push(true);
        id
    }

    /// Unlinks live gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn remove(&mut self, id: usize) {
        assert!(self.is_live(id), "remove of dead id {id}");
        let (p, n) = (self.prev[id], self.next[id]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.live[id] = false;
        self.len -= 1;
    }

    /// Overwrites live gate `id` in place (same position in the cascade).
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn replace(&mut self, id: usize, buf: &PackedGateBuf) {
        assert!(self.is_live(id), "replace of dead id {id}");
        assert_eq!(buf.ctrl.len(), self.wpg, "stride mismatch");
        let at = id * self.wpg;
        self.ctrl[at..at + self.wpg].copy_from_slice(&buf.ctrl);
        self.pol[at..at + self.wpg].copy_from_slice(&buf.pol);
        self.target[id] = buf.target;
    }

    /// Flips the polarity of the control `id` has on `line` (the packed
    /// form of `Gate::with_flipped_control`, in place).
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or has no control on `line`.
    pub fn flip_polarity(&mut self, id: usize, line: usize) {
        assert!(self.is_live(id), "flip_polarity of dead id {id}");
        let (w, b) = (line / 64, line % 64);
        let at = id * self.wpg + w;
        assert!(
            (self.ctrl[at] >> b) & 1 == 1,
            "gate {id} has no control on line {line}"
        );
        self.pol[at] ^= 1 << b;
    }

    /// Grows the arena to `num_lines` lines, re-striding every slot's
    /// mask words if the per-gate word count grows. Shrinking is not
    /// supported (existing gates could fall out of range).
    pub fn grow_lines(&mut self, num_lines: usize) {
        assert!(
            num_lines >= self.num_lines,
            "GateArena only grows: {} -> {num_lines}",
            self.num_lines
        );
        let new_wpg = words_for_lines(num_lines);
        if new_wpg != self.wpg {
            let slots = self.target.len();
            let mut ctrl = vec![0u64; slots * new_wpg];
            let mut pol = vec![0u64; slots * new_wpg];
            for s in 0..slots {
                for w in 0..self.wpg {
                    ctrl[s * new_wpg + w] = self.ctrl[s * self.wpg + w];
                    pol[s * new_wpg + w] = self.pol[s * self.wpg + w];
                }
            }
            self.ctrl = ctrl;
            self.pol = pol;
            self.wpg = new_wpg;
        }
        self.num_lines = num_lines;
    }

    /// Iterates the live gates in circuit order as `(id, view)` pairs.
    pub fn iter(&self) -> ArenaIter<'_> {
        ArenaIter {
            arena: self,
            cur: self.head,
        }
    }

    /// Materializes the whole live cascade (API boundary).
    #[must_use]
    pub fn to_gates(&self) -> Vec<Gate> {
        self.iter().map(|(_, g)| g.to_gate()).collect()
    }
}

/// Iterator over an arena's live `(id, PackedGate)` pairs in circuit
/// order.
#[derive(Clone, Debug)]
pub struct ArenaIter<'a> {
    arena: &'a GateArena,
    cur: usize,
}

impl<'a> Iterator for ArenaIter<'a> {
    type Item = (usize, PackedGate<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let id = self.cur;
        self.cur = self.arena.next[id];
        Some((id, self.arena.gate(id)))
    }
}

impl<'a> IntoIterator for &'a GateArena {
    type Item = (usize, PackedGate<'a>);
    type IntoIter = ArenaIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(controls: &[(usize, bool)], target: usize) -> Gate {
        Gate::mct(
            controls
                .iter()
                .map(|&(l, p)| {
                    if p {
                        Control::positive(l)
                    } else {
                        Control::negative(l)
                    }
                })
                .collect(),
            target,
        )
    }

    #[test]
    fn round_trip_preserves_structure() {
        let gates = vec![
            g(&[], 0),
            g(&[(0, true)], 1),
            g(&[(0, false), (2, true)], 1),
            g(&[(1, true), (3, false), (4, true)], 0),
        ];
        let arena = GateArena::from_gates(5, &gates);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.to_gates(), gates);
    }

    #[test]
    fn packing_beyond_64_lines_uses_two_words() {
        let gate = g(&[(3, true), (70, false)], 68);
        let arena = GateArena::from_gates(72, std::slice::from_ref(&gate));
        assert_eq!(arena.words_per_gate(), 2);
        let v = arena.gate(0);
        assert_eq!(v.num_controls(), 2);
        assert_eq!(v.control_on(3), Some(true));
        assert_eq!(v.control_on(70), Some(false));
        assert_eq!(v.control_on(68), None);
        assert!(v.acts_on(68));
        assert_eq!(v.to_gate(), gate);
    }

    #[test]
    fn fires_matches_legacy_gate() {
        let gate = g(&[(0, true), (2, false)], 1);
        let arena = GateArena::from_gates(3, std::slice::from_ref(&gate));
        let v = arena.gate(0);
        for x in 0..8u64 {
            assert_eq!(v.fires_u64(x), gate.fires(x), "x={x}");
            assert_eq!(v.fires_words(&[x]), gate.fires(x), "x={x}");
        }
    }

    #[test]
    fn conflict_and_commutation_match_mask_semantics() {
        let arena = GateArena::from_gates(
            4,
            &[
                g(&[(0, true)], 2),
                g(&[(0, false)], 3),
                g(&[(0, true), (1, true)], 3),
                g(&[(2, true)], 1),
            ],
        );
        let (a, b, c, d) = (arena.gate(0), arena.gate(1), arena.gate(2), arena.gate(3));
        assert!(a.controls_conflict(&b));
        assert!(!a.controls_conflict(&c));
        assert!(a.commutes_with(&b), "conflicting controls commute");
        assert!(a.commutes_with(&c), "disjoint target/support commute");
        assert!(!a.commutes_with(&d), "d reads a's target");
    }

    #[test]
    fn list_surgery_maintains_order_and_links() {
        let mut arena = GateArena::from_gates(3, &[g(&[], 0), g(&[], 1), g(&[], 2)]);
        let first = arena.first().unwrap();
        arena.remove(first);
        assert_eq!(arena.len(), 2);
        let head = arena.first().unwrap();
        assert_eq!(arena.gate(head).target(), 1);
        let buf = PackedGateBuf::from_gate(&g(&[(1, true)], 0), arena.words_per_gate());
        let new = arena.insert_before(head, &buf);
        assert_eq!(arena.first(), Some(new));
        let targets: Vec<usize> = arena.iter().map(|(_, v)| v.target()).collect();
        assert_eq!(targets, vec![0, 1, 2]);
        arena.replace(
            head,
            &PackedGateBuf::from_gate(&g(&[], 2), arena.words_per_gate()),
        );
        let targets: Vec<usize> = arena.iter().map(|(_, v)| v.target()).collect();
        assert_eq!(targets, vec![0, 2, 2]);
        assert_eq!(arena.window_before(arena.last().unwrap(), 8), {
            let mut ids: Vec<usize> = arena.iter().map(|(id, _)| id).collect();
            ids.pop();
            ids.reverse();
            ids
        });
    }

    #[test]
    #[should_panic(expected = "dead id")]
    fn dead_access_panics() {
        let mut arena = GateArena::from_gates(2, &[g(&[], 0)]);
        arena.remove(0);
        let _ = arena.gate(0);
    }

    #[test]
    fn growing_restrides_masks() {
        let gate = g(&[(0, true), (50, false)], 20);
        let mut arena = GateArena::from_gates(51, std::slice::from_ref(&gate));
        assert_eq!(arena.words_per_gate(), 1);
        arena.grow_lines(130);
        assert_eq!(arena.words_per_gate(), 3);
        assert_eq!(arena.to_gates(), vec![gate]);
        arena.push(&g(&[(128, true)], 5));
        assert_eq!(arena.len(), 2);
        assert_eq!(
            arena.gate(arena.last().unwrap()).control_on(128),
            Some(true)
        );
    }

    #[test]
    fn equality_ignores_dead_slots() {
        let gates = vec![g(&[], 0), g(&[(0, true)], 1)];
        let a = GateArena::from_gates(2, &gates);
        let mut b = GateArena::from_gates(2, &[g(&[], 1), g(&[], 0), g(&[(0, true)], 1)]);
        b.remove(0);
        assert_eq!(a, b);
    }
}
