//! Property-based tests: synthesis back-ends realize their specifications
//! on randomly generated functions.

use proptest::prelude::*;
use qda_logic::esop::{Esop, MultiEsop};
use qda_logic::tt::{MultiTruthTable, TruthTable};
use qda_rev::equiv::{verify_computes, VerifyOptions};
use qda_rev::testkit::arb_permutation;
use qda_revsynth::embed::{bennett_embedding, optimum_embedding};
use qda_revsynth::esop::{synthesize_esop, EsopSynthOptions};
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};

fn arb_multi_fn(n: usize, m: usize) -> impl Strategy<Value = MultiTruthTable> {
    prop::collection::vec(
        prop::collection::vec(any::<u64>(), 1usize.max(1 << n.saturating_sub(6))),
        m,
    )
    .prop_map(move |words| {
        MultiTruthTable::from_outputs(
            words
                .into_iter()
                .map(|w| TruthTable::from_words(n, w))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tbs_realizes_random_permutations(perm in arb_permutation(5), bidir in any::<bool>()) {
        let dir = if bidir { TbsDirection::Bidirectional } else { TbsDirection::Unidirectional };
        let c = transformation_based_synthesis(&perm, dir);
        for (x, &y) in perm.iter().enumerate() {
            prop_assert_eq!(c.simulate_u64(x as u64), y);
        }
    }

    #[test]
    fn embeddings_are_valid(f in arb_multi_fn(4, 3)) {
        let b = bennett_embedding(&f);
        prop_assert!(b.validate(&f));
        let o = optimum_embedding(&f);
        prop_assert!(o.validate(&f));
        prop_assert!(o.num_lines() <= b.num_lines());
    }

    #[test]
    fn tbs_of_optimum_embedding_computes_f(f in arb_multi_fn(4, 2)) {
        let e = optimum_embedding(&f);
        let m = e.num_outputs();
        let c = transformation_based_synthesis(e.permutation(), TbsDirection::Bidirectional);
        for x in 0..16u64 {
            prop_assert_eq!(c.simulate_u64(x) & ((1 << m) - 1), f.eval(x));
        }
    }

    #[test]
    fn esop_synthesis_computes_f(f in arb_multi_fn(4, 3), p in 0usize..3) {
        let esops: Vec<Esop> = f.outputs().iter().map(Esop::from_truth_table).collect();
        let esop = MultiEsop::from_single_outputs(&esops);
        let s = synthesize_esop(&esop, &EsopSynthOptions { factoring_passes: p, min_sharers: 2 });
        let outcome = verify_computes(
            &s.circuit,
            &s.input_lines,
            &s.output_lines,
            |x| f.eval(x),
            &VerifyOptions {
                check_ancilla_clean: true,
                check_inputs_preserved: true,
                ..Default::default()
            },
        );
        prop_assert!(outcome.is_ok(), "{:?}", outcome);
    }
}
