//! Embedding irreversible functions into reversible ones (paper §II-B).
//!
//! An `n`-input, `m`-output function is extended to a reversible function
//! on `r ≥ max(n, m)` lines by adding constant inputs and garbage outputs.
//! The Bennett embedding (Theorem 1) always works with `r = n + m`; the
//! *optimum* embedding achieves
//! `r = max(n, m + ⌈log₂ max-collision⌉)` — for the reciprocal this is
//! `2n − 1`, one line fewer than the out-of-place bound, which Table II
//! highlights as a key win of the functional flow.

use qda_logic::tt::MultiTruthTable;

/// A reversible completion of an irreversible function.
///
/// Line convention: the *low* `num_inputs` lines carry the input `x` (all
/// other input lines are constant 0); after applying [`Embedding::permutation`],
/// the *low* `num_outputs` lines carry `f(x)` and the remaining lines are
/// garbage. (The paper places outputs on the last `m` wires; the choice is
/// a relabeling and we document ours here.)
#[derive(Clone, Debug)]
pub struct Embedding {
    num_lines: usize,
    num_inputs: usize,
    num_outputs: usize,
    permutation: Vec<u64>,
}

impl Embedding {
    /// Total reversible lines `r`.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Original input count `n`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Original output count `m`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The reversible function as an explicit permutation of `2^r` values.
    pub fn permutation(&self) -> &[u64] {
        &self.permutation
    }

    /// Consumes the embedding, returning the permutation.
    pub fn into_permutation(self) -> Vec<u64> {
        self.permutation
    }

    /// The embedded output for original input `x` (low `m` bits are
    /// `f(x)`).
    pub fn apply(&self, x: u64) -> u64 {
        self.permutation[x as usize]
    }

    /// Checks the embedding condition (Eq. 1): for every original input,
    /// the low output bits equal `f(x)`; and the map is a permutation.
    pub fn validate(&self, f: &MultiTruthTable) -> bool {
        let out_mask = (1u64 << self.num_outputs) - 1;
        let mut seen = vec![false; self.permutation.len()];
        for (x, &y) in self.permutation.iter().enumerate() {
            if seen[y as usize] {
                return false;
            }
            seen[y as usize] = true;
            if (x as u64) < (1u64 << self.num_inputs) && y & out_mask != f.eval(x as u64) {
                return false;
            }
        }
        true
    }
}

/// The minimum number of additional lines `⌈log₂ max-collision⌉` (Eq. 3).
///
/// Computing this exactly is coNP-complete in general \[17\]; explicit
/// enumeration is exact for the bitwidths of the functional flow.
pub fn minimum_additional_lines(f: &MultiTruthTable) -> usize {
    let mu = f.max_collisions();
    (64 - (mu.max(1) - 1).leading_zeros()) as usize
}

/// The Bennett embedding (Theorem 1): `r = n + m`,
/// `f'(x, a) = (x, a ⊕ f(x))`.
///
/// Inputs are preserved on the low `n` lines; the XOR-accumulated outputs
/// sit above them. Never optimal in lines for non-injective functions, but
/// always valid and cheap to construct.
pub fn bennett_embedding(f: &MultiTruthTable) -> Embedding {
    let n = f.num_vars();
    let m = f.num_outputs();
    let r = n + m;
    let mut permutation = Vec::with_capacity(1 << r);
    for v in 0..(1u64 << r) {
        let x = v & ((1 << n) - 1);
        let a = v >> n;
        let y = a ^ f.eval(x);
        permutation.push(x | (y << n));
    }
    Embedding {
        num_lines: r,
        num_inputs: n,
        num_outputs: m,
        // Outputs live on lines n..n+m in this construction; normalize to
        // the low-lines convention by swapping halves.
        permutation: normalize_bennett(permutation, n, m),
    }
}

/// Rearranges the Bennett permutation so outputs occupy the low `m` lines
/// (our convention), keeping it a permutation.
fn normalize_bennett(perm: Vec<u64>, n: usize, m: usize) -> Vec<u64> {
    // Swap the roles of the two line groups on the *output side* only:
    // (x, y) stored as x | y<<n  →  y | x<<m.
    perm.into_iter()
        .map(|v| {
            let x = v & ((1 << n) - 1);
            let y = v >> n;
            y | (x << m)
        })
        .collect()
}

/// Computes an optimum-line embedding:
/// `r = max(n, m + ⌈log₂ max-collision⌉)`.
///
/// Each collision class `f⁻¹(y)` gets distinct garbage codes `0, 1, 2, …`
/// on the lines above the output lines; input patterns with non-zero
/// constant lines are mapped onto the unused output patterns greedily
/// (any completion works — synthesis cost varies, optimality in *lines* is
/// what matters here, matching the paper's flow).
///
/// # Panics
///
/// Panics if `r > 28` (the explicit permutation would not fit in memory);
/// larger instances require the symbolic variant, which the paper itself
/// only pushed to `n = 16` at multi-day runtimes.
pub fn optimum_embedding(f: &MultiTruthTable) -> Embedding {
    let n = f.num_vars();
    let m = f.num_outputs();
    let g = minimum_additional_lines(f);
    let r = n.max(m + g);
    assert!(r <= 28, "explicit embedding limited to 28 lines, got {r}");
    let size = 1usize << r;
    let unassigned = u64::MAX;
    let mut permutation = vec![unassigned; size];
    let mut used = vec![false; size];
    // Garbage code counter per output value.
    let mut next_code = std::collections::HashMap::new();
    for x in 0..(1u64 << n) {
        let y = f.eval(x);
        let code = next_code.entry(y).or_insert(0u64);
        let out = y | (*code << m);
        *code += 1;
        debug_assert!(out < size as u64, "garbage code overflow");
        permutation[x as usize] = out;
        used[out as usize] = true;
    }
    // Completion for the remaining input patterns. These are don't-cares
    // of the original function, so any bijective completion is valid —
    // prefer fixed points (v → v), which cost transformation-based
    // synthesis nothing, and fill the rest in ascending order.
    for v in 0..size {
        if permutation[v] == unassigned && !used[v] {
            permutation[v] = v as u64;
            used[v] = true;
        }
    }
    let mut free_iter = 0usize;
    for slot in permutation.iter_mut().take(size) {
        if *slot != unassigned {
            continue;
        }
        while used[free_iter] {
            free_iter += 1;
        }
        *slot = free_iter as u64;
        used[free_iter] = true;
    }
    Embedding {
        num_lines: r,
        num_inputs: n,
        num_outputs: m,
        permutation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::tt::MultiTruthTable;

    fn reciprocal(n: usize) -> MultiTruthTable {
        // y = n-bit fraction of 2^n / x (INTDIV semantics), rec(0) := 0.
        MultiTruthTable::from_fn(n, n, |x| {
            (1u64 << n).checked_div(x).unwrap_or(0) & ((1 << n) - 1)
        })
    }

    #[test]
    fn bennett_is_valid_for_random_functions() {
        let f = MultiTruthTable::from_fn(3, 2, |x| (x * 5) % 4);
        let e = bennett_embedding(&f);
        assert_eq!(e.num_lines(), 5);
        assert!(e.validate(&f));
    }

    #[test]
    fn minimum_lines_formula() {
        // Constant function: all 2^n inputs collide → g = n.
        let constant = MultiTruthTable::from_fn(4, 2, |_| 1);
        assert_eq!(minimum_additional_lines(&constant), 4);
        // A permutation (injective): no additional lines.
        let perm = MultiTruthTable::from_fn(3, 3, |x| x ^ 5);
        assert_eq!(minimum_additional_lines(&perm), 0);
        // Two-to-one function: one line.
        let half = MultiTruthTable::from_fn(3, 2, |x| x >> 1);
        assert_eq!(minimum_additional_lines(&half), 1);
    }

    #[test]
    fn optimum_embedding_is_valid_and_small() {
        for n in 3..=7 {
            let f = reciprocal(n);
            let e = optimum_embedding(&f);
            assert!(e.validate(&f), "n={n}");
            // The paper reports 2n−1 qubits for the reciprocal.
            assert_eq!(e.num_lines(), 2 * n - 1, "n={n}");
            let b = bennett_embedding(&f);
            assert!(e.num_lines() < b.num_lines());
        }
    }

    #[test]
    fn optimum_embedding_of_injective_function_adds_no_lines() {
        let f = MultiTruthTable::from_fn(4, 4, |x| x.wrapping_mul(5) & 15);
        let e = optimum_embedding(&f);
        assert_eq!(e.num_lines(), 4);
        assert!(e.validate(&f));
    }

    #[test]
    fn embedding_permutation_is_bijective() {
        let f = MultiTruthTable::from_fn(4, 3, |x| x % 6);
        let e = optimum_embedding(&f);
        let mut seen = vec![false; e.permutation().len()];
        for &y in e.permutation() {
            assert!(!seen[y as usize]);
            seen[y as usize] = true;
        }
    }

    #[test]
    fn apply_matches_function() {
        let f = reciprocal(5);
        let e = optimum_embedding(&f);
        for x in 0..32u64 {
            assert_eq!(e.apply(x) & 31, f.eval(x));
        }
    }
}
