//! ESOP-based reversible synthesis (the REVS flow of the paper, §IV-B).
//!
//! Every product term of a multi-output ESOP becomes one mixed-polarity
//! multiple-controlled Toffoli gate. The circuit uses `n + m` lines
//! (inputs preserved, outputs accumulated by XOR) — exactly `2n` for the
//! reciprocal, matching Table III's `p = 0` column.
//!
//! *Cube sharing*: a cube feeding several outputs costs a single Toffoli
//! plus a CNOT sandwich (`CNOT(o₁→oⱼ)…, MCT(→o₁), CNOT(o₁→oⱼ)…`) — no
//! ancilla, which is what keeps `p = 0` at `2n` lines.
//!
//! *Factoring* (`p > 0`): `p` greedy extraction passes; each pass finds
//! common literal sub-cubes (≥ 2 literals) shared by several cubes,
//! computes each once onto a fresh ancilla line, and rewrites the cubes to
//! use the ancilla as a single control. Ancillae are computed up front and
//! uncomputed at the end, so they end clean. This reproduces the Table III
//! `p = 1` behaviour: more qubits, fewer T gates.

use qda_logic::cube::Cube;
use qda_logic::esop::MultiEsop;
use qda_rev::circuit::Circuit;
use qda_rev::gate::{Control, Gate};

/// Options for [`synthesize_esop`].
#[derive(Clone, Copy, Debug)]
pub struct EsopSynthOptions {
    /// Number of factoring passes (the paper's `p`). `0` disables
    /// factoring and guarantees exactly `n + m` lines.
    pub factoring_passes: usize,
    /// Minimum number of cubes that must share a sub-cube for it to be
    /// extracted.
    pub min_sharers: usize,
}

impl Default for EsopSynthOptions {
    fn default() -> Self {
        Self {
            factoring_passes: 0,
            min_sharers: 2,
        }
    }
}

/// Result of ESOP-based synthesis.
#[derive(Clone, Debug)]
pub struct EsopSynthesis {
    /// The synthesized circuit.
    pub circuit: Circuit,
    /// Input lines (`0..n`).
    pub input_lines: Vec<usize>,
    /// Output lines (`n..n+m`).
    pub output_lines: Vec<usize>,
    /// Number of factor ancilla lines added by factoring.
    pub num_factors: usize,
}

/// Synthesizes a reversible circuit from a multi-output ESOP.
///
/// Inputs arrive on lines `0..n` (preserved); outputs accumulate on lines
/// `n..n+m` (which must start at zero); factor ancillae above end clean.
///
/// # Example
///
/// ```
/// use qda_logic::cube::Cube;
/// use qda_logic::esop::MultiEsop;
/// use qda_revsynth::esop::{synthesize_esop, EsopSynthOptions};
///
/// // One output: x0 & x1.
/// let esop = MultiEsop::from_cubes(2, 1, vec![(Cube::minterm(2, 3), 1)]);
/// let s = synthesize_esop(&esop, &EsopSynthOptions::default());
/// assert_eq!(s.circuit.num_lines(), 3);
/// assert_eq!(s.circuit.simulate_u64(0b11) >> 2, 1);
/// ```
pub fn synthesize_esop(esop: &MultiEsop, options: &EsopSynthOptions) -> EsopSynthesis {
    let n = esop.num_vars();
    let m = esop.num_outputs();
    // Extended cube list: literals may reference factor variables at
    // indices >= n (mapped onto lines n + m + k).
    let mut cubes: Vec<(Cube, u64)> = esop.cubes().to_vec();
    // factors[k] = the sub-cube computed onto factor line k.
    let mut factors: Vec<Cube> = Vec::new();
    for _ in 0..options.factoring_passes {
        if !factoring_pass(&mut cubes, &mut factors, n, options.min_sharers) {
            break;
        }
    }
    let num_factors = factors.len();
    let total_lines = n + m + num_factors;
    assert!(
        n + num_factors <= 64,
        "cube variable space exceeds 64 (inputs + factors)"
    );
    let mut circuit = Circuit::new(total_lines);
    // Map extended cube variable -> circuit line.
    let var_line = |v: usize| if v < n { v } else { n + m + (v - n) };
    let cube_controls = |c: &Cube| -> Vec<Control> {
        c.literals()
            .map(|(v, pos)| {
                if pos {
                    Control::positive(var_line(v))
                } else {
                    Control::negative(var_line(v))
                }
            })
            .collect()
    };
    // Compute factors (in order: later factors may use earlier ones).
    for (k, f) in factors.iter().enumerate() {
        circuit.add_gate(Gate::mct(cube_controls(f), n + m + k));
    }
    // Emit one MCT per cube, with the CNOT sandwich for shared cubes.
    for &(cube, mask) in &cubes {
        let outputs: Vec<usize> = (0..m).filter(|j| (mask >> j) & 1 == 1).collect();
        if outputs.is_empty() {
            continue;
        }
        let first = n + outputs[0];
        let controls = cube_controls(&cube);
        if controls.is_empty() {
            // Tautology cube: plain NOTs on every target.
            for &j in &outputs {
                circuit.not(n + j);
            }
            continue;
        }
        for &j in &outputs[1..] {
            circuit.cnot(first, n + j);
        }
        circuit.add_gate(Gate::mct(controls, first));
        for &j in &outputs[1..] {
            circuit.cnot(first, n + j);
        }
    }
    // Uncompute factors in reverse.
    for (k, f) in factors.iter().enumerate().rev() {
        circuit.add_gate(Gate::mct(cube_controls(f), n + m + k));
    }
    EsopSynthesis {
        circuit,
        input_lines: (0..n).collect(),
        output_lines: (n..n + m).collect(),
        num_factors,
    }
}

/// One greedy factoring pass: extracts disjoint best-scoring sub-cubes.
/// Returns whether anything was extracted.
fn factoring_pass(
    cubes: &mut [(Cube, u64)],
    factors: &mut Vec<Cube>,
    n: usize,
    min_sharers: usize,
) -> bool {
    let mut changed = false;
    loop {
        // Candidate sub-cubes: pairwise common cubes with >= 2 literals.
        let mut best: Option<(usize, Cube, Vec<usize>)> = None;
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                let common = cubes[i].0.common(&cubes[j].0);
                if common.num_literals() < 2 {
                    continue;
                }
                // All cubes containing this sub-cube.
                let sharers: Vec<usize> = cubes
                    .iter()
                    .enumerate()
                    .filter(|(_, (c, _))| {
                        common.literals().all(|(v, pos)| c.literal(v) == Some(pos))
                    })
                    .map(|(k, _)| k)
                    .collect();
                if sharers.len() < min_sharers {
                    continue;
                }
                // Saved controls ≈ (sharers − 1) × (literals − 1): each
                // sharer replaces `literals` controls by one; the factor
                // gate itself costs `literals` controls twice.
                let lits = common.num_literals();
                let saved = sharers.len() * (lits - 1);
                let cost = 2 * lits;
                if saved <= cost {
                    continue;
                }
                let score = saved - cost;
                if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                    best = Some((score, common, sharers));
                }
            }
        }
        let Some((_, sub, sharers)) = best else {
            return changed;
        };
        // New factor variable index (extended space).
        if n + factors.len() >= 64 {
            return changed;
        }
        let fvar = n + factors.len();
        factors.push(sub);
        for k in sharers {
            let stripped = cubes[k].0.strip(&sub).with_literal(fvar, true);
            cubes[k].0 = stripped;
        }
        changed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::esop::Esop;
    use qda_logic::tt::{MultiTruthTable, TruthTable};
    use qda_rev::equiv::{verify_computes, VerifyOptions, VerifyOutcome};

    fn verify(esop: &MultiEsop, options: &EsopSynthOptions) -> EsopSynthesis {
        let s = synthesize_esop(esop, options);
        let reference = esop.clone();
        let outcome = verify_computes(
            &s.circuit,
            &s.input_lines,
            &s.output_lines,
            |x| reference.eval(x),
            &VerifyOptions {
                check_ancilla_clean: true,
                check_inputs_preserved: true,
                ..Default::default()
            },
        );
        assert_eq!(
            outcome,
            VerifyOutcome::Verified,
            "p={}",
            options.factoring_passes
        );
        s
    }

    fn esop_of(tts: &[TruthTable]) -> MultiEsop {
        MultiEsop::from_single_outputs(&tts.iter().map(Esop::from_truth_table).collect::<Vec<_>>())
    }

    #[test]
    fn single_cube_per_output() {
        let esop = MultiEsop::from_cubes(
            3,
            2,
            vec![
                (Cube::minterm(3, 5), 0b01),
                (Cube::tautology().with_literal(1, false), 0b10),
            ],
        );
        let s = verify(&esop, &EsopSynthOptions::default());
        assert_eq!(s.circuit.num_lines(), 5);
        assert_eq!(s.num_factors, 0);
    }

    #[test]
    fn shared_cube_uses_single_toffoli() {
        // One cube feeding both outputs.
        let esop = MultiEsop::from_cubes(3, 2, vec![(Cube::minterm(3, 7), 0b11)]);
        let s = verify(&esop, &EsopSynthOptions::default());
        let cost = s.circuit.cost();
        // 1 MCT + 2 CNOTs, never 2 MCTs.
        assert_eq!(cost.mct_count, 1);
        assert_eq!(cost.cnot_count, 2);
    }

    #[test]
    fn tautology_cube_becomes_nots() {
        let esop = MultiEsop::from_cubes(2, 2, vec![(Cube::tautology(), 0b11)]);
        let s = verify(&esop, &EsopSynthOptions::default());
        assert_eq!(s.circuit.cost().not_count, 2);
    }

    #[test]
    fn random_functions_all_p() {
        for seed in 0..6u64 {
            let t0 = TruthTable::from_fn(4, |x| {
                (x.wrapping_mul(0xABCD).wrapping_add(seed) >> 3) & 1 == 1
            });
            let t1 = TruthTable::from_fn(4, |x| (x + seed) % 3 == 0);
            let esop = esop_of(&[t0, t1]);
            for p in 0..3 {
                verify(
                    &esop,
                    &EsopSynthOptions {
                        factoring_passes: p,
                        min_sharers: 2,
                    },
                );
            }
        }
    }

    #[test]
    fn factoring_reduces_t_count_on_shareable_cubes() {
        // Many cubes sharing the sub-cube x0 x1 x2.
        let base = Cube::tautology()
            .with_literal(0, true)
            .with_literal(1, true)
            .with_literal(2, true);
        let cubes: Vec<(Cube, u64)> = (0..4)
            .map(|k| {
                let c = base
                    .with_literal(3 + k, k % 2 == 0)
                    .with_literal((3 + k + 1).min(7), true);
                (c, 1u64)
            })
            .collect();
        let esop = MultiEsop::from_cubes(8, 1, cubes);
        let p0 = synthesize_esop(&esop, &EsopSynthOptions::default());
        let p1 = synthesize_esop(
            &esop,
            &EsopSynthOptions {
                factoring_passes: 1,
                min_sharers: 2,
            },
        );
        assert!(p1.num_factors >= 1);
        assert!(p1.circuit.num_lines() > p0.circuit.num_lines());
        assert!(
            p1.circuit.cost().t_count < p0.circuit.cost().t_count,
            "p1 {} vs p0 {}",
            p1.circuit.cost().t_count,
            p0.circuit.cost().t_count
        );
        // Both remain correct.
        verify(&esop, &EsopSynthOptions::default());
        verify(
            &esop,
            &EsopSynthOptions {
                factoring_passes: 1,
                min_sharers: 2,
            },
        );
    }

    #[test]
    fn matches_truth_table_semantics() {
        let f = MultiTruthTable::from_fn(4, 4, |x| (x * 3 + 1) & 15);
        let esops: Vec<Esop> = f.outputs().iter().map(Esop::from_truth_table).collect();
        let esop = MultiEsop::from_single_outputs(&esops);
        let s = verify(&esop, &EsopSynthOptions::default());
        // p = 0 ⇒ exactly n + m lines (the 2n of Table III).
        assert_eq!(s.circuit.num_lines(), 8);
    }
}
