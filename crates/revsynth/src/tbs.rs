//! Transformation-based synthesis (Miller–Maslov–Dueck style), the
//! functional synthesis back-end of the paper's first design flow.
//!
//! The input reversible function (an explicit permutation) is transformed
//! into the identity by prepending/appending mixed-polarity
//! multiple-controlled Toffoli gates; the collected gates, reversed,
//! realize the function. Line-count is exactly the number of function
//! variables — functional synthesis never adds lines, which is why it
//! pairs with the optimum embedding.
//!
//! Following the behaviour the paper reports for its symbolic variant
//! ("a property of the transformation-based algorithm is that large
//! Toffoli gates with controls on all circuit lines are generated, which
//! leads to large T-count"), every emitted gate controls on *all* other
//! lines with the polarities of the value being moved. Such a gate is a
//! pure transposition of two adjacent-in-Hamming-space values: it can
//! never disturb already-fixed rows, so no control-subset invariant is
//! needed and the per-gate bookkeeping is O(1). The price is exactly the
//! one the paper highlights: `r − 1` controls per gate.
//!
//! The paper's SAT-based symbolic variant \[7\] reaches `n = 16` (31 lines,
//! 3.2-day runtime); this explicit implementation covers the same
//! algorithmic behaviour up to 25 lines, which is all the benchmark
//! harness exercises.

use qda_rev::circuit::Circuit;
use qda_rev::gate::{Control, Gate};

/// Which sides of the cascade the algorithm may extend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TbsDirection {
    /// Classic output-side-only algorithm.
    Unidirectional,
    /// Choose the cheaper of output-side and input-side at every step.
    Bidirectional,
}

/// Synthesizes a reversible circuit realizing `perm` over
/// `log₂ perm.len()` lines.
///
/// # Panics
///
/// Panics if `perm.len()` is not a power of two, exceeds 2²⁵, or is not a
/// permutation.
///
/// # Example
///
/// ```
/// use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};
///
/// // A 2-line swap as a permutation.
/// let perm = vec![0b00, 0b10, 0b01, 0b11];
/// let circuit = transformation_based_synthesis(&perm, TbsDirection::Bidirectional);
/// for (x, &y) in perm.iter().enumerate() {
///     assert_eq!(circuit.simulate_u64(x as u64), y);
/// }
/// ```
pub fn transformation_based_synthesis(perm: &[u64], direction: TbsDirection) -> Circuit {
    let size = perm.len();
    assert!(size.is_power_of_two(), "permutation size must be 2^r");
    assert!(size <= 1 << 25, "explicit TBS limited to 25 lines");
    let r = size.trailing_zeros() as usize;
    {
        let mut seen = vec![false; size];
        for &y in perm {
            assert!(
                (y as usize) < size && !seen[y as usize],
                "not a permutation"
            );
            seen[y as usize] = true;
        }
    }
    let mut fwd: Vec<u64> = perm.to_vec();
    let mut inv: Vec<u64> = vec![0; size];
    for (x, &y) in fwd.iter().enumerate() {
        inv[y as usize] = x as u64;
    }
    // Gates applied at the output side (collected in generation order,
    // emitted reversed) and at the input side (emitted in order).
    let mut out_gates: Vec<Gate> = Vec::new();
    let mut in_gates: Vec<Gate> = Vec::new();
    for x in 0..size as u64 {
        let y = fwd[x as usize];
        if y == x {
            continue;
        }
        match direction {
            TbsDirection::Unidirectional => {
                emit_output_side(y, x, r, &mut fwd, &mut inv, &mut out_gates);
            }
            TbsDirection::Bidirectional => {
                let xp = inv[x as usize]; // the input currently mapping to x
                                          // Cost proxy: gate count = Hamming distance of the move.
                if (xp ^ x).count_ones() < (y ^ x).count_ones() {
                    emit_input_side(xp, x, r, &mut fwd, &mut inv, &mut in_gates);
                } else {
                    emit_output_side(y, x, r, &mut fwd, &mut inv, &mut out_gates);
                }
            }
        }
        debug_assert_eq!(fwd[x as usize], x);
    }
    // Circuit = in_gates (in order) ++ reverse(out_gates).
    let mut circuit = Circuit::new(r);
    for g in in_gates {
        circuit.add_gate(g);
    }
    for g in out_gates.into_iter().rev() {
        circuit.add_gate(g);
    }
    circuit
}

/// The full-control transposition gate exchanging `v` and `v ^ (1 << j)`.
fn transposition_gate(v: u64, j: usize, r: usize) -> Gate {
    let controls: Vec<Control> = (0..r)
        .filter(|&k| k != j)
        .map(|k| {
            if (v >> k) & 1 == 1 {
                Control::positive(k)
            } else {
                Control::negative(k)
            }
        })
        .collect();
    Gate::mct(controls, j)
}

/// Moves value `from` to value `to` with output-side transpositions
/// (`f ← g ∘ f`), one gate per differing bit. Bits are set before they are
/// cleared so intermediate values never collide with already-fixed rows
/// below `to`.
fn emit_output_side(
    from: u64,
    to: u64,
    r: usize,
    fwd: &mut [u64],
    inv: &mut [u64],
    gates: &mut Vec<Gate>,
) {
    let mut cur = from;
    let mut bit_order: Vec<usize> = (0..r).filter(|&j| (from ^ to) >> j & 1 == 1).collect();
    // Set 0→1 flips first (keeps intermediates ≥ to).
    bit_order.sort_by_key(|&j| (to >> j) & 1 == 0);
    for j in bit_order {
        gates.push(transposition_gate(cur, j, r));
        // Swap the two values cur and cur^bit.
        let other = cur ^ (1 << j);
        let x0 = inv[cur as usize];
        let x1 = inv[other as usize];
        fwd[x0 as usize] = other;
        fwd[x1 as usize] = cur;
        inv[cur as usize] = x1;
        inv[other as usize] = x0;
        cur = other;
    }
    debug_assert_eq!(cur, to);
}

/// Moves domain point `from` to domain point `to` with input-side
/// transpositions (`f ← f ∘ g`).
fn emit_input_side(
    from: u64,
    to: u64,
    r: usize,
    fwd: &mut [u64],
    inv: &mut [u64],
    gates: &mut Vec<Gate>,
) {
    let mut cur = from;
    let mut bit_order: Vec<usize> = (0..r).filter(|&j| (from ^ to) >> j & 1 == 1).collect();
    bit_order.sort_by_key(|&j| (to >> j) & 1 == 0);
    for j in bit_order {
        // The circuit applies input gates before the remaining function,
        // and the function seen by the algorithm becomes f ∘ g (the gate
        // swaps the two domain points cur and cur^bit).
        gates.push(transposition_gate(cur, j, r));
        let other = cur ^ (1 << j);
        let y0 = fwd[cur as usize];
        let y1 = fwd[other as usize];
        fwd[cur as usize] = y1;
        fwd[other as usize] = y0;
        inv[y0 as usize] = other;
        inv[y1 as usize] = cur;
        cur = other;
    }
    debug_assert_eq!(cur, to);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::cost::CircuitCost;

    fn check(perm: &[u64], dir: TbsDirection) -> Circuit {
        let c = transformation_based_synthesis(perm, dir);
        for (x, &y) in perm.iter().enumerate() {
            assert_eq!(c.simulate_u64(x as u64), y, "x={x} dir={dir:?}");
        }
        c
    }

    #[test]
    fn identity_needs_no_gates() {
        let perm: Vec<u64> = (0..16).collect();
        let c = check(&perm, TbsDirection::Bidirectional);
        assert_eq!(c.num_gates(), 0);
    }

    #[test]
    fn synthesizes_all_3_line_rotations() {
        for shift in 1..8u64 {
            let perm: Vec<u64> = (0..8).map(|x| (x + shift) & 7).collect();
            check(&perm, TbsDirection::Unidirectional);
            check(&perm, TbsDirection::Bidirectional);
        }
    }

    #[test]
    fn synthesizes_random_permutations() {
        // Deterministic Fisher–Yates.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in [3usize, 4, 5, 6] {
            let size = 1usize << r;
            let mut perm: Vec<u64> = (0..size as u64).collect();
            for i in (1..size).rev() {
                let j = (next() as usize) % (i + 1);
                perm.swap(i, j);
            }
            check(&perm, TbsDirection::Unidirectional);
            check(&perm, TbsDirection::Bidirectional);
        }
    }

    #[test]
    fn gates_control_all_other_lines() {
        // The paper-reported property: TBS gates carry controls on all
        // circuit lines but the target.
        let mut perm: Vec<u64> = (0..32).collect();
        perm.swap(3, 27);
        perm.swap(9, 14);
        let c = check(&perm, TbsDirection::Unidirectional);
        for g in c.gates() {
            assert_eq!(g.num_controls(), 4);
        }
    }

    #[test]
    fn bidirectional_not_worse_on_average() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut uni_total = 0u64;
        let mut bi_total = 0u64;
        for _ in 0..8 {
            let size = 32;
            let mut perm: Vec<u64> = (0..size as u64).collect();
            for i in (1..size).rev() {
                let j = (next() as usize) % (i + 1);
                perm.swap(i, j);
            }
            let cu = check(&perm, TbsDirection::Unidirectional);
            let cb = check(&perm, TbsDirection::Bidirectional);
            uni_total += CircuitCost::of(&cu).t_count;
            bi_total += CircuitCost::of(&cb).t_count;
        }
        assert!(bi_total <= uni_total, "bi {bi_total} vs uni {uni_total}");
    }

    #[test]
    fn single_transposition_costs_hamming_distance() {
        // Swapping 14 (0b01110) and 15 differs in one bit: one gate.
        let mut perm: Vec<u64> = (0..16).collect();
        perm.swap(14, 15);
        let c = check(&perm, TbsDirection::Bidirectional);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn near_identity_permutations_stay_cheap() {
        // The transposition property: fixing k displaced rows costs
        // O(k · r) gates, not a cascade over the whole space.
        let mut perm: Vec<u64> = (0..256).collect();
        perm.swap(10, 200);
        perm.swap(33, 77);
        perm.swap(128, 255);
        let c = check(&perm, TbsDirection::Bidirectional);
        assert!(c.num_gates() <= 64, "got {}", c.num_gates());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let _ = transformation_based_synthesis(&[0, 0, 1, 2], TbsDirection::Unidirectional);
    }
}
