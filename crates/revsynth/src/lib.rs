//! Reversible logic synthesis — the reversible-synthesis level of the
//! paper's design flows (§IV).
//!
//! Three back-ends, each targeting a different cost corner:
//!
//! * [`tbs`] — transformation-based synthesis after an optimum
//!   [`embed`]ding: minimum qubits, very large T-count (Toffoli gates with
//!   many controls), exponential runtime;
//! * [`esop`] — ESOP-based synthesis (REVS): one Toffoli per product term
//!   on `n+m` lines, with a factoring parameter `p` trading extra ancilla
//!   lines for fewer T gates;
//! * [`hierarchical`] — XMG-driven structural synthesis: one ancilla per
//!   gate (Bennett cleanup or eager cleanup), lowest T-count, most qubits,
//!   scales to hundreds of input bits.
//!
//! [`resynth`] re-enters the first two (plus an affine recognizer) on the
//! small window permutations extracted by `qda_rev::resynth`, turning the
//! synthesis portfolio into a beyond-peephole circuit optimizer.
//!
//! # Example
//!
//! Transformation-based synthesis of a CNOT, given as a permutation:
//!
//! ```
//! use qda_revsynth::{transformation_based_synthesis, TbsDirection};
//!
//! // x1 ^= x0, tabulated over two lines.
//! let perm = vec![0b00, 0b11, 0b10, 0b01];
//! let circuit = transformation_based_synthesis(&perm, TbsDirection::Unidirectional);
//! assert_eq!(circuit.num_gates(), 1); // TBS finds the single CNOT
//! for (x, &y) in perm.iter().enumerate() {
//!     assert_eq!(circuit.simulate_u64(x as u64), y);
//! }
//! ```

pub mod embed;
pub mod esop;
pub mod hierarchical;
pub mod resynth;
pub mod tbs;

pub use embed::{bennett_embedding, minimum_additional_lines, optimum_embedding, Embedding};
pub use esop::{synthesize_esop, EsopSynthOptions};
pub use hierarchical::{synthesize_xmg, CleanupStrategy, HierarchicalOptions};
pub use resynth::{
    default_window_synthesizers, resynthesize_circuit, resynthesize_circuit_checked,
    EsopWindowSynth, LinearWindowSynth, TbsWindowSynth,
};
pub use tbs::{transformation_based_synthesis, TbsDirection};
