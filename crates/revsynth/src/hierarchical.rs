//! Hierarchical (structural) reversible synthesis from XMGs — the paper's
//! scalable third flow (§IV-C).
//!
//! Every XMG gate is computed onto an ancilla line:
//!
//! * XOR gates cost only CNOTs (zero T) and can be applied **in place**
//!   when an operand value is no longer needed — both advantages the paper
//!   cites for the XMG representation;
//! * MAJ gates cost exactly one Toffoli via the conjugation identity
//!   `maj(a,b,c) = a ⊕ ((a⊕b) ∧ (a⊕c))`;
//! * AND/OR (MAJ with a constant operand) cost one Toffoli.
//!
//! Cleanup strategies mirror REVS' "different strategies for cleaning up
//! intermediate calculations and re-using the qubits that have been freed
//! up":
//!
//! * [`CleanupStrategy::Bennett`] — compute everything, copy the outputs,
//!   uncompute everything (clean ancillae, inputs preserved);
//! * [`CleanupStrategy::PerOutput`] — compute one output cone at a time and
//!   uncompute it before the next (fewer simultaneous lines, recomputation
//!   cost for shared logic);
//! * [`CleanupStrategy::KeepGarbage`] — no uncomputation (cheapest gates,
//!   dirty ancillae).

use qda_logic::aig::Lit;
use qda_logic::xmg::{Xmg, XmgNode};
use qda_rev::circuit::{Circuit, LineAllocator};
use qda_rev::gate::{Control, Gate};

/// Ancilla cleanup policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CleanupStrategy {
    /// Whole-network Bennett compute–copy–uncompute.
    Bennett,
    /// Per-output compute–copy–uncompute (qubit reuse across cones).
    PerOutput,
    /// Leave intermediate values as garbage.
    KeepGarbage,
}

/// Options for [`synthesize_xmg`].
#[derive(Clone, Copy, Debug)]
pub struct HierarchicalOptions {
    /// Cleanup policy.
    pub strategy: CleanupStrategy,
    /// Allow XOR gates to overwrite a dying operand line instead of
    /// allocating a fresh ancilla.
    pub inplace_xor: bool,
}

impl Default for HierarchicalOptions {
    fn default() -> Self {
        Self {
            strategy: CleanupStrategy::Bennett,
            inplace_xor: true,
        }
    }
}

/// Result of hierarchical synthesis.
#[derive(Clone, Debug)]
pub struct HierarchicalSynthesis {
    /// The synthesized circuit.
    pub circuit: Circuit,
    /// Input lines (`0..n`), preserved by the circuit.
    pub input_lines: Vec<usize>,
    /// Output lines, clean before execution, carrying the results after.
    pub output_lines: Vec<usize>,
    /// Mid-circuit ancilla release events `(line, gate_position)` from
    /// the per-output recycling strategy (empty for the others): before
    /// the gate at `gate_position`, `line` went back to the allocator
    /// and must hold |0⟩ — the contract the static lifecycle analysis
    /// checks.
    pub releases: Vec<(usize, usize)>,
}

/// Synthesizes a reversible circuit computing all XMG outputs.
///
/// Inputs arrive on lines `0..n`; outputs appear on
/// [`HierarchicalSynthesis::output_lines`]. With the Bennett and PerOutput
/// strategies all ancillae end clean and inputs are preserved.
///
/// # Example
///
/// ```
/// use qda_logic::xmg::Xmg;
/// use qda_revsynth::hierarchical::{synthesize_xmg, HierarchicalOptions};
///
/// let mut xmg = Xmg::new(2);
/// let (a, b) = (xmg.pi(0), xmg.pi(1));
/// let f = xmg.xor(a, b);
/// xmg.add_po(f);
/// let s = synthesize_xmg(&xmg, &HierarchicalOptions::default());
/// let out = s.circuit.simulate_u64(0b01);
/// assert_eq!(out >> s.output_lines[0] & 1, 1);
/// ```
pub fn synthesize_xmg(xmg: &Xmg, options: &HierarchicalOptions) -> HierarchicalSynthesis {
    match options.strategy {
        CleanupStrategy::Bennett | CleanupStrategy::KeepGarbage => {
            synthesize_whole(xmg, options, options.strategy == CleanupStrategy::Bennett)
        }
        CleanupStrategy::PerOutput => synthesize_per_output(xmg, options),
    }
}

/// Tracks where each XMG node's (positive) value lives.
struct Frame {
    /// node index → line holding its value (usize::MAX = not computed).
    line_of: Vec<usize>,
}

impl Frame {
    fn new(xmg: &Xmg) -> Self {
        let mut line_of = vec![usize::MAX; xmg.num_pis() + xmg.num_gates() + 1];
        for i in 0..xmg.num_pis() {
            line_of[i + 1] = i;
        }
        Self { line_of }
    }

    fn line(&self, node: usize) -> usize {
        let l = self.line_of[node];
        assert_ne!(l, usize::MAX, "node {node} not computed");
        l
    }
}

/// Emits gates computing `node` onto a line; returns the line and appends
/// all emitted gates to `log` (for later uncomputation).
#[allow(clippy::too_many_arguments)]
fn compute_node(
    xmg: &Xmg,
    node: usize,
    frame: &mut Frame,
    circuit: &mut Circuit,
    alloc: &mut LineAllocator,
    log: &mut Vec<Gate>,
    remaining_uses: &mut [usize],
    options: &HierarchicalOptions,
) {
    let emit = |circuit: &mut Circuit, alloc: &LineAllocator, g: Gate, log: &mut Vec<Gate>| {
        circuit.ensure_lines(alloc.high_water());
        circuit.add_gate(g.clone());
        log.push(g);
    };
    let gate = xmg.gate(node);
    match gate {
        XmgNode::Xor([a, b]) => {
            // XOR fanins are stored positive by canonicalization.
            let (la, lb) = (frame.line(a.node()), frame.line(b.node()));
            // In-place: overwrite a dying gate-operand line.
            let dying =
                |l: Lit, remaining: &[usize]| xmg.is_gate(l.node()) && remaining[l.node()] == 1;
            if options.inplace_xor && dying(a, remaining_uses) {
                emit(circuit, alloc, Gate::cnot(lb, la), log);
                frame.line_of[node] = la;
                frame.line_of[a.node()] = usize::MAX; // consumed
            } else if options.inplace_xor && dying(b, remaining_uses) {
                emit(circuit, alloc, Gate::cnot(la, lb), log);
                frame.line_of[node] = lb;
                frame.line_of[b.node()] = usize::MAX; // consumed
            } else {
                let t = alloc.alloc();
                emit(circuit, alloc, Gate::cnot(la, t), log);
                emit(circuit, alloc, Gate::cnot(lb, t), log);
                frame.line_of[node] = t;
            }
            remaining_uses[a.node()] = remaining_uses[a.node()].saturating_sub(1);
            remaining_uses[b.node()] = remaining_uses[b.node()].saturating_sub(1);
        }
        XmgNode::Maj([a, b, c]) => {
            let t = alloc.alloc();
            let consts: Vec<Lit> = [a, b, c].iter().copied().filter(|l| l.is_const()).collect();
            let vars: Vec<Lit> = [a, b, c]
                .iter()
                .copied()
                .filter(|l| !l.is_const())
                .collect();
            match consts.as_slice() {
                [] => {
                    // t ^= maj(a,b,c) via conjugation. Fold operand
                    // complements with X conjugation on their lines.
                    let lines: Vec<usize> = vars.iter().map(|l| frame.line(l.node())).collect();
                    let flips: Vec<usize> = vars
                        .iter()
                        .zip(&lines)
                        .filter(|(l, _)| l.is_complement())
                        .map(|(_, &ln)| ln)
                        .collect();
                    for &f in &flips {
                        emit(circuit, alloc, Gate::not(f), log);
                    }
                    let (la, lb, lc) = (lines[0], lines[1], lines[2]);
                    emit(circuit, alloc, Gate::cnot(la, t), log);
                    emit(circuit, alloc, Gate::cnot(la, lb), log);
                    emit(circuit, alloc, Gate::cnot(la, lc), log);
                    emit(circuit, alloc, Gate::toffoli(lb, lc, t), log);
                    emit(circuit, alloc, Gate::cnot(la, lb), log);
                    emit(circuit, alloc, Gate::cnot(la, lc), log);
                    for &f in &flips {
                        emit(circuit, alloc, Gate::not(f), log);
                    }
                }
                [k] => {
                    // AND (k = 0) or OR (k = 1) of the two variable operands.
                    let is_or = *k == Lit::TRUE;
                    let controls: Vec<Control> = vars
                        .iter()
                        .map(|l| {
                            let line = frame.line(l.node());
                            // OR(a,b) = ¬(¬a ∧ ¬b): invert control phases.
                            if l.is_complement() ^ is_or {
                                Control::negative(line)
                            } else {
                                Control::positive(line)
                            }
                        })
                        .collect();
                    emit(circuit, alloc, Gate::mct(controls, t), log);
                    if is_or {
                        emit(circuit, alloc, Gate::not(t), log);
                    }
                }
                _ => unreachable!("maj with two constants folds away"),
            }
            frame.line_of[node] = t;
            for l in vars {
                remaining_uses[l.node()] = remaining_uses[l.node()].saturating_sub(1);
            }
        }
    }
}

/// Copies the PO values onto fresh output lines.
fn copy_outputs(
    xmg: &Xmg,
    frame: &Frame,
    circuit: &mut Circuit,
    alloc: &mut LineAllocator,
    pos: &[Lit],
) -> Vec<usize> {
    let mut outs = Vec::with_capacity(pos.len());
    for po in pos {
        let t = alloc.alloc();
        circuit.ensure_lines(alloc.high_water());
        if po.is_const() {
            if *po == Lit::TRUE {
                circuit.not(t);
            }
        } else {
            let l = frame.line(po.node());
            circuit.cnot(l, t);
            if po.is_complement() {
                circuit.not(t);
            }
        }
        let _ = xmg;
        outs.push(t);
    }
    outs
}

fn synthesize_whole(
    xmg: &Xmg,
    options: &HierarchicalOptions,
    uncompute: bool,
) -> HierarchicalSynthesis {
    let n = xmg.num_pis();
    let mut circuit = Circuit::new(n);
    let mut alloc = LineAllocator::new(n);
    let mut frame = Frame::new(xmg);
    let mut log: Vec<Gate> = Vec::new();
    let mut remaining = xmg.fanout_counts();
    // With uncomputation pending, every value is used once more (by the
    // inverse pass); in-place consumption is still safe because the inverse
    // pass undoes consumption in reverse order. PO-referenced nodes must
    // never be consumed before the copy, so bump their counts.
    for po in xmg.pos() {
        remaining[po.node()] += 1;
    }
    for node in xmg.gate_indices() {
        compute_node(
            xmg,
            node,
            &mut frame,
            &mut circuit,
            &mut alloc,
            &mut log,
            &mut remaining,
            options,
        );
    }
    let output_lines = copy_outputs(xmg, &frame, &mut circuit, &mut alloc, xmg.pos());
    if uncompute {
        for g in log.iter().rev() {
            circuit.add_gate(g.clone());
        }
    }
    circuit.ensure_lines(alloc.high_water());
    HierarchicalSynthesis {
        releases: alloc.release_events().to_vec(),
        circuit,
        input_lines: (0..n).collect(),
        output_lines,
    }
}

fn synthesize_per_output(xmg: &Xmg, options: &HierarchicalOptions) -> HierarchicalSynthesis {
    let n = xmg.num_pis();
    let mut circuit = Circuit::new(n);
    let mut alloc = LineAllocator::new(n);
    // Pre-allocate output lines so they survive cone recycling.
    let output_lines = alloc.alloc_many(xmg.num_pos());
    circuit.ensure_lines(alloc.high_water());
    for (j, po) in xmg.pos().iter().enumerate() {
        // Nodes in this output's cone, topological order.
        let cone = cone_of(xmg, *po);
        let mut frame = Frame::new(xmg);
        let mut log: Vec<Gate> = Vec::new();
        // Per-cone fanout counts (uses inside the cone only), +1 for PO.
        let mut remaining = cone_fanouts(xmg, &cone);
        if !po.is_const() {
            remaining[po.node()] += 1;
        }
        let opts = HierarchicalOptions {
            // In-place XOR interacts with cross-cone reuse; keep it only
            // for Bennett where the full inverse pass restores lines.
            inplace_xor: false,
            ..*options
        };
        let mut cone_alloc_start = Vec::new();
        for &node in &cone {
            compute_node(
                xmg,
                node,
                &mut frame,
                &mut circuit,
                &mut alloc,
                &mut log,
                &mut remaining,
                &opts,
            );
            cone_alloc_start.push(frame.line_of[node]);
        }
        // Copy this output.
        if po.is_const() {
            if *po == Lit::TRUE {
                circuit.not(output_lines[j]);
            }
        } else {
            circuit.cnot(frame.line(po.node()), output_lines[j]);
            if po.is_complement() {
                circuit.not(output_lines[j]);
            }
        }
        // Uncompute the cone and recycle its lines.
        for g in log.iter().rev() {
            circuit.add_gate(g.clone());
        }
        for &node in &cone {
            let l = frame.line_of[node];
            if l != usize::MAX && l >= n {
                alloc.release_at(l, circuit.num_gates());
            }
        }
    }
    circuit.ensure_lines(alloc.high_water());
    HierarchicalSynthesis {
        releases: alloc.release_events().to_vec(),
        circuit,
        input_lines: (0..n).collect(),
        output_lines,
    }
}

/// Gate nodes in the cone of `po`, topological order.
fn cone_of(xmg: &Xmg, po: Lit) -> Vec<usize> {
    let mut in_cone = vec![false; xmg.num_pis() + xmg.num_gates() + 1];
    let mut stack = vec![po.node()];
    while let Some(v) = stack.pop() {
        if in_cone[v] || !xmg.is_gate(v) {
            continue;
        }
        in_cone[v] = true;
        match xmg.gate(v) {
            XmgNode::Xor([a, b]) => {
                stack.push(a.node());
                stack.push(b.node());
            }
            XmgNode::Maj([a, b, c]) => {
                stack.push(a.node());
                stack.push(b.node());
                stack.push(c.node());
            }
        }
    }
    xmg.gate_indices().filter(|&v| in_cone[v]).collect()
}

/// Fanout counts restricted to uses inside `cone`.
fn cone_fanouts(xmg: &Xmg, cone: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; xmg.num_pis() + xmg.num_gates() + 1];
    for &v in cone {
        match xmg.gate(v) {
            XmgNode::Xor([a, b]) => {
                counts[a.node()] += 1;
                counts[b.node()] += 1;
            }
            XmgNode::Maj([a, b, c]) => {
                counts[a.node()] += 1;
                counts[b.node()] += 1;
                counts[c.node()] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::equiv::{verify_computes, VerifyOptions, VerifyOutcome};

    fn sample_xmg() -> Xmg {
        let mut xmg = Xmg::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| xmg.pi(i)).collect();
        let s = xmg.xor(pis[0], pis[1]);
        let t = xmg.maj(s, pis[2], pis[3]);
        let u = xmg.and(s, !pis[3]);
        let v = xmg.or(t, u);
        let w = xmg.xor(t, v);
        xmg.add_po(v);
        xmg.add_po(!w);
        xmg
    }

    fn oracle(xmg: &Xmg) -> impl Fn(u64) -> u64 + '_ {
        move |x| xmg.eval(x)
    }

    fn verify(xmg: &Xmg, options: &HierarchicalOptions, clean: bool) -> HierarchicalSynthesis {
        let s = synthesize_xmg(xmg, options);
        let outcome = verify_computes(
            &s.circuit,
            &s.input_lines,
            &s.output_lines,
            oracle(xmg),
            &VerifyOptions {
                check_ancilla_clean: clean,
                check_inputs_preserved: clean,
                ..Default::default()
            },
        );
        assert_eq!(outcome, VerifyOutcome::Verified, "{options:?}");
        s
    }

    #[test]
    fn bennett_strategy_is_clean() {
        let xmg = sample_xmg();
        verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::Bennett,
                inplace_xor: false,
            },
            true,
        );
    }

    #[test]
    fn bennett_with_inplace_xor_is_clean_and_narrower() {
        let xmg = {
            // XOR-heavy network benefits from in-place application.
            let mut x = Xmg::new(5);
            let pis: Vec<Lit> = (0..5).map(|i| x.pi(i)).collect();
            let mut acc = x.xor(pis[0], pis[1]);
            for &p in &pis[2..] {
                acc = x.xor(acc, p);
            }
            let m = x.maj(acc, pis[0], pis[4]);
            x.add_po(m);
            x
        };
        let wide = verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::Bennett,
                inplace_xor: false,
            },
            true,
        );
        let narrow = verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::Bennett,
                inplace_xor: true,
            },
            true,
        );
        assert!(
            narrow.circuit.num_lines() < wide.circuit.num_lines(),
            "narrow {} wide {}",
            narrow.circuit.num_lines(),
            wide.circuit.num_lines()
        );
    }

    #[test]
    fn per_output_strategy_reuses_lines() {
        let xmg = sample_xmg();
        let bennett = verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::Bennett,
                inplace_xor: false,
            },
            true,
        );
        let per_output = verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::PerOutput,
                inplace_xor: false,
            },
            true,
        );
        // Per-output recycles cone ancillae; for multi-output networks with
        // small cones it needs no more lines than Bennett.
        assert!(per_output.circuit.num_lines() <= bennett.circuit.num_lines());
        // …at the price of recomputation (≥ gates).
        assert!(per_output.circuit.num_gates() >= bennett.circuit.num_gates());
    }

    #[test]
    fn keep_garbage_is_functional_but_dirty() {
        let xmg = sample_xmg();
        let s = verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::KeepGarbage,
                inplace_xor: false,
            },
            false,
        );
        let bennett = verify(
            &xmg,
            &HierarchicalOptions {
                strategy: CleanupStrategy::Bennett,
                inplace_xor: false,
            },
            true,
        );
        assert!(s.circuit.num_gates() < bennett.circuit.num_gates());
    }

    #[test]
    fn maj_with_complemented_operands() {
        let mut xmg = Xmg::new(3);
        let (a, b, c) = (xmg.pi(0), xmg.pi(1), xmg.pi(2));
        let m = xmg.maj(!a, b, c);
        xmg.add_po(m);
        verify(&xmg, &HierarchicalOptions::default(), true);
    }

    #[test]
    fn constant_outputs_and_passthrough() {
        let mut xmg = Xmg::new(2);
        let a = xmg.pi(0);
        xmg.add_po(Lit::TRUE);
        xmg.add_po(Lit::FALSE);
        xmg.add_po(a);
        xmg.add_po(!a);
        verify(&xmg, &HierarchicalOptions::default(), true);
    }

    #[test]
    fn t_count_comes_from_majs_only() {
        let mut xmg = Xmg::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| xmg.pi(i)).collect();
        let x1 = xmg.xor(pis[0], pis[1]);
        let x2 = xmg.xor(x1, pis[2]);
        let x3 = xmg.xor(x2, pis[3]);
        xmg.add_po(x3);
        let s = verify(&xmg, &HierarchicalOptions::default(), true);
        // Pure-XOR network: zero T gates.
        assert_eq!(s.circuit.cost().t_count, 0);
    }
}
