//! Re-entrant synthesis on window permutations: the back-ends that power
//! the [`qda_rev::resynth`] pass.
//!
//! The pass hands each extracted window to every registered
//! [`WindowSynthesizer`] and keeps the cheapest *simulation-verified*
//! candidate, so the back-ends here optimize for different shapes of
//! window and none of them has to be complete:
//!
//! * [`LinearWindowSynth`] — recognizes affine permutations
//!   `x ↦ Mx ⊕ c` over GF(2) and factors `M` into CNOTs by Gaussian
//!   elimination (plus NOTs for `c`). CNOT and NOT are T-free, so this is
//!   the big win on the XOR-heavy windows hierarchical synthesis leaves
//!   behind.
//! * [`EsopWindowSynth`] — writes each modified line `t` as
//!   `x_t ^= g_t(x)` with `g_t = out_t ⊕ x_t`, covers every `g_t` with a
//!   PSDKRO-minimized ESOP, and emits one MPMCT gate per cube. Lines are
//!   ordered by a dependency toposort so every gate still reads *input*
//!   values; windows whose dependency digraph is cyclic (or where `g_t`
//!   reads `x_t` itself) are out of scope and yield `None`.
//! * [`TbsWindowSynth`] — bidirectional transformation-based synthesis
//!   ([`crate::tbs`]): complete (never returns `None`), minimum lines,
//!   but emits full-control Toffolis, so it usually only wins on tiny or
//!   pathological windows.
//!
//! [`resynthesize_circuit`] / [`resynthesize_circuit_checked`] bundle the
//! three into the standard portfolio the flows in `qda-core` use.

use crate::tbs::{transformation_based_synthesis, TbsDirection};
use qda_logic::cube::Cube;
use qda_logic::esop::Esop;
use qda_logic::tt::TruthTable;
use qda_rev::circuit::Circuit;
use qda_rev::gate::{Control, Gate};
use qda_rev::opt::OptMismatch;
use qda_rev::resynth::{
    resynthesize, resynthesize_checked, ResynthOptions, Resynthesized, WindowSynthesizer,
};

/// Number of lines of an explicit window permutation.
fn perm_lines(perm: &[u64]) -> usize {
    debug_assert!(perm.len().is_power_of_two());
    perm.len().trailing_zeros() as usize
}

/// Transformation-based synthesis as a window back-end. Complete, but
/// emits full-control transposition gates, so its candidates mostly win
/// where the window is close to a few transpositions.
pub struct TbsWindowSynth;

impl WindowSynthesizer for TbsWindowSynth {
    fn name(&self) -> &str {
        "tbs"
    }

    fn synthesize(&self, perm: &[u64]) -> Option<Circuit> {
        Some(transformation_based_synthesis(
            perm,
            TbsDirection::Bidirectional,
        ))
    }
}

/// Affine (linear ⊕ constant) window recognizer: `x ↦ Mx ⊕ c` becomes a
/// pure CNOT/NOT cascade — zero T-count.
pub struct LinearWindowSynth;

impl WindowSynthesizer for LinearWindowSynth {
    fn name(&self) -> &str {
        "linear"
    }

    fn synthesize(&self, perm: &[u64]) -> Option<Circuit> {
        let k = perm_lines(perm);
        let c = perm[0];
        // Candidate matrix: column j is perm(e_j) ⊕ c. Rows are stored as
        // bitmasks (`rows[i]` bit `j` = M[i][j]).
        let mut rows = vec![0u64; k];
        for j in 0..k {
            let col = perm[1 << j] ^ c;
            for (i, row) in rows.iter_mut().enumerate() {
                *row |= ((col >> i) & 1) << j;
            }
        }
        // Affinity check over the whole table.
        for (x, &y) in perm.iter().enumerate() {
            let mx: u64 = rows
                .iter()
                .enumerate()
                .map(|(i, &row)| (((row & x as u64).count_ones() as u64) & 1) << i)
                .sum();
            if mx ^ c != y {
                return None;
            }
        }
        // Factor M into row operations: Gauss–Jordan to the identity
        // records E_m … E_1 M = I, so M = E_1 … E_m and the circuit must
        // apply the recorded ops in *reverse* order (the cascade composes
        // left-to-right). Row op `row i ^= row j` is CNOT(control j,
        // target i). M is invertible because perm is a permutation.
        let mut ops: Vec<(usize, usize)> = Vec::new();
        for col in 0..k {
            if (rows[col] >> col) & 1 == 0 {
                let pivot = (col + 1..k).find(|&r| (rows[r] >> col) & 1 == 1)?;
                rows[col] ^= rows[pivot];
                ops.push((col, pivot));
            }
            for r in 0..k {
                if r != col && (rows[r] >> col) & 1 == 1 {
                    rows[r] ^= rows[col];
                    ops.push((r, col));
                }
            }
        }
        let mut out = Circuit::new(k);
        for &(target, control) in ops.iter().rev() {
            out.cnot(control, target);
        }
        for t in 0..k {
            if (c >> t) & 1 == 1 {
                out.not(t);
            }
        }
        Some(out)
    }
}

/// ESOP-of-differences window back-end: one PSDKRO-minimized ESOP cover
/// per modified line, emitted in dependency order.
pub struct EsopWindowSynth;

impl WindowSynthesizer for EsopWindowSynth {
    fn name(&self) -> &str {
        "esop"
    }

    fn synthesize(&self, perm: &[u64]) -> Option<Circuit> {
        let k = perm_lines(perm);
        // g_t(x) = out_t(x) ⊕ x_t; lines with g_t ≡ 0 need no gates.
        let mut diffs: Vec<Option<TruthTable>> = Vec::with_capacity(k);
        for t in 0..k {
            let g = TruthTable::from_fn(k, |x| ((perm[x as usize] ^ x) >> t) & 1 == 1);
            if g.is_zero() {
                diffs.push(None);
            } else if g.depends_on(t) {
                // `x_t ^= g_t` cannot read its own target line.
                return None;
            } else {
                diffs.push(Some(g));
            }
        }
        let modified: Vec<usize> = (0..k).filter(|&t| diffs[t].is_some()).collect();
        // Emission order: if g_t reads line u (also modified), the gate
        // for t must run while u still holds its input value — t before
        // u. Kahn's toposort over those edges; a cycle means no straight
        // XOR schedule exists.
        let mut indegree = vec![0usize; k];
        for &t in &modified {
            let g = diffs[t].as_ref().expect("modified line has a diff");
            for &u in &modified {
                if u != t && g.depends_on(u) {
                    indegree[u] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = modified
            .iter()
            .copied()
            .filter(|&t| indegree[t] == 0)
            .collect();
        let mut order = Vec::with_capacity(modified.len());
        while let Some(t) = ready.pop() {
            order.push(t);
            let g = diffs[t].as_ref().expect("modified line has a diff");
            for &u in &modified {
                if u != t && g.depends_on(u) {
                    indegree[u] -= 1;
                    if indegree[u] == 0 {
                        ready.push(u);
                    }
                }
            }
        }
        if order.len() != modified.len() {
            return None; // cyclic dependencies
        }
        let mut out = Circuit::new(k);
        for &t in &order {
            let g = diffs[t].as_ref().expect("modified line has a diff");
            let mut esop = Esop::from_cubes(k, psdkro_cover(g));
            esop.reduce();
            for cube in esop.cubes() {
                let controls: Vec<Control> = cube
                    .literals()
                    .map(|(var, positive)| {
                        if positive {
                            Control::positive(var)
                        } else {
                            Control::negative(var)
                        }
                    })
                    .collect();
                out.add_gate(Gate::mct(controls, t));
            }
        }
        Some(out)
    }
}

/// Exact pseudo-Kronecker (PSDKRO) ESOP cover: at every support variable
/// try all three expansions — positive Davio `f = f0 ⊕ x·∂f`, negative
/// Davio `f = f1 ⊕ x̄·∂f`, Shannon `f = x̄·f0 ⊕ x·f1` — and keep the
/// smallest cover. 3^k nodes for k support variables; windows cap k at 8,
/// so the whole search stays tiny.
fn psdkro_cover(f: &TruthTable) -> Vec<Cube> {
    if f.is_zero() {
        return Vec::new();
    }
    if f.is_one() {
        return vec![Cube::tautology()];
    }
    let var = *f.support().first().expect("non-constant ⇒ support");
    let f0 = f.cofactor(var, false);
    let f1 = f.cofactor(var, true);
    let df = &f0 ^ &f1;
    let with = |cubes: Vec<Cube>, positive: bool| -> Vec<Cube> {
        cubes
            .into_iter()
            .map(|c| c.with_literal(var, positive))
            .collect()
    };
    let (c0, c1, cd) = (psdkro_cover(&f0), psdkro_cover(&f1), psdkro_cover(&df));
    let pos_davio: Vec<Cube> = c0.iter().copied().chain(with(cd.clone(), true)).collect();
    let neg_davio: Vec<Cube> = c1.iter().copied().chain(with(cd, false)).collect();
    let shannon: Vec<Cube> = with(c0, false).into_iter().chain(with(c1, true)).collect();
    [pos_davio, neg_davio, shannon]
        .into_iter()
        .min_by_key(|c| {
            (
                c.len(),
                c.iter().map(qda_logic::Cube::num_literals).sum::<usize>(),
            )
        })
        .expect("three candidates")
}

/// The standard back-end portfolio, cheapest-first: affine recognizer,
/// ESOP-of-differences, then TBS as the complete fallback.
pub fn default_window_synthesizers() -> [&'static dyn WindowSynthesizer; 3] {
    [&LinearWindowSynth, &EsopWindowSynth, &TbsWindowSynth]
}

/// Runs [`qda_rev::resynth::resynthesize`] with the
/// [`default_window_synthesizers`] portfolio.
pub fn resynthesize_circuit(circuit: &Circuit, options: &ResynthOptions) -> Resynthesized {
    resynthesize(circuit, options, &default_window_synthesizers())
}

/// Runs [`qda_rev::resynth::resynthesize_checked`] (whole-circuit
/// equivalence gate included) with the [`default_window_synthesizers`]
/// portfolio.
///
/// # Errors
///
/// Returns the witness when the rewritten circuit diverges from the
/// input.
pub fn resynthesize_circuit_checked(
    circuit: &Circuit,
    options: &ResynthOptions,
) -> Result<Resynthesized, OptMismatch> {
    resynthesize_checked(circuit, options, &default_window_synthesizers())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permutation_of(c: &Circuit) -> Vec<u64> {
        c.permutation().expect("test windows are narrow")
    }

    fn check_realizes(synth: &dyn WindowSynthesizer, perm: &[u64]) -> Circuit {
        let c = synth
            .synthesize(perm)
            .unwrap_or_else(|| panic!("{} should handle this window", synth.name()));
        assert_eq!(c.num_lines(), perm_lines(perm));
        for (x, &y) in perm.iter().enumerate() {
            assert_eq!(c.simulate_u64(x as u64), y, "{} diverges", synth.name());
        }
        c
    }

    #[test]
    fn linear_recognizes_a_cnot_cascade() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(2, 0);
        c.not(1);
        let out = check_realizes(&LinearWindowSynth, &permutation_of(&c));
        assert_eq!(out.cost().t_count, 0);
    }

    #[test]
    fn linear_rejects_a_toffoli() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        assert!(LinearWindowSynth.synthesize(&permutation_of(&c)).is_none());
    }

    #[test]
    fn esop_compresses_shared_products() {
        // (ab⊕a⊕b) on line 2 = ¬a¬b ⊕ 1: 3 naive gates, 2 after PSDKRO.
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        c.cnot(0, 2);
        c.cnot(1, 2);
        let out = check_realizes(&EsopWindowSynth, &permutation_of(&c));
        assert_eq!(out.num_gates(), 2);
    }

    #[test]
    fn esop_orders_dependent_targets() {
        // b ^= a, then c ^= a·b(old): the diff for line 2 reads line 1's
        // *input*, so the toposort must emit line 2's gates first.
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        c.cnot(0, 1);
        check_realizes(&EsopWindowSynth, &permutation_of(&c));
    }

    #[test]
    fn esop_declines_swaps() {
        // A swap's diffs each read their own target line: out of scope.
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert!(EsopWindowSynth.synthesize(&permutation_of(&c)).is_none());
    }

    #[test]
    fn tbs_is_complete_on_random_windows() {
        let mut perm: Vec<u64> = (0..16).collect();
        perm.swap(3, 11);
        perm.swap(0, 7);
        perm.swap(5, 6);
        check_realizes(&TbsWindowSynth, &perm);
    }

    #[test]
    fn the_portfolio_reduces_a_naive_xor_cascade() {
        // Toffoli-encoded linear function: the affine route collapses it
        // to T-free CNOTs and the pass accepts the strict improvement.
        let mut c = Circuit::new(4);
        c.cnot(0, 3);
        c.cnot(1, 3);
        c.cnot(0, 3);
        c.toffoli(0, 1, 2);
        c.toffoli(0, 1, 2);
        let out = resynthesize_circuit_checked(&c, &ResynthOptions::default()).unwrap();
        assert!(out.stats.windows_accepted >= 1);
        assert_eq!(out.circuit.cost().t_count, 0);
        assert!(out.circuit.num_gates() < c.num_gates());
        assert_eq!(out.stats.candidates_unsound, 0);
    }
}
