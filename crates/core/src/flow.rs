//! The three design flows of the paper (§IV, Fig. 1).
//!
//! Every flow implements [`Flow`]: Verilog in, verified reversible circuit
//! plus cost figures out. The flows share the front of the pipeline
//! (parse → elaborate → AIG optimization) and diverge at the
//! representation handed to reversible synthesis:
//!
//! | flow | interface | back-end | cost profile |
//! |------|-----------|----------|--------------|
//! | [`FunctionalFlow`] | BDD | optimum embedding + TBS | min qubits, huge T |
//! | [`EsopFlow`] | ESOP | REVS ESOP mode (`p`) | `2n(+p)` qubits, mid T |
//! | [`HierarchicalFlow`] | XMG | REVS hierarchical | many qubits, min T |
//!
//! The shared front end is reified as [`FrontendArtifacts`] so design space
//! exploration can compute it **once per design** and hand the optimized
//! AIG to every flow ([`Flow::run_with_frontend`]); a [`FrontendCache`]
//! memoizes it across flows and worker threads. [`Flow::run`] remains the
//! self-contained entry point (it computes its own front end).
//!
//! The back of the pipeline is shared too: every flow routes its raw
//! synthesis output through the post-synthesis peephole optimizer
//! (`qda_rev::opt`, the `post_opt` flag, default on) and optionally the
//! windowed resynthesis pass (`qda_rev::resynth`, the `post_resynth`
//! flag — default off, on for the hierarchical flow whose Bennett
//! cascades carry the beyond-peephole redundancy it targets) before
//! costing and verification. Each pass is equivalence-checked against
//! its input circuit by batch simulation, so a bad rewrite fails the
//! flow ([`FlowError::PostOptUnsound`] / [`FlowError::ResynthUnsound`])
//! instead of skewing the tables. The optimizer runs with the flow's
//! zero-line assumption (ancillae start at |0⟩), unlocking the
//! constant-propagation rules, and its equivalence check is restricted
//! to exactly that state space.
//!
//! Finally the `analyze` stage (the `analyze` flag, default on) runs the
//! static linter of `qda-analyze` on every opt/resynth output — and, for
//! the hierarchical flow, the ancilla release discipline on the raw
//! synthesis output, where the recorded release positions are valid.
//! Warnings surface in [`FlowOutcome::analysis`]; deny-level findings
//! abort the flow with [`FlowError::AnalysisViolation`].

use crate::design::Design;
use qda_analyze::{CircuitInterface, Code, Report, Severity};
use qda_classical::collapse::{collapse_to_bdds, CollapseError};
use qda_classical::esop_extract::extract_multi_esop;
use qda_classical::exorcism::{minimize_esop, ExorcismOptions};
use qda_classical::rewrite::{optimize_aig, OptimizeOptions};
use qda_classical::xmg_map::map_to_xmg;
use qda_logic::aig::Aig;
use qda_rev::circuit::{Circuit, TooWideError};
use qda_rev::cost::CircuitCost;
use qda_rev::equiv::{verify_computes, VerifyOptions, VerifyOutcome};
use qda_rev::opt::{optimize_checked_assuming, OptMismatch, OptOptions, OptStats};
use qda_rev::resynth::{ResynthOptions, ResynthStats};
use qda_revsynth::embed::optimum_embedding;
use qda_revsynth::esop::{synthesize_esop, EsopSynthOptions};
use qda_revsynth::hierarchical::{synthesize_xmg, CleanupStrategy, HierarchicalOptions};
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};
use qda_verilog::VerilogError;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Failure of a design flow.
#[derive(Debug)]
pub enum FlowError {
    /// The Verilog frontend failed.
    Frontend(VerilogError),
    /// BDD collapse exceeded its budget.
    Collapse(CollapseError),
    /// The instance is too large for this flow (e.g. explicit TBS beyond
    /// 25 lines).
    TooLarge {
        /// Explanation.
        reason: String,
    },
    /// The circuit (or its embedded permutation) is wider than an
    /// explicit-permutation stage can enumerate. Carries the typed
    /// [`TooWideError`] the simulation layer reports, so callers can
    /// route the instance to sampled verification instead of aborting.
    CircuitTooWide {
        /// The offending width and the cap that rejected it.
        error: TooWideError,
    },
    /// The synthesized circuit failed verification — a synthesis bug.
    VerificationFailed {
        /// The failing outcome.
        outcome: VerifyOutcome,
    },
    /// The post-synthesis optimizer changed the circuit function — an
    /// optimizer bug, caught by the batch-simulation equivalence check
    /// before the rewritten circuit could be costed or reported.
    PostOptUnsound {
        /// The witness state and the two diverging end states.
        witness: OptMismatch,
    },
    /// The windowed resynthesis pass changed the circuit function — a
    /// back-end or splice bug, caught by the whole-circuit equivalence
    /// gate of `qda_rev::resynth::resynthesize_checked`.
    ResynthUnsound {
        /// The witness state and the two diverging end states.
        witness: OptMismatch,
    },
    /// The static analyzer proved a contract violation (dirty ancilla,
    /// use-after-release, malformed structure, ...) in the circuit the
    /// flow was about to report.
    AnalysisViolation {
        /// The full analysis report; at least one deny-level diagnostic.
        report: Report,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Frontend(e) => write!(f, "frontend: {e}"),
            FlowError::Collapse(e) => write!(f, "collapse: {e}"),
            FlowError::TooLarge { reason } => write!(f, "instance too large: {reason}"),
            FlowError::CircuitTooWide { error } => write!(f, "instance too wide: {error}"),
            FlowError::VerificationFailed { outcome } => {
                write!(f, "verification failed: {outcome:?}")
            }
            FlowError::PostOptUnsound { witness } => {
                write!(f, "post-synthesis optimization unsound: {witness}")
            }
            FlowError::ResynthUnsound { witness } => {
                write!(f, "windowed resynthesis unsound: {witness}")
            }
            FlowError::AnalysisViolation { report } => {
                let denials: Vec<String> = report
                    .denials()
                    .map(std::string::ToString::to_string)
                    .collect();
                write!(f, "static analysis violation: {}", denials.join("; "))
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<VerilogError> for FlowError {
    fn from(e: VerilogError) -> Self {
        FlowError::Frontend(e)
    }
}

impl From<CollapseError> for FlowError {
    fn from(e: CollapseError) -> Self {
        FlowError::Collapse(e)
    }
}

impl From<TooWideError> for FlowError {
    fn from(error: TooWideError) -> Self {
        FlowError::CircuitTooWide { error }
    }
}

/// Wall-clock breakdown of one flow run, stage by stage.
///
/// The first two stages are the shared front end; when the run consumed a
/// cached [`FrontendArtifacts`], they report the time the front end took
/// when it was *computed*, so the breakdown of a cached run matches a
/// cold run of the same flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Verilog parse + elaboration into an AIG.
    pub parse_elaborate: Duration,
    /// AIG optimization (`dc2` stand-in).
    pub optimize: Duration,
    /// Flow-specific synthesis (collapse/exorcism/mapping + reversible
    /// synthesis).
    pub synthesis: Duration,
    /// Post-synthesis peephole optimization of the MPMCT circuit,
    /// including its batch-simulation soundness check (zero when the
    /// flow ran with `post_opt` off).
    pub post_opt: Duration,
    /// Windowed resynthesis of the MPMCT circuit, including its
    /// per-splice and whole-circuit soundness checks (zero when the flow
    /// ran with `post_resynth` off).
    pub resynth: Duration,
    /// Static analysis of the final circuit (plus the release-discipline
    /// check of the raw synthesis output, when the back end recorded
    /// release events). Zero when the flow ran with `analyze` off.
    pub analyze: Duration,
    /// Equivalence check of the synthesized circuit (bit-parallel batch
    /// simulation against the golden AIG).
    pub verification: Duration,
}

impl StageTimings {
    /// Sum of all stages — the flow's total runtime.
    pub fn total(&self) -> Duration {
        self.parse_elaborate
            + self.optimize
            + self.synthesis
            + self.post_opt
            + self.resynth
            + self.analyze
            + self.verification
    }
}

/// Result of running a flow on a design: the paper's per-row data
/// (qubits, T-count, runtime) plus the circuit itself.
#[derive(Clone, Debug)]
pub struct FlowOutcome {
    /// The design that was synthesized.
    pub design: Design,
    /// Name of the flow that produced this outcome.
    pub flow_name: String,
    /// The synthesized reversible circuit.
    pub circuit: Circuit,
    /// Lines carrying the inputs.
    pub input_lines: Vec<usize>,
    /// Lines carrying the outputs after execution.
    pub output_lines: Vec<usize>,
    /// Cost summary (qubits, T-count, gate counts).
    pub cost: CircuitCost,
    /// Per-rule rewrite counts of the post-synthesis optimizer (`None`
    /// when the flow ran with `post_opt` off).
    pub opt_stats: Option<OptStats>,
    /// Per-window accounting of the resynthesis pass (`None` when the
    /// flow ran with `post_resynth` off).
    pub resynth_stats: Option<ResynthStats>,
    /// Static analysis report of the final circuit (`None` when the flow
    /// ran with `analyze` off). Always deny-clean: deny-level findings
    /// abort the flow with [`FlowError::AnalysisViolation`] instead.
    pub analysis: Option<Report>,
    /// Wall-clock flow runtime (sum of [`FlowOutcome::stages`]).
    pub runtime: Duration,
    /// Per-stage runtime breakdown.
    pub stages: StageTimings,
    /// Verification verdict (always a success variant; failures abort the
    /// flow with [`FlowError::VerificationFailed`]).
    pub verification: VerifyOutcome,
}

/// The shared front end of every flow: the optimized AIG of a design,
/// plus how long each front-end stage took to compute.
///
/// # Example
///
/// ```
/// use qda_core::design::Design;
/// use qda_core::flow::{compute_frontend, EsopFlow, Flow};
/// use qda_classical::rewrite::OptimizeOptions;
///
/// let design = Design::intdiv(5);
/// let frontend = compute_frontend(&design, &OptimizeOptions::default())?;
/// let flow = EsopFlow::with_factoring(0);
/// let outcome = flow.run_with_frontend(&design, &frontend)?;
/// assert_eq!(outcome.cost.qubits, 10);
/// # Ok::<(), qda_core::flow::FlowError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FrontendArtifacts {
    /// The optimized AIG every flow consumes.
    pub aig: Aig,
    /// Time spent parsing + elaborating the Verilog.
    pub parse_elaborate: Duration,
    /// Time spent optimizing the AIG.
    pub optimize: Duration,
}

/// Runs the shared front end (parse → elaborate → AIG optimization) on a
/// design.
///
/// # Errors
///
/// Propagates Verilog parser/elaborator failures as
/// [`FlowError::Frontend`].
pub fn compute_frontend(
    design: &Design,
    options: &OptimizeOptions,
) -> Result<FrontendArtifacts, FlowError> {
    let start = Instant::now();
    let aig = design.to_aig()?;
    let parse_elaborate = start.elapsed();
    let start = Instant::now();
    let aig = optimize_aig(&aig, options);
    let optimize = start.elapsed();
    Ok(FrontendArtifacts {
        aig,
        parse_elaborate,
        optimize,
    })
}

/// One cache slot: a per-key lock around the (eventually) computed
/// artifacts, so concurrent misses coalesce instead of duplicating work.
type CacheSlot = Arc<Mutex<Option<Arc<FrontendArtifacts>>>>;

/// Locks a cache mutex, recovering from poisoning.
///
/// A panic inside [`compute_frontend`] (e.g. a generator assertion on a
/// hostile parameter) unwinds while the slot guard is held and poisons
/// the mutex. The protected state is still consistent — a slot is only
/// ever written on *successful* computation, so a poisoned slot simply
/// holds `None` — which makes recovery safe: take the inner value and
/// treat the slot as vacant. Without this, one bad design would
/// permanently brick every subsequent `get_or_compute`/`len` call on a
/// shared cache (fatal for a long-running server).
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Memoizes [`FrontendArtifacts`] per (design, optimization options), so
/// a flow×design matrix runs the front end once per design instead of
/// once per flow. Shareable across threads (`&FrontendCache` is enough).
#[derive(Debug, Default)]
pub struct FrontendCache {
    entries: Mutex<HashMap<(Design, OptimizeOptions), CacheSlot>>,
}

impl FrontendCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached front end for the design, computing it on a
    /// miss. Each key is computed at most once at a time: a concurrent
    /// miss blocks on the first computation and then shares its result,
    /// so worker threads never duplicate a front end.
    ///
    /// A panic during computation (a hostile design parameter tripping a
    /// generator assertion) propagates to the caller but does **not**
    /// damage the cache: the poisoned slot is recovered as vacant on the
    /// next access and recomputed, so one bad request cannot take a
    /// shared cache down with it.
    ///
    /// # Errors
    ///
    /// Propagates [`compute_frontend`] failures (not cached — a frontend
    /// failure is a generator bug, not a steady state).
    pub fn get_or_compute(
        &self,
        design: &Design,
        options: &OptimizeOptions,
    ) -> Result<Arc<FrontendArtifacts>, FlowError> {
        let slot: CacheSlot = {
            let mut entries = lock_recovering(&self.entries);
            Arc::clone(entries.entry((*design, *options)).or_default())
        };
        let mut guard = lock_recovering(&slot);
        if let Some(hit) = guard.as_ref() {
            return Ok(Arc::clone(hit));
        }
        let computed = Arc::new(compute_frontend(design, options)?);
        *guard = Some(Arc::clone(&computed));
        Ok(computed)
    }

    /// Number of computed front ends in the cache.
    pub fn len(&self) -> usize {
        lock_recovering(&self.entries)
            .values()
            .filter(|slot| lock_recovering(slot).is_some())
            .count()
    }

    /// Whether no front end has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-run resource budget: result-size caps plus a wall-clock deadline.
///
/// The flow stages themselves stay budget-oblivious; a serving shell
/// checks the budget at the stage boundaries it controls
/// ([`FlowBudget::expired`] before spending work, [`FlowBudget::check_cost`]
/// on the synthesized circuit), which keeps cancellation cooperative — a
/// job is abandoned between stages instead of tearing threads down
/// mid-rewrite.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowBudget {
    /// Reject results with more gates than this.
    pub max_gates: Option<u64>,
    /// Reject results with more circuit lines than this.
    pub max_qubits: Option<u64>,
    /// Abandon the run once this instant passes.
    pub deadline: Option<Instant>,
}

impl FlowBudget {
    /// A budget with no limits (every check passes).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            deadline: Instant::now().checked_add(timeout),
            ..Self::default()
        }
    }

    /// Whether the deadline has passed. Checked between stages by budget-
    /// aware drivers, so an over-deadline job stops consuming CPU at the
    /// next stage boundary.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Checks a synthesized circuit's cost against the size caps.
    ///
    /// # Errors
    ///
    /// Returns the first violated cap.
    pub fn check_cost(&self, cost: &CircuitCost) -> Result<(), BudgetViolation> {
        if let Some(limit) = self.max_qubits {
            if cost.qubits as u64 > limit {
                return Err(BudgetViolation {
                    resource: BudgetResource::Qubits,
                    used: cost.qubits as u64,
                    limit,
                });
            }
        }
        if let Some(limit) = self.max_gates {
            if cost.gates as u64 > limit {
                return Err(BudgetViolation {
                    resource: BudgetResource::Gates,
                    used: cost.gates as u64,
                    limit,
                });
            }
        }
        Ok(())
    }
}

/// The resource dimension a [`BudgetViolation`] names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetResource {
    /// Gate count of the synthesized circuit.
    Gates,
    /// Line count of the synthesized circuit.
    Qubits,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Gates => write!(f, "gates"),
            BudgetResource::Qubits => write!(f, "qubits"),
        }
    }
}

/// A [`FlowBudget`] cap that a run's result exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetViolation {
    /// Which cap was violated.
    pub resource: BudgetResource,
    /// The measured value.
    pub used: u64,
    /// The configured cap.
    pub limit: u64,
}

impl fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "result uses {} {} but the budget allows {}",
            self.used, self.resource, self.limit
        )
    }
}

impl std::error::Error for BudgetViolation {}

/// A design flow: Verilog design in, verified reversible circuit out.
///
/// `Send + Sync` so a set of flows can be dispatched across worker
/// threads (the implementations are plain option structs).
pub trait Flow: Send + Sync {
    /// Human-readable flow name (used in reports).
    fn name(&self) -> String;

    /// The AIG optimization options this flow wants the shared front end
    /// run with (used as the [`FrontendCache`] key).
    fn frontend_options(&self) -> OptimizeOptions;

    /// Cheap feasibility check, run before any front-end work is spent on
    /// the design (e.g. the explicit-permutation size guard of
    /// [`FunctionalFlow`]). The default accepts everything.
    ///
    /// # Errors
    ///
    /// Returns the same [`FlowError`] a full run would fail with.
    fn precheck(&self, design: &Design) -> Result<(), FlowError> {
        let _ = design;
        Ok(())
    }

    /// Runs the back half of the flow on a precomputed front end.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the design cannot be processed
    /// (resource blow-up) or the result fails verification.
    fn run_with_frontend(
        &self,
        design: &Design,
        frontend: &FrontendArtifacts,
    ) -> Result<FlowOutcome, FlowError>;

    /// Runs the full flow, computing its own front end.
    ///
    /// # Errors
    ///
    /// As [`Flow::run_with_frontend`], plus front-end failures.
    fn run(&self, design: &Design) -> Result<FlowOutcome, FlowError> {
        self.precheck(design)?;
        let frontend = compute_frontend(design, &self.frontend_options())?;
        self.run_with_frontend(design, &frontend)
    }

    /// A copy of this flow with both post-synthesis passes (`post_opt`,
    /// `post_resynth`) turned off — the raw configuration portfolio
    /// exploration starts from, so the refinement combinations can be
    /// applied (and raced) on the one raw synthesis result instead of
    /// re-running synthesis per configuration. `None` (the default)
    /// excludes the flow from portfolio exploration.
    fn raw_variant(&self) -> Option<Box<dyn Flow>> {
        None
    }
}

/// Optimizes (when requested), statically analyzes, and verifies a
/// circuit against the design AIG, then assembles the outcome.
#[allow(clippy::too_many_arguments)]
fn finish(
    design: &Design,
    flow_name: String,
    circuit: Circuit,
    input_lines: Vec<usize>,
    output_lines: Vec<usize>,
    frontend: &FrontendArtifacts,
    synthesis_start: Instant,
    check_clean: bool,
    post_opt: bool,
    post_resynth: bool,
    run_analysis: bool,
    releases: &[(usize, usize)],
) -> Result<FlowOutcome, FlowError> {
    let synthesis = synthesis_start.elapsed();
    // The contract every back-half stage works against: non-input lines
    // start at |0⟩; ancillae must end clean when the flow says so.
    let interface = CircuitInterface::hierarchical(
        circuit.num_lines(),
        input_lines.clone(),
        output_lines.clone(),
        check_clean,
    );
    let mut analyze_time = Duration::ZERO;
    // Ancilla release discipline is checked on the *raw* synthesis
    // output: the recorded release positions index its gate list, which
    // opt/resynth would invalidate.
    let mut release_diags = Vec::new();
    if run_analysis && !releases.is_empty() {
        let start = Instant::now();
        let raw_iface = interface.clone().with_releases(releases.to_vec());
        let raw_report = qda_analyze::analyze(&circuit, &raw_iface);
        release_diags = raw_report
            .diagnostics
            .into_iter()
            .filter(|d| matches!(d.code, Code::UseAfterRelease | Code::ReleaseOfLive))
            .collect();
        analyze_time += start.elapsed();
    }
    // Post-synthesis peephole optimization, run under the |0⟩-start
    // assumption so the constant-propagation rules fire. Every run is
    // equivalence-checked against the raw synthesis output by batch
    // simulation over exactly the assumed state space, so an optimizer
    // bug aborts the flow with a witness instead of corrupting the
    // report.
    let (circuit, opt_stats, post_opt_time) = if post_opt {
        let start = Instant::now();
        match optimize_checked_assuming(&circuit, &OptOptions::default(), &interface.zero_lines()) {
            Ok(optimized) => (optimized.circuit, Some(optimized.stats), start.elapsed()),
            Err(witness) => return Err(FlowError::PostOptUnsound { witness }),
        }
    } else {
        (circuit, None, Duration::ZERO)
    };
    // Windowed resynthesis, under the same contract: the whole rewritten
    // circuit is equivalence-checked against its input before costing.
    let (circuit, resynth_stats, resynth_time) = if post_resynth {
        let start = Instant::now();
        match qda_revsynth::resynth::resynthesize_circuit_checked(
            &circuit,
            &ResynthOptions::default(),
        ) {
            Ok(r) => (r.circuit, Some(r.stats), start.elapsed()),
            Err(witness) => return Err(FlowError::ResynthUnsound { witness }),
        }
    } else {
        (circuit, None, Duration::ZERO)
    };
    // Static analysis of the final circuit (whatever combination of
    // opt/resynth produced it). Deny-level findings are proven contract
    // violations and abort the flow; warnings and notes ride along in
    // the outcome.
    let analysis = if run_analysis {
        let start = Instant::now();
        let mut report = qda_analyze::analyze(&circuit, &interface);
        report.diagnostics.splice(0..0, release_diags);
        analyze_time += start.elapsed();
        if !report.is_clean(Severity::Deny) {
            return Err(FlowError::AnalysisViolation { report });
        }
        Some(report)
    } else {
        None
    };
    let aig = &frontend.aig;
    // The bit-parallel batch engine makes a much larger verification
    // budget affordable than the scalar replay this stage started with
    // (exhaustive_limit 11 / 128 samples); its cost shows up as the
    // `verification` entry of [`StageTimings`]. The sweep itself is
    // sharded across the shared `qda_logic::par` worker pool (so a flow
    // running inside a DSE job recruits whatever budget is idle), with
    // the verdict byte-identical to a serial sweep.
    let options = VerifyOptions {
        exhaustive_limit: 14,
        random_samples: 1024,
        batch: true,
        check_ancilla_clean: check_clean,
        check_inputs_preserved: check_clean,
    };
    let verification_start = Instant::now();
    // The simulation harness reads I/O through 64-bit registers; the
    // paper's largest instance (n = 128) exceeds that, so verification is
    // skipped there (the construction is the same as for verified sizes).
    let verification = if input_lines.len() > 64 || output_lines.len() > 64 {
        VerifyOutcome::Skipped
    } else {
        verify_computes(
            &circuit,
            &input_lines,
            &output_lines,
            |x| aig.eval(x),
            &options,
        )
    };
    if !verification.is_ok() {
        return Err(FlowError::VerificationFailed {
            outcome: verification,
        });
    }
    let stages = StageTimings {
        parse_elaborate: frontend.parse_elaborate,
        optimize: frontend.optimize,
        synthesis,
        post_opt: post_opt_time,
        resynth: resynth_time,
        analyze: analyze_time,
        verification: verification_start.elapsed(),
    };
    let cost = circuit.cost();
    Ok(FlowOutcome {
        design: *design,
        flow_name,
        circuit,
        input_lines,
        output_lines,
        cost,
        opt_stats,
        resynth_stats,
        analysis,
        runtime: stages.total(),
        stages,
        verification,
    })
}

/// Flow 1 — symbolic functional synthesis (paper §IV-A):
/// Verilog → AIG (`dc2`) → BDD (`collapse`) → optimum embedding →
/// transformation-based synthesis.
///
/// Qubit-optimal (e.g. `2n − 1` for the reciprocal) at the price of
/// many-control Toffolis and exponential runtime. Explicit permutations
/// bound the instance size; the paper's SAT-based symbolic variant pushes
/// the same algorithm to `n = 16` in 3.2 days.
#[derive(Clone, Debug)]
pub struct FunctionalFlow {
    /// AIG optimization options.
    pub optimize: OptimizeOptions,
    /// TBS direction.
    pub direction: TbsDirection,
    /// Maximum embedded line count accepted (explicit permutation guard).
    pub max_lines: usize,
    /// Run the post-synthesis peephole optimizer (default on).
    pub post_opt: bool,
    /// Run the windowed resynthesis pass (default off — TBS output is
    /// already the product of whole-permutation synthesis).
    pub post_resynth: bool,
    /// Run the static analysis stage on the final circuit (default on).
    pub analyze: bool,
}

impl Default for FunctionalFlow {
    fn default() -> Self {
        Self {
            optimize: OptimizeOptions::default(),
            direction: TbsDirection::Bidirectional,
            max_lines: 25,
            post_opt: true,
            post_resynth: false,
            analyze: true,
        }
    }
}

impl Flow for FunctionalFlow {
    fn name(&self) -> String {
        "functional (embedding + TBS)".into()
    }

    fn frontend_options(&self) -> OptimizeOptions {
        self.optimize
    }

    fn precheck(&self, design: &Design) -> Result<(), FlowError> {
        self.check_size(design)
    }

    fn raw_variant(&self) -> Option<Box<dyn Flow>> {
        Some(Box::new(Self {
            post_opt: false,
            post_resynth: false,
            ..self.clone()
        }))
    }

    fn run_with_frontend(
        &self,
        design: &Design,
        frontend: &FrontendArtifacts,
    ) -> Result<FlowOutcome, FlowError> {
        self.check_size(design)?;
        let start = Instant::now();
        let n = design.bits();
        // "collapse": the explicit truth table is the BDD's semantics; the
        // embedding enumerates it either way.
        let tts = frontend.aig.to_truth_tables();
        let embedding = optimum_embedding(&tts);
        let circuit = transformation_based_synthesis(embedding.permutation(), self.direction);
        let m = embedding.num_outputs();
        // In-place circuit: inputs on the low n lines, outputs on the low
        // m lines (our embedding convention).
        let input_lines: Vec<usize> = (0..n).collect();
        let output_lines: Vec<usize> = (0..m).collect();
        finish(
            design,
            self.name(),
            circuit,
            input_lines,
            output_lines,
            frontend,
            start,
            false,
            self.post_opt,
            self.post_resynth,
            self.analyze,
            &[],
        )
    }
}

impl FunctionalFlow {
    /// Rejects instances beyond the explicit-permutation guard before any
    /// work is spent on them.
    fn check_size(&self, design: &Design) -> Result<(), FlowError> {
        let n = design.bits();
        let lines = 2 * n - 1;
        if lines > self.max_lines {
            // The same typed error the simulation layer raises for
            // over-wide explicit permutations, surfaced as a flow error
            // instead of a process abort.
            return Err(TooWideError {
                lines,
                limit: self.max_lines,
            }
            .into());
        }
        Ok(())
    }
}

/// Flow 2 — ESOP-based synthesis with REVS (paper §IV-B):
/// Verilog → AIG → BDD → PSDKRO ESOP → exorcism → REVS ESOP mode.
#[derive(Clone, Debug)]
pub struct EsopFlow {
    /// AIG optimization options.
    pub optimize: OptimizeOptions,
    /// Exorcism minimization options.
    pub exorcism: ExorcismOptions,
    /// REVS factoring parameter `p`.
    pub synth: EsopSynthOptions,
    /// BDD node budget for the collapse step.
    pub bdd_node_limit: usize,
    /// Run the post-synthesis peephole optimizer (default on).
    pub post_opt: bool,
    /// Run the windowed resynthesis pass (default off — exorcism already
    /// minimized the cube list the gates came from).
    pub post_resynth: bool,
    /// Run the static analysis stage on the final circuit (default on).
    pub analyze: bool,
}

impl EsopFlow {
    /// Flow with the given factoring parameter `p`.
    pub fn with_factoring(p: usize) -> Self {
        Self {
            optimize: OptimizeOptions::default(),
            exorcism: ExorcismOptions::default(),
            synth: EsopSynthOptions {
                factoring_passes: p,
                min_sharers: 2,
            },
            bdd_node_limit: 2_000_000,
            post_opt: true,
            post_resynth: false,
            analyze: true,
        }
    }
}

impl Default for EsopFlow {
    fn default() -> Self {
        Self::with_factoring(0)
    }
}

impl Flow for EsopFlow {
    fn name(&self) -> String {
        format!("ESOP (REVS, p = {})", self.synth.factoring_passes)
    }

    fn frontend_options(&self) -> OptimizeOptions {
        self.optimize
    }

    fn run_with_frontend(
        &self,
        design: &Design,
        frontend: &FrontendArtifacts,
    ) -> Result<FlowOutcome, FlowError> {
        let start = Instant::now();
        let (mut mgr, bdds) = collapse_to_bdds(&frontend.aig, self.bdd_node_limit)?;
        let mut esop = extract_multi_esop(&mut mgr, &bdds);
        minimize_esop(&mut esop, &self.exorcism);
        let synthesis = synthesize_esop(&esop, &self.synth);
        finish(
            design,
            self.name(),
            synthesis.circuit,
            synthesis.input_lines,
            synthesis.output_lines,
            frontend,
            start,
            true,
            self.post_opt,
            self.post_resynth,
            self.analyze,
            &[],
        )
    }

    fn raw_variant(&self) -> Option<Box<dyn Flow>> {
        Some(Box::new(Self {
            post_opt: false,
            post_resynth: false,
            ..self.clone()
        }))
    }
}

/// Flow 3 — hierarchical synthesis (paper §IV-C):
/// Verilog → AIG → XMG (`xmglut -k 4`) → REVS hierarchical.
///
/// Scales to `n = 128`: the cost is one ancilla per XMG gate and one
/// Toffoli per MAJ; XORs are free.
#[derive(Clone, Debug)]
pub struct HierarchicalFlow {
    /// AIG optimization options.
    pub optimize: OptimizeOptions,
    /// Cleanup strategy and in-place XOR application.
    pub synth: HierarchicalOptions,
    /// Run the post-synthesis peephole optimizer (default on).
    pub post_opt: bool,
    /// Run the windowed resynthesis pass (default **on** — Bennett-style
    /// compute/copy/uncompute cascades carry exactly the bounded-support
    /// redundancy the pass targets, and the peephole catalogue cannot
    /// reach it).
    pub post_resynth: bool,
    /// Run the static analysis stage — including the release-discipline
    /// check on the raw synthesis output (default on).
    pub analyze: bool,
}

impl HierarchicalFlow {
    /// Flow with the given cleanup strategy.
    pub fn with_strategy(strategy: CleanupStrategy) -> Self {
        Self {
            optimize: OptimizeOptions::default(),
            synth: HierarchicalOptions {
                strategy,
                inplace_xor: strategy == CleanupStrategy::Bennett,
            },
            post_opt: true,
            post_resynth: true,
            analyze: true,
        }
    }
}

impl Default for HierarchicalFlow {
    fn default() -> Self {
        Self::with_strategy(CleanupStrategy::Bennett)
    }
}

impl Flow for HierarchicalFlow {
    fn name(&self) -> String {
        format!("hierarchical (XMG, {:?})", self.synth.strategy)
    }

    fn frontend_options(&self) -> OptimizeOptions {
        self.optimize
    }

    fn run_with_frontend(
        &self,
        design: &Design,
        frontend: &FrontendArtifacts,
    ) -> Result<FlowOutcome, FlowError> {
        let start = Instant::now();
        let xmg = map_to_xmg(&frontend.aig);
        let synthesis = synthesize_xmg(&xmg, &self.synth);
        let check_clean = self.synth.strategy != CleanupStrategy::KeepGarbage;
        finish(
            design,
            self.name(),
            synthesis.circuit,
            synthesis.input_lines,
            synthesis.output_lines,
            frontend,
            start,
            check_clean,
            self.post_opt,
            self.post_resynth,
            self.analyze,
            &synthesis.releases,
        )
    }

    fn raw_variant(&self) -> Option<Box<dyn Flow>> {
        Some(Box::new(Self {
            post_opt: false,
            post_resynth: false,
            ..self.clone()
        }))
    }
}

/// The static structure of Fig. 1: levels, tools and interfaces of the
/// design flows, renderable as text (regenerated by the `figure1` bench
/// binary).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowGraph;

impl fmt::Display for FlowGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design level        INTDIV(n)        NEWTON(n)")?;
        writeln!(f, "                        \\               /")?;
        writeln!(f, "                         Verilog source")?;
        writeln!(
            f,
            "logic synthesis          parse + elaborate   [qda-verilog]"
        )?;
        writeln!(
            f,
            "level                    AIG optimize (dc2)  [qda-classical]"
        )?;
        writeln!(f, "                      /        |         \\")?;
        writeln!(f, "                   collapse  exorcism   xmglut -k 4")?;
        writeln!(f, "                    BDD        ESOP        XMG")?;
        writeln!(f, "reversible          |           |           |")?;
        writeln!(
            f,
            "synthesis        embedding   REVS ESOP   REVS hierarchical"
        )?;
        writeln!(
            f,
            "level             + TBS      (p = 0,1)   (Bennett/per-output)"
        )?;
        writeln!(f, "                    |           |           |")?;
        writeln!(
            f,
            "                   peephole opt (cancel/merge/NOT-prop)  [qda-rev::opt]"
        )?;
        writeln!(
            f,
            "                   windowed resynth (TBS/ESOP/linear)    [qda-rev::resynth]"
        )?;
        writeln!(f, "                    |           |           |")?;
        writeln!(f, "quantum level     reversible circuits: qubits × T-count")?;
        writeln!(f, "                  Architecture 1 … Architecture n")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_flow_small_intdiv() {
        let outcome = FunctionalFlow::default().run(&Design::intdiv(4)).unwrap();
        // Optimum embedding: 2n − 1 qubits.
        assert_eq!(outcome.cost.qubits, 7);
        assert!(outcome.cost.t_count > 0);
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn esop_flow_uses_2n_lines_at_p0() {
        let outcome = EsopFlow::with_factoring(0).run(&Design::intdiv(5)).unwrap();
        assert_eq!(outcome.cost.qubits, 10);
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn esop_flow_p1_trades_qubits_for_t() {
        let p0 = EsopFlow::with_factoring(0).run(&Design::intdiv(6)).unwrap();
        let p1 = EsopFlow::with_factoring(1).run(&Design::intdiv(6)).unwrap();
        assert!(p1.cost.qubits >= p0.cost.qubits);
        // Factoring must never *hurt* T-count on this workload.
        assert!(p1.cost.t_count <= p0.cost.t_count);
    }

    #[test]
    fn hierarchical_flow_runs_and_verifies() {
        let outcome = HierarchicalFlow::default().run(&Design::intdiv(5)).unwrap();
        assert!(outcome.cost.qubits > 10); // ancilla per gate
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn functional_flow_rejects_large_instances() {
        let r = FunctionalFlow::default().run(&Design::intdiv(16));
        let Err(FlowError::CircuitTooWide { error }) = r else {
            panic!("expected a typed too-wide error");
        };
        assert_eq!(error.lines, 31);
        assert_eq!(error.limit, 25);
    }

    #[test]
    fn newton_design_through_esop_flow() {
        let outcome = EsopFlow::with_factoring(0).run(&Design::newton(4)).unwrap();
        assert_eq!(outcome.cost.qubits, 8);
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn frontend_cache_computes_once_per_key() {
        let cache = FrontendCache::new();
        let design = Design::intdiv(4);
        let opts = OptimizeOptions::default();
        let a = cache.get_or_compute(&design, &opts).unwrap();
        let b = cache.get_or_compute(&design, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(cache.len(), 1);
        let other = OptimizeOptions {
            rounds: 1,
            ..OptimizeOptions::default()
        };
        cache.get_or_compute(&design, &other).unwrap();
        assert_eq!(cache.len(), 2, "different options are a different key");
    }

    #[test]
    fn cache_survives_a_panicking_computation() {
        // INTDIV(1) trips the generator assertion `n must be at least 2`
        // inside compute_frontend — i.e. while the per-key slot mutex is
        // held — poisoning the slot. Before the recovery fix, every
        // subsequent get_or_compute/len call on the cache panicked via
        // `.expect("slot lock")`: one bad design bricked the shared
        // cache for good.
        let cache = FrontendCache::new();
        let opts = OptimizeOptions::default();
        let bad = Design::intdiv(1);
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = cache.get_or_compute(&bad, &opts);
            }));
            // The panic must be the generator's own assertion surfacing
            // (twice — the poisoned slot is recovered and recomputed, not
            // replaced by a "slot lock" panic).
            let payload = r.expect_err("INTDIV(1) must panic");
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default();
            assert!(
                message.contains("at least 2"),
                "unexpected panic {message:?}"
            );
        }
        // The cache still works: len() walks the poisoned slot without
        // panicking, and fresh keys compute fine.
        assert_eq!(cache.len(), 0);
        let good = cache.get_or_compute(&Design::intdiv(4), &opts).unwrap();
        assert!(good.aig.num_pis() == 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn budget_checks_cost_caps() {
        let outcome = EsopFlow::with_factoring(0).run(&Design::intdiv(4)).unwrap();
        assert!(FlowBudget::unlimited().check_cost(&outcome.cost).is_ok());
        let tight = FlowBudget {
            max_gates: Some(1),
            max_qubits: None,
            deadline: None,
        };
        let v = tight.check_cost(&outcome.cost).unwrap_err();
        assert_eq!(v.resource, BudgetResource::Gates);
        assert_eq!(v.limit, 1);
        assert!(v.to_string().contains("budget allows 1"), "{v}");
        let narrow = FlowBudget {
            max_qubits: Some(2),
            ..FlowBudget::unlimited()
        };
        let v = narrow.check_cost(&outcome.cost).unwrap_err();
        assert_eq!(v.resource, BudgetResource::Qubits);
        assert_eq!(v.used, outcome.cost.qubits as u64);
    }

    #[test]
    fn budget_deadline_expires() {
        assert!(
            !FlowBudget::unlimited().expired(),
            "no deadline never expires"
        );
        let expired = FlowBudget::with_timeout(Duration::ZERO);
        assert!(expired.expired());
        let generous = FlowBudget::with_timeout(Duration::from_secs(3600));
        assert!(!generous.expired());
    }

    #[test]
    fn cached_frontend_reproduces_cold_run() {
        let design = Design::intdiv(5);
        let flow = EsopFlow::with_factoring(0);
        let cold = flow.run(&design).unwrap();
        let frontend = compute_frontend(&design, &flow.frontend_options()).unwrap();
        let warm = flow.run_with_frontend(&design, &frontend).unwrap();
        assert_eq!(warm.circuit, cold.circuit);
        assert_eq!(warm.cost.qubits, cold.cost.qubits);
        assert_eq!(warm.cost.t_count, cold.cost.t_count);
    }

    #[test]
    fn stage_timings_sum_to_runtime() {
        let outcome = HierarchicalFlow::default().run(&Design::intdiv(4)).unwrap();
        assert_eq!(outcome.runtime, outcome.stages.total());
        assert!(outcome.stages.synthesis > Duration::ZERO);
    }

    #[test]
    fn precheck_rejects_before_frontend_work() {
        let flow = FunctionalFlow::default();
        assert!(matches!(
            flow.precheck(&Design::intdiv(16)),
            Err(FlowError::CircuitTooWide { .. })
        ));
        assert!(flow.precheck(&Design::intdiv(4)).is_ok());
        // Flows without a guard accept everything.
        assert!(HierarchicalFlow::default()
            .precheck(&Design::intdiv(128))
            .is_ok());
    }

    #[test]
    fn functional_flow_rejects_large_instances_with_frontend() {
        let design = Design::intdiv(16);
        let frontend =
            compute_frontend(&design, &OptimizeOptions::default()).expect("frontend itself is ok");
        let r = FunctionalFlow::default().run_with_frontend(&design, &frontend);
        assert!(matches!(r, Err(FlowError::CircuitTooWide { .. })));
    }

    #[test]
    fn flow_graph_renders() {
        let s = FlowGraph.to_string();
        assert!(s.contains("INTDIV"));
        assert!(s.contains("xmglut"));
        assert!(s.contains("TBS"));
        assert!(s.contains("peephole opt"));
    }

    #[test]
    fn post_opt_runs_by_default_and_reports_stats() {
        let outcome = HierarchicalFlow::default().run(&Design::intdiv(5)).unwrap();
        let stats = outcome.opt_stats.expect("post_opt defaults to on");
        assert!(stats.total_rewrites() > 0, "Bennett output has redundancy");
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn post_opt_off_keeps_the_raw_synthesis_output() {
        let design = Design::intdiv(5);
        let raw = HierarchicalFlow {
            post_opt: false,
            post_resynth: false,
            ..Default::default()
        }
        .run(&design)
        .unwrap();
        assert_eq!(raw.opt_stats, None);
        assert_eq!(raw.resynth_stats, None);
        assert_eq!(raw.stages.post_opt, Duration::ZERO);
        assert_eq!(raw.stages.resynth, Duration::ZERO);
        let opt = HierarchicalFlow::default().run(&design).unwrap();
        assert!(opt.cost.gates < raw.cost.gates, "optimizer must bite");
        assert!(opt.cost.t_count <= raw.cost.t_count);
        assert_eq!(opt.cost.qubits, raw.cost.qubits, "lines untouched");
    }

    #[test]
    fn post_resynth_defaults_on_for_hierarchical_and_reduces_further() {
        let design = Design::intdiv(5);
        let peephole_only = HierarchicalFlow {
            post_resynth: false,
            ..Default::default()
        }
        .run(&design)
        .unwrap();
        assert_eq!(peephole_only.resynth_stats, None);
        let full = HierarchicalFlow::default().run(&design).unwrap();
        let stats = full.resynth_stats.expect("post_resynth defaults to on");
        assert_eq!(
            stats.windows_attempted,
            stats.windows_accepted + stats.windows_rejected
        );
        assert_eq!(stats.candidates_unsound, 0);
        assert!(
            full.cost.gates < peephole_only.cost.gates,
            "resynthesis must bite beyond the peephole pass on Bennett output \
             ({} vs {} gates)",
            full.cost.gates,
            peephole_only.cost.gates
        );
        assert!(full.cost.t_count <= peephole_only.cost.t_count);
        assert_eq!(full.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn raw_variants_disable_both_post_passes() {
        let design = Design::intdiv(4);
        let flows: Vec<Box<dyn Flow>> = vec![
            Box::new(FunctionalFlow::default()),
            Box::new(EsopFlow::with_factoring(1)),
            Box::new(HierarchicalFlow::default()),
        ];
        for flow in flows {
            let raw = flow.raw_variant().expect("concrete flows reconfigure");
            assert_eq!(raw.name(), flow.name(), "raw variant keeps the name");
            let outcome = raw.run(&design).unwrap();
            assert_eq!(outcome.opt_stats, None, "{}", flow.name());
            assert_eq!(outcome.resynth_stats, None, "{}", flow.name());
        }
    }

    #[test]
    fn analysis_runs_by_default_and_flow_outputs_are_deny_clean() {
        let flows: Vec<Box<dyn Flow>> = vec![
            Box::new(FunctionalFlow::default()),
            Box::new(EsopFlow::with_factoring(0)),
            Box::new(HierarchicalFlow::default()),
            Box::new(HierarchicalFlow::with_strategy(CleanupStrategy::PerOutput)),
            Box::new(HierarchicalFlow::with_strategy(
                CleanupStrategy::KeepGarbage,
            )),
        ];
        for flow in flows {
            let outcome = flow.run(&Design::intdiv(4)).unwrap();
            let report = outcome.analysis.as_ref().expect("analyze defaults to on");
            assert!(
                report.is_clean(Severity::Deny),
                "{}: {}",
                outcome.flow_name,
                report.render_human()
            );
            assert!(report.metrics.depth.t_depth > 0, "{}", outcome.flow_name);
            assert!(report.metrics.t_count >= outcome.cost.t_count);
        }
    }

    #[test]
    fn analyze_off_skips_the_stage() {
        let outcome = HierarchicalFlow {
            analyze: false,
            ..Default::default()
        }
        .run(&Design::intdiv(4))
        .unwrap();
        assert!(outcome.analysis.is_none());
        assert_eq!(outcome.stages.analyze, Duration::ZERO);
    }

    #[test]
    fn post_opt_applies_to_every_flow_kind() {
        let design = Design::intdiv(4);
        let flows: Vec<Box<dyn Flow>> = vec![
            Box::new(FunctionalFlow::default()),
            Box::new(EsopFlow::with_factoring(0)),
            Box::new(HierarchicalFlow::default()),
        ];
        for flow in flows {
            let outcome = flow.run(&design).unwrap();
            assert!(outcome.opt_stats.is_some(), "{}", outcome.flow_name);
            assert!(outcome.verification.is_ok(), "{}", outcome.flow_name);
        }
    }
}
