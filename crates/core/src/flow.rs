//! The three design flows of the paper (§IV, Fig. 1).
//!
//! Every flow implements [`Flow`]: Verilog in, verified reversible circuit
//! plus cost figures out. The flows share the front of the pipeline
//! (parse → elaborate → AIG optimization) and diverge at the
//! representation handed to reversible synthesis:
//!
//! | flow | interface | back-end | cost profile |
//! |------|-----------|----------|--------------|
//! | [`FunctionalFlow`] | BDD | optimum embedding + TBS | min qubits, huge T |
//! | [`EsopFlow`] | ESOP | REVS ESOP mode (`p`) | `2n(+p)` qubits, mid T |
//! | [`HierarchicalFlow`] | XMG | REVS hierarchical | many qubits, min T |

use crate::design::Design;
use qda_classical::collapse::{collapse_to_bdds, CollapseError};
use qda_classical::esop_extract::extract_multi_esop;
use qda_classical::exorcism::{minimize_esop, ExorcismOptions};
use qda_classical::rewrite::{optimize_aig, OptimizeOptions};
use qda_classical::xmg_map::map_to_xmg;
use qda_rev::circuit::Circuit;
use qda_rev::cost::CircuitCost;
use qda_rev::equiv::{verify_computes, VerifyOptions, VerifyOutcome};
use qda_revsynth::embed::optimum_embedding;
use qda_revsynth::esop::{synthesize_esop, EsopSynthOptions};
use qda_revsynth::hierarchical::{synthesize_xmg, CleanupStrategy, HierarchicalOptions};
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};
use qda_verilog::VerilogError;
use std::fmt;
use std::time::{Duration, Instant};

/// Failure of a design flow.
#[derive(Debug)]
pub enum FlowError {
    /// The Verilog frontend failed.
    Frontend(VerilogError),
    /// BDD collapse exceeded its budget.
    Collapse(CollapseError),
    /// The instance is too large for this flow (e.g. explicit TBS beyond
    /// 25 lines).
    TooLarge {
        /// Explanation.
        reason: String,
    },
    /// The synthesized circuit failed verification — a synthesis bug.
    VerificationFailed {
        /// The failing outcome.
        outcome: VerifyOutcome,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Frontend(e) => write!(f, "frontend: {e}"),
            FlowError::Collapse(e) => write!(f, "collapse: {e}"),
            FlowError::TooLarge { reason } => write!(f, "instance too large: {reason}"),
            FlowError::VerificationFailed { outcome } => {
                write!(f, "verification failed: {outcome:?}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<VerilogError> for FlowError {
    fn from(e: VerilogError) -> Self {
        FlowError::Frontend(e)
    }
}

impl From<CollapseError> for FlowError {
    fn from(e: CollapseError) -> Self {
        FlowError::Collapse(e)
    }
}

/// Result of running a flow on a design: the paper's per-row data
/// (qubits, T-count, runtime) plus the circuit itself.
#[derive(Clone, Debug)]
pub struct FlowOutcome {
    /// The design that was synthesized.
    pub design: Design,
    /// Name of the flow that produced this outcome.
    pub flow_name: String,
    /// The synthesized reversible circuit.
    pub circuit: Circuit,
    /// Lines carrying the inputs.
    pub input_lines: Vec<usize>,
    /// Lines carrying the outputs after execution.
    pub output_lines: Vec<usize>,
    /// Cost summary (qubits, T-count, gate counts).
    pub cost: CircuitCost,
    /// Wall-clock flow runtime.
    pub runtime: Duration,
    /// Verification verdict (always a success variant; failures abort the
    /// flow with [`FlowError::VerificationFailed`]).
    pub verification: VerifyOutcome,
}

/// A design flow: Verilog design in, verified reversible circuit out.
pub trait Flow {
    /// Human-readable flow name (used in reports).
    fn name(&self) -> String;

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the design cannot be processed (frontend
    /// failure, resource blow-up) or the result fails verification.
    fn run(&self, design: &Design) -> Result<FlowOutcome, FlowError>;
}

/// Verifies a circuit against the design AIG and assembles the outcome.
#[allow(clippy::too_many_arguments)]
fn finish(
    design: &Design,
    flow_name: String,
    circuit: Circuit,
    input_lines: Vec<usize>,
    output_lines: Vec<usize>,
    aig: &qda_logic::aig::Aig,
    start: Instant,
    check_clean: bool,
) -> Result<FlowOutcome, FlowError> {
    let options = VerifyOptions {
        exhaustive_limit: 11,
        random_samples: 128,
        check_ancilla_clean: check_clean,
        check_inputs_preserved: check_clean,
    };
    // The simulation harness reads I/O through 64-bit registers; the
    // paper's largest instance (n = 128) exceeds that, so verification is
    // skipped there (the construction is the same as for verified sizes).
    let verification = if input_lines.len() > 64 || output_lines.len() > 64 {
        VerifyOutcome::Skipped
    } else {
        verify_computes(
            &circuit,
            &input_lines,
            &output_lines,
            |x| aig.eval(x),
            &options,
        )
    };
    if !verification.is_ok() {
        return Err(FlowError::VerificationFailed {
            outcome: verification,
        });
    }
    let cost = circuit.cost();
    Ok(FlowOutcome {
        design: *design,
        flow_name,
        circuit,
        input_lines,
        output_lines,
        cost,
        runtime: start.elapsed(),
        verification,
    })
}

/// Flow 1 — symbolic functional synthesis (paper §IV-A):
/// Verilog → AIG (`dc2`) → BDD (`collapse`) → optimum embedding →
/// transformation-based synthesis.
///
/// Qubit-optimal (e.g. `2n − 1` for the reciprocal) at the price of
/// many-control Toffolis and exponential runtime. Explicit permutations
/// bound the instance size; the paper's SAT-based symbolic variant pushes
/// the same algorithm to `n = 16` in 3.2 days.
#[derive(Clone, Debug)]
pub struct FunctionalFlow {
    /// AIG optimization options.
    pub optimize: OptimizeOptions,
    /// TBS direction.
    pub direction: TbsDirection,
    /// Maximum embedded line count accepted (explicit permutation guard).
    pub max_lines: usize,
}

impl Default for FunctionalFlow {
    fn default() -> Self {
        Self {
            optimize: OptimizeOptions::default(),
            direction: TbsDirection::Bidirectional,
            max_lines: 25,
        }
    }
}

impl Flow for FunctionalFlow {
    fn name(&self) -> String {
        "functional (embedding + TBS)".into()
    }

    fn run(&self, design: &Design) -> Result<FlowOutcome, FlowError> {
        let start = Instant::now();
        let n = design.bits();
        if 2 * n - 1 > self.max_lines {
            return Err(FlowError::TooLarge {
                reason: format!(
                    "embedded reciprocal needs ~{} lines, explicit TBS capped at {}",
                    2 * n - 1,
                    self.max_lines
                ),
            });
        }
        let aig = design.to_aig()?;
        let aig = optimize_aig(&aig, &self.optimize);
        // "collapse": the explicit truth table is the BDD's semantics; the
        // embedding enumerates it either way.
        let tts = aig.to_truth_tables();
        let embedding = optimum_embedding(&tts);
        let circuit = transformation_based_synthesis(embedding.permutation(), self.direction);
        let m = embedding.num_outputs();
        // In-place circuit: inputs on the low n lines, outputs on the low
        // m lines (our embedding convention).
        let input_lines: Vec<usize> = (0..n).collect();
        let output_lines: Vec<usize> = (0..m).collect();
        finish(
            design,
            self.name(),
            circuit,
            input_lines,
            output_lines,
            &aig,
            start,
            false,
        )
    }
}

/// Flow 2 — ESOP-based synthesis with REVS (paper §IV-B):
/// Verilog → AIG → BDD → PSDKRO ESOP → exorcism → REVS ESOP mode.
#[derive(Clone, Debug)]
pub struct EsopFlow {
    /// AIG optimization options.
    pub optimize: OptimizeOptions,
    /// Exorcism minimization options.
    pub exorcism: ExorcismOptions,
    /// REVS factoring parameter `p`.
    pub synth: EsopSynthOptions,
    /// BDD node budget for the collapse step.
    pub bdd_node_limit: usize,
}

impl EsopFlow {
    /// Flow with the given factoring parameter `p`.
    pub fn with_factoring(p: usize) -> Self {
        Self {
            optimize: OptimizeOptions::default(),
            exorcism: ExorcismOptions::default(),
            synth: EsopSynthOptions {
                factoring_passes: p,
                min_sharers: 2,
            },
            bdd_node_limit: 2_000_000,
        }
    }
}

impl Default for EsopFlow {
    fn default() -> Self {
        Self::with_factoring(0)
    }
}

impl Flow for EsopFlow {
    fn name(&self) -> String {
        format!("ESOP (REVS, p = {})", self.synth.factoring_passes)
    }

    fn run(&self, design: &Design) -> Result<FlowOutcome, FlowError> {
        let start = Instant::now();
        let aig = design.to_aig()?;
        let aig = optimize_aig(&aig, &self.optimize);
        let (mut mgr, bdds) = collapse_to_bdds(&aig, self.bdd_node_limit)?;
        let mut esop = extract_multi_esop(&mut mgr, &bdds);
        minimize_esop(&mut esop, &self.exorcism);
        let synthesis = synthesize_esop(&esop, &self.synth);
        finish(
            design,
            self.name(),
            synthesis.circuit,
            synthesis.input_lines,
            synthesis.output_lines,
            &aig,
            start,
            true,
        )
    }
}

/// Flow 3 — hierarchical synthesis (paper §IV-C):
/// Verilog → AIG → XMG (`xmglut -k 4`) → REVS hierarchical.
///
/// Scales to `n = 128`: the cost is one ancilla per XMG gate and one
/// Toffoli per MAJ; XORs are free.
#[derive(Clone, Debug)]
pub struct HierarchicalFlow {
    /// AIG optimization options.
    pub optimize: OptimizeOptions,
    /// Cleanup strategy and in-place XOR application.
    pub synth: HierarchicalOptions,
}

impl HierarchicalFlow {
    /// Flow with the given cleanup strategy.
    pub fn with_strategy(strategy: CleanupStrategy) -> Self {
        Self {
            optimize: OptimizeOptions::default(),
            synth: HierarchicalOptions {
                strategy,
                inplace_xor: strategy == CleanupStrategy::Bennett,
            },
        }
    }
}

impl Default for HierarchicalFlow {
    fn default() -> Self {
        Self::with_strategy(CleanupStrategy::Bennett)
    }
}

impl Flow for HierarchicalFlow {
    fn name(&self) -> String {
        format!("hierarchical (XMG, {:?})", self.synth.strategy)
    }

    fn run(&self, design: &Design) -> Result<FlowOutcome, FlowError> {
        let start = Instant::now();
        let aig = design.to_aig()?;
        let aig = optimize_aig(&aig, &self.optimize);
        let xmg = map_to_xmg(&aig);
        let synthesis = synthesize_xmg(&xmg, &self.synth);
        let check_clean = self.synth.strategy != CleanupStrategy::KeepGarbage;
        finish(
            design,
            self.name(),
            synthesis.circuit,
            synthesis.input_lines,
            synthesis.output_lines,
            &aig,
            start,
            check_clean,
        )
    }
}

/// The static structure of Fig. 1: levels, tools and interfaces of the
/// design flows, renderable as text (regenerated by the `figure1` bench
/// binary).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowGraph;

impl fmt::Display for FlowGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design level        INTDIV(n)        NEWTON(n)")?;
        writeln!(f, "                        \\               /")?;
        writeln!(f, "                         Verilog source")?;
        writeln!(
            f,
            "logic synthesis          parse + elaborate   [qda-verilog]"
        )?;
        writeln!(
            f,
            "level                    AIG optimize (dc2)  [qda-classical]"
        )?;
        writeln!(f, "                      /        |         \\")?;
        writeln!(f, "                   collapse  exorcism   xmglut -k 4")?;
        writeln!(f, "                    BDD        ESOP        XMG")?;
        writeln!(f, "reversible          |           |           |")?;
        writeln!(
            f,
            "synthesis        embedding   REVS ESOP   REVS hierarchical"
        )?;
        writeln!(
            f,
            "level             + TBS      (p = 0,1)   (Bennett/per-output)"
        )?;
        writeln!(f, "                    |           |           |")?;
        writeln!(f, "quantum level     reversible circuits: qubits × T-count")?;
        writeln!(f, "                  Architecture 1 … Architecture n")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_flow_small_intdiv() {
        let outcome = FunctionalFlow::default().run(&Design::intdiv(4)).unwrap();
        // Optimum embedding: 2n − 1 qubits.
        assert_eq!(outcome.cost.qubits, 7);
        assert!(outcome.cost.t_count > 0);
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn esop_flow_uses_2n_lines_at_p0() {
        let outcome = EsopFlow::with_factoring(0).run(&Design::intdiv(5)).unwrap();
        assert_eq!(outcome.cost.qubits, 10);
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn esop_flow_p1_trades_qubits_for_t() {
        let p0 = EsopFlow::with_factoring(0).run(&Design::intdiv(6)).unwrap();
        let p1 = EsopFlow::with_factoring(1).run(&Design::intdiv(6)).unwrap();
        assert!(p1.cost.qubits >= p0.cost.qubits);
        // Factoring must never *hurt* T-count on this workload.
        assert!(p1.cost.t_count <= p0.cost.t_count);
    }

    #[test]
    fn hierarchical_flow_runs_and_verifies() {
        let outcome = HierarchicalFlow::default().run(&Design::intdiv(5)).unwrap();
        assert!(outcome.cost.qubits > 10); // ancilla per gate
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn functional_flow_rejects_large_instances() {
        let r = FunctionalFlow::default().run(&Design::intdiv(16));
        assert!(matches!(r, Err(FlowError::TooLarge { .. })));
    }

    #[test]
    fn newton_design_through_esop_flow() {
        let outcome = EsopFlow::with_factoring(0).run(&Design::newton(4)).unwrap();
        assert_eq!(outcome.cost.qubits, 8);
        assert_eq!(outcome.verification, VerifyOutcome::Verified);
    }

    #[test]
    fn flow_graph_renders() {
        let s = FlowGraph.to_string();
        assert!(s.contains("INTDIV"));
        assert!(s.contains("xmglut"));
        assert!(s.contains("TBS"));
    }
}
