//! Paper-style result tables and baseline comparisons.

use crate::dse::{configuration_name, PortfolioOutcome};
use crate::flow::FlowOutcome;
use qda_analyze::Severity;
use std::fmt;

/// A plain-text table with the look of the paper's result tables.
///
/// # Example
///
/// ```
/// use qda_core::report::Table;
///
/// let mut t = Table::new("TABLE X", vec!["n", "qubits", "T-count"]);
/// t.add_row(vec!["8".into(), "15".into(), "51 386".into()]);
/// assert!(t.to_string().contains("TABLE X"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: Vec<&str>) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders a row of a [`FlowOutcome`] in the paper's column
    /// convention: `n`, qubits, T-count, runtime (seconds).
    pub fn outcome_row(outcome: &FlowOutcome) -> Vec<String> {
        vec![
            outcome.design.bits().to_string(),
            outcome.cost.qubits.to_string(),
            group_digits(outcome.cost.t_count),
            format!("{:.2}", outcome.runtime.as_secs_f64()),
        ]
    }

    /// Renders the per-stage timing breakdown of a [`FlowOutcome`]:
    /// flow name, then seconds for parse+elaborate, optimize, synthesis,
    /// post-synthesis circuit optimization, windowed resynthesis, static
    /// analysis, verification, and the total.
    pub fn stage_row(outcome: &FlowOutcome) -> Vec<String> {
        let s = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64());
        vec![
            outcome.flow_name.clone(),
            s(outcome.stages.parse_elaborate),
            s(outcome.stages.optimize),
            s(outcome.stages.synthesis),
            s(outcome.stages.post_opt),
            s(outcome.stages.resynth),
            s(outcome.stages.analyze),
            s(outcome.stages.verification),
            s(outcome.stages.total()),
        ]
    }
}

/// A timing-free exploration report: one line per outcome, in exploration
/// order, listing design, flow, qubits, T-count, gate count, and (when
/// the analyze stage ran) the static-lint warning/note counts and
/// T-depth.
///
/// Deliberately excludes wall-clock figures so a parallel
/// [`crate::dse::DesignSpaceExplorer::explore_matrix`] run renders
/// **byte-identical** to a serial run of the same matrix — the
/// determinism contract the regression tests pin down (the static
/// analyzer is deterministic, so its cells keep that contract).
pub fn deterministic_report(outcomes: &[FlowOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let lint = match &o.analysis {
            Some(r) => format!(
                " | lint {}w/{}n | T-depth {}",
                r.count(Severity::Warning),
                r.count(Severity::Note),
                r.metrics.depth.t_depth,
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "{} | {} | qubits {} | T {} | gates {}{}\n",
            o.design.name(),
            o.flow_name,
            o.cost.qubits,
            group_digits(o.cost.t_count),
            o.cost.gates,
            lint,
        ));
    }
    out
}

/// A timing-free portfolio report: one line per configuration, in
/// portfolio order, listing design, configuration, qubits, T-count, gate
/// count and race status.
///
/// Like [`deterministic_report`], excludes wall-clock figures, so a
/// parallel [`crate::dse::DesignSpaceExplorer::explore_portfolio`] run
/// renders **byte-identical** for every worker count.
pub fn portfolio_report(outcomes: &[PortfolioOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let status = if o.cut_off { "cut off" } else { "ran" };
        out.push_str(&format!(
            "{} | {} | qubits {} | T {} | gates {} | {}\n",
            o.design.name(),
            configuration_name(&o.flow_name, o.post_opt, o.post_resynth),
            o.cost.qubits,
            group_digits(o.cost.t_count),
            o.cost.gates,
            status,
        ));
    }
    out
}

/// Formats an integer with thin thousand groups, as the paper prints
/// T-counts (`51 386`).
pub fn group_digits(value: u64) -> String {
    let digits = value.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} ", w = w)?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Ratio helper for the paper's prose claims ("the number of qubits is
/// 3.2× smaller compared to the RESDIV baseline").
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// Numerator (usually the baseline).
    pub baseline: f64,
    /// Denominator (usually ours).
    pub candidate: f64,
}

impl Comparison {
    /// Builds from two counts.
    pub fn of(baseline: u64, candidate: u64) -> Self {
        Self {
            baseline: baseline as f64,
            candidate: candidate as f64,
        }
    }

    /// How many times smaller the candidate is (`baseline / candidate`).
    pub fn times_smaller(&self) -> f64 {
        self.baseline / self.candidate
    }

    /// How many times larger the candidate is (`candidate / baseline`).
    pub fn times_larger(&self) -> f64 {
        self.candidate / self.baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping_matches_paper_style() {
        assert_eq!(group_digits(51386), "51 386");
        assert_eq!(group_digits(71155258), "71 155 258");
        assert_eq!(group_digits(597), "597");
        assert_eq!(group_digits(0), "0");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("TABLE II", vec!["n", "qubits", "T-count", "runtime"]);
        t.add_row(vec!["4".into(), "7".into(), "597".into(), "0.10".into()]);
        t.add_row(vec![
            "8".into(),
            "15".into(),
            "51 386".into(),
            "0.74".into(),
        ]);
        let s = t.to_string();
        assert!(s.contains("TABLE II"));
        assert!(s.contains("51 386"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", vec!["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn comparison_ratios() {
        let c = Comparison::of(48, 15);
        assert!((c.times_smaller() - 3.2).abs() < 0.01);
        let c = Comparison::of(100, 250);
        assert!((c.times_larger() - 2.5).abs() < 1e-9);
    }
}
