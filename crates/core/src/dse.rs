//! Design space exploration across flows (the paper's headline
//! capability: "the designer can optimize the synthesis output with
//! respect to several objectives such as space (number of qubits), time
//! (number of quantum operations), or runtime of the design flow").

use crate::design::Design;
use crate::flow::{Flow, FlowError, FlowOutcome, FrontendCache};
use qda_logic::par;
use qda_rev::circuit::Circuit;
use qda_rev::cost::CircuitCost;
use qda_rev::opt::{optimize_checked_assuming, OptOptions, OptStats};
use qda_rev::resynth::{ResynthOptions, ResynthStats};
use qda_revsynth::resynth::resynthesize_circuit_checked;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Optimization objective for picking a winner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimize qubits (space).
    Qubits,
    /// Minimize T-count (time on the quantum computer).
    TCount,
    /// Minimize flow runtime (design productivity).
    Runtime,
}

/// The machine-wide parallel budget: the thread count of the shared
/// [`qda_logic::par`] worker pool (`QDA_WORKERS`, or one thread per
/// available CPU). This is what
/// [`DesignSpaceExplorer::explore_matrix`] with `workers = 0` runs at.
pub fn default_workers() -> usize {
    par::worker_count()
}

/// Runs a set of flows on a design and ranks the outcomes.
///
/// # Example
///
/// ```
/// use qda_core::design::Design;
/// use qda_core::dse::{DesignSpaceExplorer, Objective};
/// use qda_core::flow::{EsopFlow, FunctionalFlow};
///
/// let mut dse = DesignSpaceExplorer::new();
/// dse.add_flow(Box::new(FunctionalFlow::default()));
/// dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
/// dse.explore(&Design::intdiv(4));
/// let best = dse.best(Objective::Qubits).expect("at least one success");
/// assert_eq!(best.cost.qubits, 7); // TBS wins on qubits
/// ```
#[derive(Default)]
pub struct DesignSpaceExplorer {
    flows: Vec<Box<dyn Flow>>,
    outcomes: Vec<FlowOutcome>,
    failures: Vec<(String, FlowError)>,
}

impl DesignSpaceExplorer {
    /// An explorer with no flows registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a flow.
    pub fn add_flow(&mut self, flow: Box<dyn Flow>) {
        self.flows.push(flow);
    }

    /// Runs every registered flow on `design`, collecting successes and
    /// failures. Returns the number of successful outcomes added.
    ///
    /// The shared front end (parse → elaborate → AIG optimization) is
    /// computed once and reused by every flow that asks for the same
    /// optimization options.
    pub fn explore(&mut self, design: &Design) -> usize {
        self.explore_matrix(std::slice::from_ref(design), 1)
    }

    /// Runs the full flow × design matrix, sharding jobs through the
    /// persistent [`qda_logic::par`] worker pool with at most `workers`
    /// threads participating (`0` means the pool's full `QDA_WORKERS`
    /// budget — no thread is ever spawned per call). Returns the number
    /// of successful outcomes added.
    ///
    /// Front ends are shared through a [`FrontendCache`], so each design
    /// is parsed and optimized once no matter how many flows consume it.
    /// Results are recorded in deterministic (design-major, then flow
    /// registration) order — a parallel run reports exactly what a serial
    /// run does, only sooner.
    pub fn explore_matrix(&mut self, designs: &[Design], workers: usize) -> usize {
        let cap = match workers {
            0 => usize::MAX,
            w => w,
        };
        let cache = FrontendCache::new();
        let flows = &self.flows;
        let num_jobs = designs.len() * flows.len();
        let results = par::with_worker_cap(cap, || {
            par::run_indexed(num_jobs, |job| {
                let design = &designs[job / flows.len()];
                let flow = &flows[job % flows.len()];
                // Precheck before the cache lookup: an infeasible (design,
                // flow) pair must not force a front-end computation.
                flow.precheck(design)
                    .and_then(|()| cache.get_or_compute(design, &flow.frontend_options()))
                    .and_then(|frontend| flow.run_with_frontend(design, &frontend))
                    .map_err(|e| (flow.name(), e))
            })
        });
        let mut added = 0;
        for result in results {
            match result {
                Ok(outcome) => {
                    self.outcomes.push(outcome);
                    added += 1;
                }
                Err(failure) => self.failures.push(failure),
            }
        }
        added
    }

    /// All successful outcomes so far.
    pub fn outcomes(&self) -> &[FlowOutcome] {
        &self.outcomes
    }

    /// Flows that failed, with reasons.
    pub fn failures(&self) -> &[(String, FlowError)] {
        &self.failures
    }

    /// The best outcome under an objective.
    pub fn best(&self, objective: Objective) -> Option<&FlowOutcome> {
        self.outcomes.iter().min_by_key(|o| match objective {
            Objective::Qubits => (o.cost.qubits as u64, o.cost.t_count),
            Objective::TCount => (o.cost.t_count, o.cost.qubits as u64),
            Objective::Runtime => (o.runtime.as_micros() as u64, o.cost.t_count),
        })
    }

    /// The Pareto-optimal outcomes in the (qubits, T-count) plane —
    /// exactly the trade-off surface the paper's Tables II–IV trace out.
    pub fn pareto_front(&self) -> Vec<&FlowOutcome> {
        let mut front: Vec<&FlowOutcome> = Vec::new();
        for o in &self.outcomes {
            let dominated = self.outcomes.iter().any(|p| {
                (p.cost.qubits < o.cost.qubits && p.cost.t_count <= o.cost.t_count)
                    || (p.cost.qubits <= o.cost.qubits && p.cost.t_count < o.cost.t_count)
            });
            if !dominated {
                front.push(o);
            }
        }
        front.sort_by_key(|o| o.cost.qubits);
        front
    }

    /// Total exploration time across all successful outcomes.
    pub fn total_runtime(&self) -> Duration {
        self.outcomes.iter().map(|o| o.runtime).sum()
    }

    /// Runs the {flow × post_opt × post_resynth} configuration portfolio
    /// on every design, racing the configurations against each other.
    ///
    /// Two phases, both sharded through the persistent
    /// [`qda_logic::par`] worker pool with at most `workers` threads
    /// participating (`0` means the pool's full `QDA_WORKERS` budget):
    ///
    /// 1. **Raw synthesis** — every flow that offers a
    ///    [`Flow::raw_variant`] runs once per design with both
    ///    post-synthesis passes off. As results land, each design's best
    ///    raw T-count races through an [`AtomicU64`] (`fetch_min`).
    /// 2. **Refinement** — the post-pass combinations (`+opt`,
    ///    `+resynth`, `+opt+resynth`) are applied to each raw circuit.
    ///    A configuration whose raw T-count exceeds
    ///    [`PORTFOLIO_CUTOFF_FACTOR`] × the design's best raw T-count is
    ///    **cut off**: its refinement work is skipped and its raw cost
    ///    reported, because no peephole/resynthesis pass recovers a
    ///    multiple-of-the-leader gap.
    ///
    /// The phase barrier is what keeps the race deterministic: cutoff
    /// decisions read the *settled* phase-1 minimum, never a moving
    /// value, so the returned portfolio — order, costs, circuits,
    /// cut-off flags — is identical for every worker count (only
    /// [`PortfolioOutcome::runtime`] varies, and the deterministic
    /// report excludes it).
    pub fn explore_portfolio(&self, designs: &[Design], workers: usize) -> Portfolio {
        let cap = match workers {
            0 => usize::MAX,
            w => w,
        };
        let cache = FrontendCache::new();
        let raws: Vec<Box<dyn Flow>> = self.flows.iter().filter_map(|f| f.raw_variant()).collect();
        let num_raw = designs.len() * raws.len();

        // Phase 1: raw synthesis, racing the per-design best T-count.
        let best_raw_t: Vec<AtomicU64> = designs.iter().map(|_| AtomicU64::new(u64::MAX)).collect();
        let raw_results = par::with_worker_cap(cap, || {
            par::run_indexed(num_raw, |job| {
                let design_idx = job / raws.len();
                let design = &designs[design_idx];
                let raw = &raws[job % raws.len()];
                let result = raw
                    .precheck(design)
                    .and_then(|()| cache.get_or_compute(design, &raw.frontend_options()))
                    .and_then(|frontend| raw.run_with_frontend(design, &frontend))
                    .map_err(|e| (raw.name(), e));
                if let Ok(outcome) = &result {
                    best_raw_t[design_idx].fetch_min(outcome.cost.t_count, Ordering::Relaxed);
                }
                result
            })
        });

        let mut failures: Vec<(String, FlowError)> = Vec::new();
        let raw_outcomes: Vec<Option<FlowOutcome>> = raw_results
            .into_iter()
            .map(|result| match result {
                Ok(outcome) => Some(outcome),
                Err(failure) => {
                    failures.push(failure);
                    None
                }
            })
            .collect();

        // Phase 2: refinement combos against the settled phase-1 minima.
        const COMBOS: [(bool, bool); 3] = [(true, false), (false, true), (true, true)];
        let num_refine = num_raw * COMBOS.len();
        type RefineResult = Result<PortfolioOutcome, (String, FlowError)>;
        let refine_results: Vec<Option<RefineResult>> = par::with_worker_cap(cap, || {
            par::run_indexed(num_refine, |job| {
                let raw_idx = job / COMBOS.len();
                let (post_opt, post_resynth) = COMBOS[job % COMBOS.len()];
                // A failed raw synthesis is already recorded; its
                // refinement slots stay empty.
                let raw = raw_outcomes[raw_idx].as_ref()?;
                let bound = best_raw_t[raw_idx / raws.len()].load(Ordering::Relaxed);
                let cut_off = raw.cost.t_count > PORTFOLIO_CUTOFF_FACTOR.saturating_mul(bound);
                Some(if cut_off {
                    Ok(portfolio_row(raw, post_opt, post_resynth, true))
                } else {
                    refine(raw, post_opt, post_resynth)
                })
            })
        });

        // Drain deterministically: per (design, flow), the raw row first,
        // then its three refinements in combo order.
        let mut outcomes = Vec::with_capacity(num_raw * (1 + COMBOS.len()));
        let mut refined = refine_results.into_iter();
        for raw in &raw_outcomes {
            let rows: Vec<Option<RefineResult>> = (&mut refined).take(COMBOS.len()).collect();
            let Some(raw) = raw else { continue };
            outcomes.push(portfolio_row(raw, false, false, false));
            for row in rows {
                match row.expect("refinement ran for a successful raw job") {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(failure) => failures.push(failure),
                }
            }
        }
        Portfolio { outcomes, failures }
    }
}

/// A portfolio row wrapping a raw outcome unchanged (the raw
/// configuration itself, or a cut-off refinement).
fn portfolio_row(
    raw: &FlowOutcome,
    post_opt: bool,
    post_resynth: bool,
    cut_off: bool,
) -> PortfolioOutcome {
    PortfolioOutcome {
        design: raw.design,
        flow_name: raw.flow_name.clone(),
        post_opt,
        post_resynth,
        cut_off,
        raw_cost: raw.cost,
        cost: raw.cost,
        circuit: raw.circuit.clone(),
        opt_stats: None,
        resynth_stats: None,
        runtime: Duration::ZERO,
    }
}

/// Applies the requested post-synthesis passes to a raw outcome. Both
/// passes carry their own equivalence gates, and the refined circuit is
/// statically linted, so every portfolio row is machine-checked against
/// the raw one.
fn refine(
    raw: &FlowOutcome,
    post_opt: bool,
    post_resynth: bool,
) -> Result<PortfolioOutcome, (String, FlowError)> {
    let start = Instant::now();
    let mut circuit = raw.circuit.clone();
    let mut opt_stats = None;
    let mut resynth_stats = None;
    // Same contract as the in-flow back half: non-input lines start at
    // |0⟩ (which unlocks the constant-propagation rules and restricts
    // the equivalence check to the states the flow is verified on).
    // `require_clean` is false because the flow's cleanliness promise is
    // not recorded on the raw outcome — an under-approximation, never a
    // false denial.
    let interface = qda_analyze::CircuitInterface::hierarchical(
        circuit.num_lines(),
        raw.input_lines.clone(),
        raw.output_lines.clone(),
        false,
    );
    if post_opt {
        match optimize_checked_assuming(&circuit, &OptOptions::default(), &interface.zero_lines()) {
            Ok(optimized) => {
                circuit = optimized.circuit;
                opt_stats = Some(optimized.stats);
            }
            Err(witness) => {
                return Err((
                    configuration_name(&raw.flow_name, post_opt, post_resynth),
                    FlowError::PostOptUnsound { witness },
                ))
            }
        }
    }
    if post_resynth {
        match resynthesize_circuit_checked(&circuit, &ResynthOptions::default()) {
            Ok(r) => {
                circuit = r.circuit;
                resynth_stats = Some(r.stats);
            }
            Err(witness) => {
                return Err((
                    configuration_name(&raw.flow_name, post_opt, post_resynth),
                    FlowError::ResynthUnsound { witness },
                ))
            }
        }
    }
    let report = qda_analyze::analyze(&circuit, &interface);
    if !report.is_clean(qda_analyze::Severity::Deny) {
        return Err((
            configuration_name(&raw.flow_name, post_opt, post_resynth),
            FlowError::AnalysisViolation { report },
        ));
    }
    let cost = circuit.cost();
    Ok(PortfolioOutcome {
        design: raw.design,
        flow_name: raw.flow_name.clone(),
        post_opt,
        post_resynth,
        cut_off: false,
        raw_cost: raw.cost,
        cost,
        circuit,
        opt_stats,
        resynth_stats,
        runtime: start.elapsed(),
    })
}

/// `"<flow> [+opt+resynth]"`-style label of one portfolio configuration.
pub fn configuration_name(flow_name: &str, post_opt: bool, post_resynth: bool) -> String {
    let combo = match (post_opt, post_resynth) {
        (false, false) => "raw",
        (true, false) => "+opt",
        (false, true) => "+resynth",
        (true, true) => "+opt+resynth",
    };
    format!("{flow_name} [{combo}]")
}

/// A refinement configuration is cut off when its raw T-count exceeds
/// this factor times the design's best raw T-count: post-synthesis
/// passes only ever shave constant fractions, never a multiple-of-the-
/// leader gap.
pub const PORTFOLIO_CUTOFF_FACTOR: u64 = 4;

/// One {flow × post_opt × post_resynth} configuration's result on one
/// design.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The design that was synthesized.
    pub design: Design,
    /// Base flow name (without the configuration suffix; see
    /// [`configuration_name`]).
    pub flow_name: String,
    /// Whether the peephole optimizer ran in this configuration.
    pub post_opt: bool,
    /// Whether the windowed resynthesis pass ran in this configuration.
    pub post_resynth: bool,
    /// Whether the configuration lost the race and skipped its
    /// refinement work (its `cost` then equals `raw_cost`).
    pub cut_off: bool,
    /// Cost of the raw synthesis output this configuration started from.
    pub raw_cost: CircuitCost,
    /// Cost after this configuration's refinement passes.
    pub cost: CircuitCost,
    /// The configuration's final circuit.
    pub circuit: Circuit,
    /// Peephole optimizer statistics (when `post_opt` ran).
    pub opt_stats: Option<OptStats>,
    /// Resynthesis statistics (when `post_resynth` ran).
    pub resynth_stats: Option<ResynthStats>,
    /// Wall-clock refinement time (zero for raw/cut-off rows; excluded
    /// from deterministic reports).
    pub runtime: Duration,
}

/// Everything [`DesignSpaceExplorer::explore_portfolio`] produced.
#[derive(Debug, Default)]
pub struct Portfolio {
    /// Per-configuration outcomes, in deterministic (design-major, then
    /// flow registration, then raw/`+opt`/`+resynth`/`+opt+resynth`)
    /// order.
    pub outcomes: Vec<PortfolioOutcome>,
    /// Configurations that failed, with reasons, in the same order.
    pub failures: Vec<(String, FlowError)>,
}

impl Portfolio {
    /// The cheapest configuration for `design` under the
    /// (T-count, gates, qubits) lexicographic order.
    pub fn best_for(&self, design: &Design) -> Option<&PortfolioOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.design == *design)
            .min_by_key(|o| (o.cost.t_count, o.cost.gates, o.cost.qubits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};

    fn explored(n: usize) -> DesignSpaceExplorer {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default()));
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        dse.explore(&Design::intdiv(n));
        dse
    }

    #[test]
    fn explores_all_flows() {
        let dse = explored(4);
        assert_eq!(dse.outcomes().len(), 3);
        assert!(dse.failures().is_empty());
    }

    #[test]
    fn objectives_pick_different_winners() {
        let dse = explored(5);
        let by_qubits = dse.best(Objective::Qubits).unwrap();
        let by_t = dse.best(Objective::TCount).unwrap();
        // TBS wins qubits; hierarchical wins T-count (the paper's central
        // trade-off).
        assert!(by_qubits.flow_name.contains("functional"));
        assert!(by_qubits.cost.qubits <= by_t.cost.qubits);
        assert!(by_t.cost.t_count <= by_qubits.cost.t_count);
    }

    #[test]
    fn pareto_front_is_monotone() {
        let dse = explored(5);
        let front = dse.pareto_front();
        assert!(!front.is_empty());
        for pair in front.windows(2) {
            assert!(pair[0].cost.qubits <= pair[1].cost.qubits);
            assert!(pair[0].cost.t_count >= pair[1].cost.t_count);
        }
    }

    #[test]
    fn failures_are_recorded_not_fatal() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default()));
        let added = dse.explore(&Design::intdiv(16)); // too large for TBS
        assert_eq!(added, 0);
        assert_eq!(dse.failures().len(), 1);
    }

    #[test]
    fn matrix_order_is_design_major_then_flow() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let designs = [Design::intdiv(4), Design::newton(4)];
        assert_eq!(dse.explore_matrix(&designs, 2), 4);
        let got: Vec<(String, String)> = dse
            .outcomes()
            .iter()
            .map(|o| (o.design.name(), o.flow_name.clone()))
            .collect();
        assert_eq!(got[0].0, "INTDIV(4)");
        assert_eq!(got[1].0, "INTDIV(4)");
        assert_eq!(got[2].0, "NEWTON(4)");
        assert_eq!(got[3].0, "NEWTON(4)");
        assert!(got[0].1.contains("ESOP") && got[1].1.contains("hierarchical"));
        assert!(got[2].1.contains("ESOP") && got[3].1.contains("hierarchical"));
    }

    #[test]
    fn matrix_records_failures_in_order_too() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default())); // fails at n = 16
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let added = dse.explore_matrix(&[Design::intdiv(16)], 2);
        assert_eq!(added, 1);
        assert_eq!(dse.failures().len(), 1);
        assert!(dse.failures()[0].0.contains("functional"));
    }

    #[test]
    fn portfolio_covers_the_configuration_grid() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let design = Design::intdiv(4);
        let p = dse.explore_portfolio(&[design], 1);
        // 2 flows × {raw, +opt, +resynth, +opt+resynth}.
        assert_eq!(p.outcomes.len(), 8);
        assert!(p.failures.is_empty());
        for o in &p.outcomes {
            assert!(o.cost.t_count <= o.raw_cost.t_count);
            assert!(o.cost.gates <= o.raw_cost.gates);
            assert_eq!(o.opt_stats.is_some(), o.post_opt && !o.cut_off);
            assert_eq!(o.resynth_stats.is_some(), o.post_resynth && !o.cut_off);
        }
        // The grid starts with the raw row of the first flow.
        assert!(!p.outcomes[0].post_opt && !p.outcomes[0].post_resynth);
        let best = p.best_for(&design).expect("some configuration won");
        assert!(best.cost.t_count <= p.outcomes[0].cost.t_count);
    }

    #[test]
    fn portfolio_cuts_off_hopeless_configurations() {
        let mut dse = DesignSpaceExplorer::new();
        // TBS raw T-count is a large multiple of hierarchical raw
        // T-count on INTDIV(4), so every functional refinement loses the
        // race; the raw rows themselves are always reported.
        dse.add_flow(Box::new(FunctionalFlow::default()));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let p = dse.explore_portfolio(&[Design::intdiv(4)], 1);
        let functional: Vec<_> = p
            .outcomes
            .iter()
            .filter(|o| o.flow_name.contains("functional") && (o.post_opt || o.post_resynth))
            .collect();
        assert!(!functional.is_empty());
        assert!(
            functional.iter().all(|o| o.cut_off),
            "functional refinements must lose the race"
        );
        assert!(functional.iter().all(|o| o.cost == o.raw_cost));
        let hier: Vec<_> = p
            .outcomes
            .iter()
            .filter(|o| o.flow_name.contains("hierarchical"))
            .collect();
        assert!(hier.iter().all(|o| !o.cut_off), "the leader always runs");
    }

    #[test]
    fn portfolio_records_raw_failures() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default())); // too large at 16
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let p = dse.explore_portfolio(&[Design::intdiv(16)], 2);
        assert_eq!(p.failures.len(), 1);
        assert!(p.failures[0].0.contains("functional"));
        // Only the hierarchical grid remains.
        assert_eq!(p.outcomes.len(), 4);
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        assert!(default_workers() >= 1);
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        assert_eq!(dse.explore_matrix(&[Design::intdiv(4)], 0), 1);
    }
}
