//! Design space exploration across flows (the paper's headline
//! capability: "the designer can optimize the synthesis output with
//! respect to several objectives such as space (number of qubits), time
//! (number of quantum operations), or runtime of the design flow").

use crate::design::Design;
use crate::flow::{Flow, FlowError, FlowOutcome, FrontendCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Optimization objective for picking a winner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimize qubits (space).
    Qubits,
    /// Minimize T-count (time on the quantum computer).
    TCount,
    /// Minimize flow runtime (design productivity).
    Runtime,
}

/// One worker thread per available CPU (at least one) — the default for
/// [`DesignSpaceExplorer::explore_matrix`] with `workers = 0`.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs a set of flows on a design and ranks the outcomes.
///
/// # Example
///
/// ```
/// use qda_core::design::Design;
/// use qda_core::dse::{DesignSpaceExplorer, Objective};
/// use qda_core::flow::{EsopFlow, FunctionalFlow};
///
/// let mut dse = DesignSpaceExplorer::new();
/// dse.add_flow(Box::new(FunctionalFlow::default()));
/// dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
/// dse.explore(&Design::intdiv(4));
/// let best = dse.best(Objective::Qubits).expect("at least one success");
/// assert_eq!(best.cost.qubits, 7); // TBS wins on qubits
/// ```
#[derive(Default)]
pub struct DesignSpaceExplorer {
    flows: Vec<Box<dyn Flow>>,
    outcomes: Vec<FlowOutcome>,
    failures: Vec<(String, FlowError)>,
}

impl DesignSpaceExplorer {
    /// An explorer with no flows registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a flow.
    pub fn add_flow(&mut self, flow: Box<dyn Flow>) {
        self.flows.push(flow);
    }

    /// Runs every registered flow on `design`, collecting successes and
    /// failures. Returns the number of successful outcomes added.
    ///
    /// The shared front end (parse → elaborate → AIG optimization) is
    /// computed once and reused by every flow that asks for the same
    /// optimization options.
    pub fn explore(&mut self, design: &Design) -> usize {
        self.explore_matrix(std::slice::from_ref(design), 1)
    }

    /// Runs the full flow × design matrix, dispatching jobs over `workers`
    /// OS threads (`0` means one per available CPU). Returns the number of
    /// successful outcomes added.
    ///
    /// Front ends are shared through a [`FrontendCache`], so each design
    /// is parsed and optimized once no matter how many flows consume it.
    /// Results are recorded in deterministic (design-major, then flow
    /// registration) order — a parallel run reports exactly what a serial
    /// run does, only sooner.
    pub fn explore_matrix(&mut self, designs: &[Design], workers: usize) -> usize {
        let workers = match workers {
            0 => default_workers(),
            w => w,
        };
        let cache = FrontendCache::new();
        let flows = &self.flows;
        let num_jobs = designs.len() * flows.len();
        type JobResult = Result<FlowOutcome, (String, FlowError)>;
        let slots: Vec<Mutex<Option<JobResult>>> =
            (0..num_jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let run_job = |job: usize| {
            let design = &designs[job / flows.len()];
            let flow = &flows[job % flows.len()];
            // Precheck before the cache lookup: an infeasible (design,
            // flow) pair must not force a front-end computation.
            let result = flow
                .precheck(design)
                .and_then(|()| cache.get_or_compute(design, &flow.frontend_options()))
                .and_then(|frontend| flow.run_with_frontend(design, &frontend))
                .map_err(|e| (flow.name(), e));
            *slots[job].lock().expect("slot lock") = Some(result);
        };
        if workers <= 1 {
            (0..num_jobs).for_each(run_job);
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers.min(num_jobs.max(1)) {
                    s.spawn(|| loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= num_jobs {
                            break;
                        }
                        run_job(job);
                    });
                }
            });
        }
        let mut added = 0;
        for slot in slots {
            match slot.into_inner().expect("slot lock").expect("job ran") {
                Ok(outcome) => {
                    self.outcomes.push(outcome);
                    added += 1;
                }
                Err(failure) => self.failures.push(failure),
            }
        }
        added
    }

    /// All successful outcomes so far.
    pub fn outcomes(&self) -> &[FlowOutcome] {
        &self.outcomes
    }

    /// Flows that failed, with reasons.
    pub fn failures(&self) -> &[(String, FlowError)] {
        &self.failures
    }

    /// The best outcome under an objective.
    pub fn best(&self, objective: Objective) -> Option<&FlowOutcome> {
        self.outcomes.iter().min_by_key(|o| match objective {
            Objective::Qubits => (o.cost.qubits as u64, o.cost.t_count),
            Objective::TCount => (o.cost.t_count, o.cost.qubits as u64),
            Objective::Runtime => (o.runtime.as_micros() as u64, o.cost.t_count),
        })
    }

    /// The Pareto-optimal outcomes in the (qubits, T-count) plane —
    /// exactly the trade-off surface the paper's Tables II–IV trace out.
    pub fn pareto_front(&self) -> Vec<&FlowOutcome> {
        let mut front: Vec<&FlowOutcome> = Vec::new();
        for o in &self.outcomes {
            let dominated = self.outcomes.iter().any(|p| {
                (p.cost.qubits < o.cost.qubits && p.cost.t_count <= o.cost.t_count)
                    || (p.cost.qubits <= o.cost.qubits && p.cost.t_count < o.cost.t_count)
            });
            if !dominated {
                front.push(o);
            }
        }
        front.sort_by_key(|o| o.cost.qubits);
        front
    }

    /// Total exploration time across all successful outcomes.
    pub fn total_runtime(&self) -> Duration {
        self.outcomes.iter().map(|o| o.runtime).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};

    fn explored(n: usize) -> DesignSpaceExplorer {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default()));
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        dse.explore(&Design::intdiv(n));
        dse
    }

    #[test]
    fn explores_all_flows() {
        let dse = explored(4);
        assert_eq!(dse.outcomes().len(), 3);
        assert!(dse.failures().is_empty());
    }

    #[test]
    fn objectives_pick_different_winners() {
        let dse = explored(5);
        let by_qubits = dse.best(Objective::Qubits).unwrap();
        let by_t = dse.best(Objective::TCount).unwrap();
        // TBS wins qubits; hierarchical wins T-count (the paper's central
        // trade-off).
        assert!(by_qubits.flow_name.contains("functional"));
        assert!(by_qubits.cost.qubits <= by_t.cost.qubits);
        assert!(by_t.cost.t_count <= by_qubits.cost.t_count);
    }

    #[test]
    fn pareto_front_is_monotone() {
        let dse = explored(5);
        let front = dse.pareto_front();
        assert!(!front.is_empty());
        for pair in front.windows(2) {
            assert!(pair[0].cost.qubits <= pair[1].cost.qubits);
            assert!(pair[0].cost.t_count >= pair[1].cost.t_count);
        }
    }

    #[test]
    fn failures_are_recorded_not_fatal() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default()));
        let added = dse.explore(&Design::intdiv(16)); // too large for TBS
        assert_eq!(added, 0);
        assert_eq!(dse.failures().len(), 1);
    }

    #[test]
    fn matrix_order_is_design_major_then_flow() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let designs = [Design::intdiv(4), Design::newton(4)];
        assert_eq!(dse.explore_matrix(&designs, 2), 4);
        let got: Vec<(String, String)> = dse
            .outcomes()
            .iter()
            .map(|o| (o.design.name(), o.flow_name.clone()))
            .collect();
        assert_eq!(got[0].0, "INTDIV(4)");
        assert_eq!(got[1].0, "INTDIV(4)");
        assert_eq!(got[2].0, "NEWTON(4)");
        assert_eq!(got[3].0, "NEWTON(4)");
        assert!(got[0].1.contains("ESOP") && got[1].1.contains("hierarchical"));
        assert!(got[2].1.contains("ESOP") && got[3].1.contains("hierarchical"));
    }

    #[test]
    fn matrix_records_failures_in_order_too() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default())); // fails at n = 16
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        let added = dse.explore_matrix(&[Design::intdiv(16)], 2);
        assert_eq!(added, 1);
        assert_eq!(dse.failures().len(), 1);
        assert!(dse.failures()[0].0.contains("functional"));
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        assert!(default_workers() >= 1);
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        assert_eq!(dse.explore_matrix(&[Design::intdiv(4)], 0), 1);
    }
}
