//! Design space exploration across flows (the paper's headline
//! capability: "the designer can optimize the synthesis output with
//! respect to several objectives such as space (number of qubits), time
//! (number of quantum operations), or runtime of the design flow").

use crate::design::Design;
use crate::flow::{Flow, FlowError, FlowOutcome};
use std::time::Duration;

/// Optimization objective for picking a winner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimize qubits (space).
    Qubits,
    /// Minimize T-count (time on the quantum computer).
    TCount,
    /// Minimize flow runtime (design productivity).
    Runtime,
}

/// Runs a set of flows on a design and ranks the outcomes.
///
/// # Example
///
/// ```
/// use qda_core::design::Design;
/// use qda_core::dse::{DesignSpaceExplorer, Objective};
/// use qda_core::flow::{EsopFlow, FunctionalFlow};
///
/// let mut dse = DesignSpaceExplorer::new();
/// dse.add_flow(Box::new(FunctionalFlow::default()));
/// dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
/// dse.explore(&Design::intdiv(4));
/// let best = dse.best(Objective::Qubits).expect("at least one success");
/// assert_eq!(best.cost.qubits, 7); // TBS wins on qubits
/// ```
#[derive(Default)]
pub struct DesignSpaceExplorer {
    flows: Vec<Box<dyn Flow>>,
    outcomes: Vec<FlowOutcome>,
    failures: Vec<(String, FlowError)>,
}

impl DesignSpaceExplorer {
    /// An explorer with no flows registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a flow.
    pub fn add_flow(&mut self, flow: Box<dyn Flow>) {
        self.flows.push(flow);
    }

    /// Runs every registered flow on `design`, collecting successes and
    /// failures. Returns the number of successful outcomes added.
    pub fn explore(&mut self, design: &Design) -> usize {
        let mut added = 0;
        for flow in &self.flows {
            match flow.run(design) {
                Ok(outcome) => {
                    self.outcomes.push(outcome);
                    added += 1;
                }
                Err(e) => self.failures.push((flow.name(), e)),
            }
        }
        added
    }

    /// All successful outcomes so far.
    pub fn outcomes(&self) -> &[FlowOutcome] {
        &self.outcomes
    }

    /// Flows that failed, with reasons.
    pub fn failures(&self) -> &[(String, FlowError)] {
        &self.failures
    }

    /// The best outcome under an objective.
    pub fn best(&self, objective: Objective) -> Option<&FlowOutcome> {
        self.outcomes.iter().min_by_key(|o| match objective {
            Objective::Qubits => (o.cost.qubits as u64, o.cost.t_count),
            Objective::TCount => (o.cost.t_count, o.cost.qubits as u64),
            Objective::Runtime => (o.runtime.as_micros() as u64, o.cost.t_count),
        })
    }

    /// The Pareto-optimal outcomes in the (qubits, T-count) plane —
    /// exactly the trade-off surface the paper's Tables II–IV trace out.
    pub fn pareto_front(&self) -> Vec<&FlowOutcome> {
        let mut front: Vec<&FlowOutcome> = Vec::new();
        for o in &self.outcomes {
            let dominated = self.outcomes.iter().any(|p| {
                (p.cost.qubits < o.cost.qubits && p.cost.t_count <= o.cost.t_count)
                    || (p.cost.qubits <= o.cost.qubits && p.cost.t_count < o.cost.t_count)
            });
            if !dominated {
                front.push(o);
            }
        }
        front.sort_by_key(|o| o.cost.qubits);
        front
    }

    /// Total exploration time across all successful outcomes.
    pub fn total_runtime(&self) -> Duration {
        self.outcomes.iter().map(|o| o.runtime).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};

    fn explored(n: usize) -> DesignSpaceExplorer {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default()));
        dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
        dse.add_flow(Box::new(HierarchicalFlow::default()));
        dse.explore(&Design::intdiv(n));
        dse
    }

    #[test]
    fn explores_all_flows() {
        let dse = explored(4);
        assert_eq!(dse.outcomes().len(), 3);
        assert!(dse.failures().is_empty());
    }

    #[test]
    fn objectives_pick_different_winners() {
        let dse = explored(5);
        let by_qubits = dse.best(Objective::Qubits).unwrap();
        let by_t = dse.best(Objective::TCount).unwrap();
        // TBS wins qubits; hierarchical wins T-count (the paper's central
        // trade-off).
        assert!(by_qubits.flow_name.contains("functional"));
        assert!(by_qubits.cost.qubits <= by_t.cost.qubits);
        assert!(by_t.cost.t_count <= by_qubits.cost.t_count);
    }

    #[test]
    fn pareto_front_is_monotone() {
        let dse = explored(5);
        let front = dse.pareto_front();
        assert!(!front.is_empty());
        for pair in front.windows(2) {
            assert!(pair[0].cost.qubits <= pair[1].cost.qubits);
            assert!(pair[0].cost.t_count >= pair[1].cost.t_count);
        }
    }

    #[test]
    fn failures_are_recorded_not_fatal() {
        let mut dse = DesignSpaceExplorer::new();
        dse.add_flow(Box::new(FunctionalFlow::default()));
        let added = dse.explore(&Design::intdiv(16)); // too large for TBS
        assert_eq!(added, 0);
        assert_eq!(dse.failures().len(), 1);
    }
}
