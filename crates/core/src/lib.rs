//! Design automation and design space exploration for quantum computers.
//!
//! This crate is the reproduction of the DATE 2017 paper's central
//! contribution: *design flows* that take an irreversible Verilog design
//! through classical logic synthesis into reversible logic synthesis, and
//! the *design space exploration* this enables.
//!
//! ```text
//! design level        INTDIV(n)      NEWTON(n)          (qda-arith::gen)
//!                          \            /
//! logic synthesis      parse → AIG → optimize            (qda-verilog,
//!                       /        |        \               qda-classical)
//!                     BDD      ESOP       XMG
//!                      |         |         |
//! reversible        embedding  REVS      REVS
//! synthesis          + TBS    (p = 0,1)  hierarchical    (qda-revsynth)
//!                      |         |         |
//!                   reversible circuit (qubits / T-count) (qda-rev)
//! ```
//!
//! # Example
//!
//! ```
//! use qda_core::design::Design;
//! use qda_core::flow::{EsopFlow, Flow};
//!
//! let outcome = EsopFlow::with_factoring(0).run(&Design::intdiv(5))?;
//! assert_eq!(outcome.cost.qubits, 10); // 2n lines at p = 0
//! # Ok::<(), qda_core::flow::FlowError>(())
//! ```

pub mod design;
pub mod dse;
pub mod flow;
pub mod report;

pub use design::Design;
pub use dse::{
    default_workers, DesignSpaceExplorer, Objective, Portfolio, PortfolioOutcome,
    PORTFOLIO_CUTOFF_FACTOR,
};
pub use flow::{
    compute_frontend, BudgetResource, BudgetViolation, EsopFlow, Flow, FlowBudget, FlowError,
    FlowOutcome, FrontendArtifacts, FrontendCache, FunctionalFlow, HierarchicalFlow, StageTimings,
};
