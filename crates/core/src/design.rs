//! Design-level entry points: the Verilog designs the flows start from.

use qda_logic::aig::Aig;
use qda_verilog::{elaborate, parse_module, VerilogError};
use std::fmt;

/// Which reciprocal implementation a design uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DesignKind {
    /// Integer division `2ⁿ / x` (paper §III-1).
    IntDiv,
    /// Newton–Raphson fixed point (paper §III-2).
    Newton,
    /// A design whose source arrived from outside the built-in generators
    /// (e.g. inline Verilog submitted to `qda-server`). The source itself
    /// is not stored — the submitter elaborates it into
    /// [`FrontendArtifacts`](crate::flow::FrontendArtifacts) and runs the
    /// flows through
    /// [`Flow::run_with_frontend`](crate::flow::Flow::run_with_frontend);
    /// only the input bitwidth rides along (the functional flow's
    /// explicit-permutation guard needs it).
    External,
}

/// A parameterized design: the reciprocal with a specific bitwidth,
/// expressed in Verilog.
///
/// # Example
///
/// ```
/// use qda_core::design::Design;
///
/// let d = Design::intdiv(8);
/// assert_eq!(d.name(), "INTDIV(8)");
/// let aig = d.to_aig()?;
/// assert_eq!(aig.num_pis(), 8);
/// # Ok::<(), qda_verilog::VerilogError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Design {
    kind: DesignKind,
    bits: usize,
}

impl Design {
    /// The INTDIV(n) design.
    pub fn intdiv(bits: usize) -> Self {
        Self {
            kind: DesignKind::IntDiv,
            bits,
        }
    }

    /// The NEWTON(n) design.
    pub fn newton(bits: usize) -> Self {
        Self {
            kind: DesignKind::Newton,
            bits,
        }
    }

    /// An externally-sourced design with `bits` primary inputs (see
    /// [`DesignKind::External`]). [`Design::to_aig`] fails for these —
    /// the caller owns the source and the elaboration.
    pub fn external(bits: usize) -> Self {
        Self {
            kind: DesignKind::External,
            bits,
        }
    }

    /// The design kind.
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    /// Input/output bitwidth `n`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Paper-style name, e.g. `INTDIV(8)`.
    pub fn name(&self) -> String {
        match self.kind {
            DesignKind::IntDiv => format!("INTDIV({})", self.bits),
            DesignKind::Newton => format!("NEWTON({})", self.bits),
            DesignKind::External => format!("EXTERNAL({})", self.bits),
        }
    }

    /// The Verilog source of the design. Empty for
    /// [`DesignKind::External`] — the source lives with the submitter,
    /// not the handle.
    pub fn verilog(&self) -> String {
        match self.kind {
            DesignKind::IntDiv => qda_arith::intdiv_verilog(self.bits),
            DesignKind::Newton => qda_arith::newton_verilog(self.bits),
            DesignKind::External => String::new(),
        }
    }

    /// Parses and elaborates the design into an AIG — the entry into the
    /// logic-synthesis level.
    ///
    /// # Errors
    ///
    /// Propagates parser/elaborator failures (which would indicate a
    /// generator bug), and fails for [`DesignKind::External`] handles,
    /// whose source is owned by the submitter.
    pub fn to_aig(&self) -> Result<Aig, VerilogError> {
        if self.kind == DesignKind::External {
            return Err(VerilogError::Elaborate {
                message: "external design handles carry no source; \
                          elaborate the submitted source and use run_with_frontend"
                    .to_string(),
            });
        }
        let module = parse_module(&self.verilog())?;
        elaborate(&module)
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(Design::intdiv(16).name(), "INTDIV(16)");
        assert_eq!(Design::newton(8).name(), "NEWTON(8)");
    }

    #[test]
    fn aig_matches_golden_models() {
        let d = Design::intdiv(6);
        let aig = d.to_aig().unwrap();
        for x in 1..64u64 {
            assert_eq!(aig.eval(x), qda_arith::recip_intdiv(6, x));
        }
        let d = Design::newton(5);
        let aig = d.to_aig().unwrap();
        for x in 1..32u64 {
            assert_eq!(aig.eval(x), qda_arith::recip_newton(5, x));
        }
    }

    #[test]
    fn external_designs_have_no_generator_source() {
        let d = Design::external(6);
        assert_eq!(d.name(), "EXTERNAL(6)");
        assert_eq!(d.bits(), 6);
        assert_eq!(d.kind(), DesignKind::External);
        assert!(d.verilog().is_empty());
        assert!(d.to_aig().is_err(), "no source to elaborate");
    }

    #[test]
    fn designs_are_value_types() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Design::intdiv(8));
        set.insert(Design::intdiv(8));
        set.insert(Design::newton(8));
        assert_eq!(set.len(), 2);
    }
}
