//! Cross-representation consistency: the same design pushed through every
//! intermediate representation must stay the same Boolean function at
//! every interface of Fig. 1.

use qda_classical::collapse::collapse_to_bdds;
use qda_classical::esop_extract::extract_multi_esop;
use qda_classical::exorcism::{minimize_esop, ExorcismOptions};
use qda_classical::rewrite::{optimize_aig, OptimizeOptions};
use qda_classical::xmg_map::map_to_xmg;
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow, FlowOutcome, FunctionalFlow, HierarchicalFlow};
use qda_logic::sim::{check_aig_equivalence, EquivalenceOutcome};
use qda_rev::state::BitState;
use qda_revsynth::embed::{minimum_additional_lines, optimum_embedding};
use qda_revsynth::hierarchical::CleanupStrategy;

fn designs() -> Vec<Design> {
    vec![
        Design::intdiv(5),
        Design::intdiv(7),
        Design::newton(4),
        Design::newton(6),
    ]
}

#[test]
fn aig_optimization_preserves_semantics() {
    for d in designs() {
        let aig = d.to_aig().unwrap();
        let opt = optimize_aig(&aig, &OptimizeOptions::default());
        assert_eq!(
            check_aig_equivalence(&aig, &opt, 12, 16),
            EquivalenceOutcome::Equivalent,
            "{d}"
        );
        assert!(
            opt.num_ands() <= aig.num_ands(),
            "{d}: optimizer grew the AIG"
        );
    }
}

#[test]
fn bdd_collapse_agrees_with_aig() {
    for d in designs() {
        let aig = d.to_aig().unwrap();
        let (mgr, bdds) = collapse_to_bdds(&aig, 1_000_000).unwrap();
        let n = aig.num_pis();
        for x in 0..(1u64 << n) {
            let y = aig.eval(x);
            for (j, &b) in bdds.iter().enumerate() {
                assert_eq!(mgr.eval(b, x), (y >> j) & 1 == 1, "{d} x={x} out={j}");
            }
        }
    }
}

#[test]
fn esop_extraction_and_minimization_agree_with_aig() {
    for d in designs() {
        let aig = d.to_aig().unwrap();
        let (mut mgr, bdds) = collapse_to_bdds(&aig, 1_000_000).unwrap();
        let mut esop = extract_multi_esop(&mut mgr, &bdds);
        let before = esop.len();
        minimize_esop(&mut esop, &ExorcismOptions::default());
        assert!(esop.len() <= before, "{d}: exorcism grew the ESOP");
        let n = aig.num_pis();
        for x in 0..(1u64 << n) {
            assert_eq!(esop.eval(x), aig.eval(x), "{d} x={x}");
        }
    }
}

#[test]
fn xmg_mapping_agrees_with_aig() {
    for d in designs() {
        let aig = d.to_aig().unwrap();
        let opt = optimize_aig(&aig, &OptimizeOptions::default());
        let xmg = map_to_xmg(&opt);
        let n = aig.num_pis();
        for x in 0..(1u64 << n) {
            assert_eq!(xmg.eval(x), aig.eval(x), "{d} x={x}");
        }
        // XMGs of arithmetic should contain XOR gates — that's their point.
        assert!(xmg.num_xors() > 0, "{d}: no XOR extracted");
    }
}

/// Every flow configuration, once with the post-synthesis optimizer on
/// (the default) and once off.
fn flow_pairs() -> Vec<(Box<dyn Flow>, Box<dyn Flow>)> {
    vec![
        (
            Box::new(FunctionalFlow::default()),
            Box::new(FunctionalFlow {
                post_opt: false,
                ..Default::default()
            }),
        ),
        (
            Box::new(EsopFlow::with_factoring(0)),
            Box::new(EsopFlow {
                post_opt: false,
                ..EsopFlow::with_factoring(0)
            }),
        ),
        (
            Box::new(EsopFlow::with_factoring(1)),
            Box::new(EsopFlow {
                post_opt: false,
                ..EsopFlow::with_factoring(1)
            }),
        ),
        (
            Box::new(HierarchicalFlow::default()),
            Box::new(HierarchicalFlow {
                post_opt: false,
                ..Default::default()
            }),
        ),
        (
            Box::new(HierarchicalFlow::with_strategy(CleanupStrategy::PerOutput)),
            Box::new(HierarchicalFlow {
                post_opt: false,
                ..HierarchicalFlow::with_strategy(CleanupStrategy::PerOutput)
            }),
        ),
        (
            Box::new(HierarchicalFlow::with_strategy(
                CleanupStrategy::KeepGarbage,
            )),
            Box::new(HierarchicalFlow {
                post_opt: false,
                ..HierarchicalFlow::with_strategy(CleanupStrategy::KeepGarbage)
            }),
        ),
    ]
}

/// Replays a flow outcome on every input and checks its output register
/// against the design's truth table.
fn check_outcome_against_table(outcome: &FlowOutcome, table: &[u64]) {
    for (x, &y) in table.iter().enumerate() {
        let mut s = BitState::zeros(outcome.circuit.num_lines());
        s.write_register(&outcome.input_lines, x as u64);
        outcome.circuit.apply(&mut s);
        assert_eq!(
            s.read_register(&outcome.output_lines),
            y,
            "{} x={x}",
            outcome.flow_name
        );
    }
}

#[test]
fn every_flow_verifies_with_post_opt_on_and_off_against_the_same_truth_table() {
    for d in [Design::intdiv(5), Design::newton(4)] {
        let aig = d.to_aig().unwrap();
        let table: Vec<u64> = (0..(1u64 << aig.num_pis())).map(|x| aig.eval(x)).collect();
        for (with_opt, without_opt) in flow_pairs() {
            let on = with_opt.run(&d).unwrap();
            let off = without_opt.run(&d).unwrap();
            assert!(on.opt_stats.is_some() && off.opt_stats.is_none());
            // Both circuits realize the same truth table…
            check_outcome_against_table(&on, &table);
            check_outcome_against_table(&off, &table);
            // …and the optimized one never costs more.
            let name = &on.flow_name;
            assert!(
                on.cost.t_count <= off.cost.t_count,
                "{d} {name}: T {} -> {}",
                off.cost.t_count,
                on.cost.t_count
            );
            assert!(
                on.cost.gates <= off.cost.gates,
                "{d} {name}: gates {} -> {}",
                off.cost.gates,
                on.cost.gates
            );
            assert_eq!(on.cost.qubits, off.cost.qubits, "{d} {name}");
        }
    }
}

#[test]
fn post_opt_strictly_reduces_bennett_hierarchical_gates() {
    // The acceptance bar of the optimizer PR: on the Bennett hierarchical
    // flow — compute–copy–uncompute leaves mirror pairs and X sandwiches —
    // the peephole pass must strictly reduce the gate count.
    for d in [Design::intdiv(5), Design::intdiv(6), Design::newton(5)] {
        let on = HierarchicalFlow::default().run(&d).unwrap();
        let off = HierarchicalFlow {
            post_opt: false,
            ..Default::default()
        }
        .run(&d)
        .unwrap();
        assert!(
            on.cost.gates < off.cost.gates,
            "{d}: {} -> {} gates",
            off.cost.gates,
            on.cost.gates
        );
        assert!(on.opt_stats.unwrap().total_rewrites() > 0);
    }
}

#[test]
fn reciprocal_needs_2n_minus_1_lines() {
    // The embedding result behind Table II: the reciprocal's largest
    // collision class forces exactly n − 1 additional lines.
    for n in [4usize, 5, 6, 7, 8] {
        let tts = Design::intdiv(n).to_aig().unwrap().to_truth_tables();
        assert_eq!(minimum_additional_lines(&tts), n - 1, "n={n}");
        let e = optimum_embedding(&tts);
        assert_eq!(e.num_lines(), 2 * n - 1, "n={n}");
        assert!(e.validate(&tts), "n={n}");
    }
}

#[test]
fn intdiv_and_newton_approximate_the_same_function() {
    // §V: "that the numbers are equivalent for INTDIV and NEWTON is not
    // necessarily expected, as NEWTON approximates 1/x". Check the designs
    // agree within rounding on most inputs.
    for n in [6usize, 8] {
        let a = Design::intdiv(n).to_aig().unwrap();
        let b = Design::newton(n).to_aig().unwrap();
        let mut close = 0u64;
        for x in 2..(1u64 << n) {
            let ya = a.eval(x) as i64;
            let yb = b.eval(x) as i64;
            if (ya - yb).abs() <= 2 {
                close += 1;
            }
        }
        let total = (1u64 << n) - 2;
        assert!(
            close * 100 >= total * 95,
            "n={n}: only {close}/{total} within 2 ulp"
        );
    }
}

#[test]
fn newton_embedding_may_differ_from_intdiv() {
    // Also from §V: the approximation "may have an effect on the maximum
    // occurrence of an output assignment" — compute both and require them
    // to be close (equal for these sizes).
    for n in [5usize, 6] {
        let a = Design::intdiv(n).to_aig().unwrap().to_truth_tables();
        let b = Design::newton(n).to_aig().unwrap().to_truth_tables();
        let ga = minimum_additional_lines(&a);
        let gb = minimum_additional_lines(&b);
        assert!(
            (ga as i64 - gb as i64).abs() <= 1,
            "n={n}: embedding lines {ga} vs {gb}"
        );
    }
}
