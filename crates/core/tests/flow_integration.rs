//! Integration tests: every design flow end to end, across crates
//! (`qda-verilog` → `qda-classical` → `qda-revsynth` → `qda-rev`).

use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow, FunctionalFlow, HierarchicalFlow};
use qda_rev::equiv::VerifyOutcome;
use qda_rev::state::BitState;
use qda_revsynth::hierarchical::CleanupStrategy;

/// Replays a flow outcome against the golden reciprocal model on every
/// input (the flows verify against the AIG; this closes the loop against
/// the independent software model).
fn check_against_golden(outcome: &qda_core::flow::FlowOutcome, golden: impl Fn(u64) -> u64) {
    let n = outcome.design.bits();
    for x in 1..(1u64 << n) {
        let mut s = BitState::zeros(outcome.circuit.num_lines());
        s.write_register(&outcome.input_lines, x);
        outcome.circuit.apply(&mut s);
        assert_eq!(
            s.read_register(&outcome.output_lines),
            golden(x),
            "{} x={x}",
            outcome.flow_name
        );
    }
}

#[test]
fn functional_flow_intdiv_matches_golden_model() {
    for n in [4usize, 5, 6] {
        let outcome = FunctionalFlow::default().run(&Design::intdiv(n)).unwrap();
        assert_eq!(outcome.cost.qubits, 2 * n - 1, "optimum embedding");
        check_against_golden(&outcome, |x| qda_arith::recip_intdiv(n, x));
    }
}

#[test]
fn functional_flow_newton_matches_golden_model() {
    for n in [4usize, 5] {
        let outcome = FunctionalFlow::default().run(&Design::newton(n)).unwrap();
        check_against_golden(&outcome, |x| qda_arith::recip_newton(n, x));
    }
}

#[test]
fn esop_flow_both_designs_and_factoring_levels() {
    for n in [5usize, 6] {
        for p in [0usize, 1, 2] {
            let flow = EsopFlow::with_factoring(p);
            let intdiv = flow.run(&Design::intdiv(n)).unwrap();
            if p == 0 {
                assert_eq!(intdiv.cost.qubits, 2 * n, "p=0 is exactly 2n lines");
            }
            check_against_golden(&intdiv, |x| qda_arith::recip_intdiv(n, x));
            let newton = flow.run(&Design::newton(n)).unwrap();
            check_against_golden(&newton, |x| qda_arith::recip_newton(n, x));
        }
    }
}

#[test]
fn hierarchical_flow_all_strategies() {
    for strategy in [
        CleanupStrategy::Bennett,
        CleanupStrategy::PerOutput,
        CleanupStrategy::KeepGarbage,
    ] {
        let flow = HierarchicalFlow::with_strategy(strategy);
        let outcome = flow.run(&Design::intdiv(5)).unwrap();
        check_against_golden(&outcome, |x| qda_arith::recip_intdiv(5, x));
    }
}

#[test]
fn flows_disagree_on_costs_but_agree_on_function() {
    let design = Design::intdiv(6);
    let functional = FunctionalFlow::default().run(&design).unwrap();
    let esop = EsopFlow::with_factoring(0).run(&design).unwrap();
    let hier = HierarchicalFlow::default().run(&design).unwrap();
    // The paper's central trade-off, as hard assertions:
    // qubits: functional < esop < hierarchical.
    assert!(functional.cost.qubits < esop.cost.qubits);
    assert!(esop.cost.qubits < hier.cost.qubits);
    // T-count: hierarchical < esop < functional.
    assert!(hier.cost.t_count < functional.cost.t_count);
    assert!(esop.cost.t_count < functional.cost.t_count);
    // All three compute the same function.
    for x in 0..64u64 {
        for o in [&functional, &esop, &hier] {
            let mut s = BitState::zeros(o.circuit.num_lines());
            s.write_register(&o.input_lines, x);
            o.circuit.apply(&mut s);
            assert_eq!(
                s.read_register(&o.output_lines),
                qda_arith::recip_intdiv(6, x.min(63)),
                "{} x={x}",
                o.flow_name
            );
        }
    }
}

#[test]
fn verification_outcomes_are_reported() {
    let outcome = EsopFlow::with_factoring(0).run(&Design::intdiv(4)).unwrap();
    assert_eq!(outcome.verification, VerifyOutcome::Verified);
    assert!(outcome.runtime.as_nanos() > 0);
    assert_eq!(outcome.flow_name, "ESOP (REVS, p = 0)");
}

#[test]
fn larger_hierarchical_instance_verifies_by_sampling() {
    // n = 16 exceeds the exhaustive limit; the flow falls back to
    // randomized verification, mirroring the paper's `cec` on large
    // designs.
    let outcome = HierarchicalFlow::default()
        .run(&Design::intdiv(16))
        .unwrap();
    assert!(matches!(
        outcome.verification,
        VerifyOutcome::ProbablyCorrect { .. }
    ));
    // Spot-check a few inputs against the golden model.
    for x in [1u64, 2, 3, 1000, 65535] {
        let mut s = BitState::zeros(outcome.circuit.num_lines());
        s.write_register(&outcome.input_lines, x);
        outcome.circuit.apply(&mut s);
        assert_eq!(
            s.read_register(&outcome.output_lines),
            qda_arith::recip_intdiv(16, x)
        );
    }
}
