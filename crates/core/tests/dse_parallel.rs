//! Parallel design space exploration is an optimization, not a semantic
//! change: the flow × design matrix must report exactly the same outcomes
//! in exactly the same order no matter how many workers run it.

use qda_core::design::Design;
use qda_core::dse::DesignSpaceExplorer;
use qda_core::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::deterministic_report;

fn fresh_explorer() -> DesignSpaceExplorer {
    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(HierarchicalFlow::default()));
    dse
}

#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let designs = [Design::intdiv(4), Design::intdiv(5), Design::newton(4)];
    let mut serial = fresh_explorer();
    let serial_added = serial.explore_matrix(&designs, 1);
    for workers in [2, 4] {
        let mut parallel = fresh_explorer();
        let parallel_added = parallel.explore_matrix(&designs, workers);
        assert_eq!(parallel_added, serial_added);
        assert_eq!(
            deterministic_report(parallel.outcomes()),
            deterministic_report(serial.outcomes()),
            "workers = {workers}"
        );
        // Beyond the report: the circuits themselves are identical.
        for (p, s) in parallel.outcomes().iter().zip(serial.outcomes()) {
            assert_eq!(p.circuit, s.circuit);
            assert_eq!(p.input_lines, s.input_lines);
            assert_eq!(p.output_lines, s.output_lines);
        }
    }
}

#[test]
fn explore_matches_matrix_on_one_design() {
    let design = Design::intdiv(4);
    let mut one = fresh_explorer();
    one.explore(&design);
    let mut matrix = fresh_explorer();
    matrix.explore_matrix(&[design], 1);
    assert_eq!(
        deterministic_report(one.outcomes()),
        deterministic_report(matrix.outcomes())
    );
}

/// DSE jobs nest pool use: each flow's back half runs the peephole
/// optimizer (support-disjoint component sharding), equivalence sweeps,
/// and — in the portfolio — the resynthesis candidate race, all on the
/// same shared worker pool the DSE jobs themselves ride. This must drain
/// without deadlock and report identically at any cap, repeatedly, on a
/// warm pool.
#[test]
fn portfolio_nests_pool_use_without_deadlock_and_stays_deterministic() {
    let designs = [Design::intdiv(4), Design::newton(4)];
    let serial = fresh_explorer().explore_portfolio(&designs, 1);
    let key = |p: &qda_core::dse::Portfolio| {
        p.outcomes
            .iter()
            .map(|o| {
                (
                    o.design.name(),
                    o.flow_name.clone(),
                    o.post_opt,
                    o.post_resynth,
                    o.cut_off,
                    o.cost,
                    o.circuit.clone(),
                )
            })
            .collect::<Vec<_>>()
    };
    let serial_key = key(&serial);
    assert!(!serial_key.is_empty());
    for round in 0..2 {
        for workers in [2, 4, 0] {
            let parallel = fresh_explorer().explore_portfolio(&designs, workers);
            assert_eq!(
                key(&parallel),
                serial_key,
                "workers = {workers}, round = {round}"
            );
            assert_eq!(parallel.failures.len(), serial.failures.len());
        }
    }
}

#[test]
fn parallel_failures_match_serial_failures() {
    // INTDIV(16) is too large for explicit TBS; the other flows succeed.
    let designs = [Design::intdiv(16)];
    let mut serial = fresh_explorer();
    serial.explore_matrix(&designs, 1);
    let mut parallel = fresh_explorer();
    parallel.explore_matrix(&designs, 4);
    let names = |d: &DesignSpaceExplorer| {
        d.failures()
            .iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&serial), names(&parallel));
    assert_eq!(serial.outcomes().len(), parallel.outcomes().len());
}
