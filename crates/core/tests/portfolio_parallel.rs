//! Determinism contract of portfolio exploration: the racing cutoff is
//! decided against the *settled* phase-1 minimum, so the whole portfolio
//! — row order, costs, circuits, cut-off flags, and the timing-free
//! report — must come out byte-identical for every worker count.

use qda_core::design::Design;
use qda_core::dse::DesignSpaceExplorer;
use qda_core::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::portfolio_report;

fn fresh_explorer() -> DesignSpaceExplorer {
    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(HierarchicalFlow::default()));
    dse
}

#[test]
fn portfolio_is_byte_identical_across_worker_counts() {
    let designs = [Design::intdiv(4), Design::intdiv(5), Design::newton(4)];
    let serial = fresh_explorer().explore_portfolio(&designs, 1);
    let serial_report = portfolio_report(&serial.outcomes);
    assert!(!serial.outcomes.is_empty());
    for workers in [2, 4] {
        let parallel = fresh_explorer().explore_portfolio(&designs, workers);
        assert_eq!(
            portfolio_report(&parallel.outcomes),
            serial_report,
            "deterministic report must not depend on worker count ({workers})"
        );
        assert_eq!(parallel.outcomes.len(), serial.outcomes.len());
        for (p, s) in parallel.outcomes.iter().zip(&serial.outcomes) {
            assert_eq!(p.circuit, s.circuit, "{} {}", s.design.name(), s.flow_name);
            assert_eq!(p.cut_off, s.cut_off);
            assert_eq!(p.raw_cost, s.raw_cost);
            assert_eq!(p.opt_stats, s.opt_stats);
            assert_eq!(p.resynth_stats, s.resynth_stats);
        }
        let failures: Vec<&String> = parallel.failures.iter().map(|(n, _)| n).collect();
        let expected: Vec<&String> = serial.failures.iter().map(|(n, _)| n).collect();
        assert_eq!(failures, expected);
    }
}

#[test]
fn portfolio_beats_or_matches_every_single_configuration() {
    // The anytime-optimizer claim: the portfolio's winner is at least as
    // good as each fixed single-flow configuration, including the
    // defaults the flow structs ship with.
    let design = Design::intdiv(5);
    let portfolio = fresh_explorer().explore_portfolio(&[design], 0);
    let best = portfolio.best_for(&design).expect("winner exists");
    for o in &portfolio.outcomes {
        assert!(best.cost.t_count <= o.cost.t_count);
    }
    // And it matches what the full default hierarchical flow (post_opt +
    // post_resynth on) produces, since that configuration is in the grid.
    use qda_core::flow::Flow;
    let reference = HierarchicalFlow::default().run(&design).unwrap();
    assert!(best.cost.t_count <= reference.cost.t_count);
}
