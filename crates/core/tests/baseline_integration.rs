//! Integration tests for the Table I baselines and the cross-table
//! comparisons the paper's §V discusses in prose.

use qda_arith::resdiv::resdiv_reciprocal;
use qda_arith::{qnewton_circuit, recip_intdiv};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::Comparison;
use qda_rev::state::BitState;

#[test]
fn resdiv_reciprocal_matches_intdiv_model() {
    for n in [4usize, 5] {
        let d = resdiv_reciprocal(n);
        for x in 1..(1u64 << n) {
            let mut s = BitState::zeros(d.circuit.num_lines());
            s.write_register(&d.divisor_lines, x);
            d.circuit.apply(&mut s);
            let y = s.read_register(&d.quotient_lines) & ((1 << n) - 1);
            assert_eq!(y, recip_intdiv(n, x), "n={n} x={x}");
        }
    }
}

#[test]
fn baseline_qubit_scaling_matches_paper() {
    // RESDIV: ~6n qubits (paper: exactly 6n; ours carries 3 bookkeeping
    // lines). QNEWTON: linear in n.
    for n in [8usize, 16] {
        let resdiv = resdiv_reciprocal(n).circuit.cost();
        assert_eq!(resdiv.qubits, 6 * n + 3);
        let qnewton = qnewton_circuit(n).circuit.cost();
        assert!(qnewton.qubits > resdiv.qubits, "QNEWTON uses more qubits");
        assert!(qnewton.qubits < 30 * n, "but stays linear in n");
    }
}

#[test]
fn tbs_beats_resdiv_on_qubits_by_paper_ratio() {
    // Paper: "the number of qubits is 3.2× smaller compared to the RESDIV
    // baseline for n = 8".
    let n = 8;
    let resdiv = resdiv_reciprocal(n).circuit.cost();
    let tbs = FunctionalFlow::default()
        .run(&Design::intdiv(n))
        .unwrap()
        .cost;
    let ratio = Comparison::of(resdiv.qubits as u64, tbs.qubits as u64).times_smaller();
    assert!(
        (2.5..4.5).contains(&ratio),
        "expected ~3.2x fewer qubits, got {ratio:.2}"
    );
    // …"with the price of a very high T-count".
    assert!(tbs.t_count > resdiv.t_count);
}

#[test]
fn esop_beats_resdiv_on_qubits_3x() {
    // Paper: "compared to the baseline the number of qubits is 3× smaller
    // for both n = 8 and n = 16" (ESOP flow, p = 0).
    let n = 8;
    let resdiv = resdiv_reciprocal(n).circuit.cost();
    let esop = EsopFlow::with_factoring(0)
        .run(&Design::intdiv(n))
        .unwrap()
        .cost;
    let ratio = Comparison::of(resdiv.qubits as u64, esop.qubits as u64).times_smaller();
    assert!(
        (2.5..4.0).contains(&ratio),
        "expected ~3x fewer qubits, got {ratio:.2}"
    );
}

#[test]
fn hierarchical_beats_resdiv_on_t_count() {
    // Paper: "the T-count is 6.2× smaller for n = 16" (hierarchical
    // INTDIV vs RESDIV), at many times the qubits.
    let n = 16;
    let resdiv = resdiv_reciprocal(n).circuit.cost();
    let hier = HierarchicalFlow::default()
        .run(&Design::intdiv(n))
        .unwrap()
        .cost;
    let t_ratio = Comparison::of(resdiv.t_count, hier.t_count).times_smaller();
    assert!(
        t_ratio > 2.0,
        "expected several-fold smaller T-count, got {t_ratio:.2}"
    );
    let q_ratio = Comparison::of(hier.cost_qubits(), resdiv.qubits as u64).times_smaller();
    assert!(q_ratio > 2.0, "hierarchical pays in qubits: {q_ratio:.2}");
}

trait QubitsU64 {
    fn cost_qubits(&self) -> u64;
}

impl QubitsU64 for qda_rev::cost::CircuitCost {
    fn cost_qubits(&self) -> u64 {
        self.qubits as u64
    }
}

#[test]
fn esop_t_count_sits_between_tbs_and_hierarchical() {
    // Table II vs III vs IV ordering at a common n.
    let n = 8;
    let tbs = FunctionalFlow::default()
        .run(&Design::intdiv(n))
        .unwrap()
        .cost;
    let esop = EsopFlow::with_factoring(0)
        .run(&Design::intdiv(n))
        .unwrap()
        .cost;
    assert!(esop.t_count < tbs.t_count / 10, "ESOP ≪ TBS in T-count");
}

#[test]
fn qnewton_accuracy_spot_checks() {
    let n = 8;
    let q = qnewton_circuit(n);
    for x in [2u64, 3, 7, 22, 100, 255] {
        let mut s = BitState::zeros(q.circuit.num_lines());
        s.write_register(&q.input_lines, x);
        q.circuit.apply(&mut s);
        let y = s.read_register(&q.output_lines);
        let approx = y as f64 / 256.0;
        let truth = 1.0 / x as f64;
        assert!(
            (approx - truth).abs() <= 4.0 / 256.0,
            "x={x}: {approx} vs {truth}"
        );
    }
}
