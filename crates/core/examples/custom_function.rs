//! Synthesizing a custom function *without* Verilog: build the truth
//! table directly, embed it optimally, and compare transformation-based
//! synthesis against the Bennett construction — the paper's §II machinery
//! exposed as a library.
//!
//! Run with: `cargo run --release -p qda-core --example custom_function`

use qda_logic::tt::MultiTruthTable;
use qda_revsynth::embed::{bennett_embedding, minimum_additional_lines, optimum_embedding};
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};

fn main() {
    // A 5-bit integer square root: floor(sqrt(x)), 3 output bits.
    let n = 5;
    let m = 3;
    let sqrt = MultiTruthTable::from_fn(n, m, |x| (x as f64).sqrt().floor() as u64);

    // How reversible is it? Eq. (3) of the paper: the minimum number of
    // additional lines is log2 of the largest collision class.
    let g = minimum_additional_lines(&sqrt);
    println!("floor(sqrt) on {n} bits → {m} bits");
    println!("max collisions: {}", sqrt.max_collisions());
    println!("minimum additional lines (Eq. 3): {g}");

    // Optimum embedding vs Bennett embedding.
    let opt = optimum_embedding(&sqrt);
    let ben = bennett_embedding(&sqrt);
    println!(
        "optimum embedding: {} lines — Bennett embedding: {} lines",
        opt.num_lines(),
        ben.num_lines()
    );
    assert!(opt.validate(&sqrt));
    assert!(ben.validate(&sqrt));

    // Functional synthesis of both.
    let c_opt = transformation_based_synthesis(opt.permutation(), TbsDirection::Bidirectional);
    let c_ben = transformation_based_synthesis(ben.permutation(), TbsDirection::Bidirectional);
    println!("\nTBS on the optimum embedding : {}", c_opt.cost());
    println!("TBS on the Bennett embedding : {}", c_ben.cost());

    // Verify the optimum-embedding circuit end to end: inputs on the low
    // n lines, sqrt on the low m output lines.
    for x in 0..(1u64 << n) {
        let out = c_opt.simulate_u64(x);
        assert_eq!(out & ((1 << m) - 1), sqrt.eval(x), "x={x}");
    }
    println!(
        "\ncircuit verified: floor(sqrt(x)) correct for all {} inputs",
        1 << n
    );

    // The space/time lever of the paper, on a custom function: the
    // optimum embedding saves lines; Bennett preserves the inputs.
    println!(
        "\nlines saved by optimum embedding: {}",
        ben.num_lines() - opt.num_lines()
    );
}
