//! The full journey of a *hand-written* Verilog module through every
//! level of the flow — design, logic synthesis, reversible synthesis —
//! with the intermediate representations printed at each stop.
//!
//! Run with: `cargo run --release -p qda-core --example verilog_to_quantum`

use qda_classical::collapse::collapse_to_bdds;
use qda_classical::esop_extract::extract_multi_esop;
use qda_classical::exorcism::{minimize_esop, ExorcismOptions};
use qda_classical::rewrite::{optimize_aig, OptimizeOptions};
use qda_classical::xmg_map::map_to_xmg;
use qda_revsynth::esop::{synthesize_esop, EsopSynthOptions};
use qda_revsynth::hierarchical::{synthesize_xmg, HierarchicalOptions};
use qda_verilog::{elaborate, parse_module};

// A 4-bit saturating increment-and-compare unit, written by hand: not a
// reciprocal, to show the flows are not special-cased to the paper's
// example function.
const SRC: &str = "
module satinc(a, limit, y, hit);
  input  [3:0] a;
  input  [3:0] limit;
  output [3:0] y;
  output hit;
  wire [3:0] inc;
  assign inc = a + 4'd1;
  assign hit = inc >= limit;
  assign y = hit ? limit : inc;
endmodule
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design level.
    println!("=== design level: Verilog ===\n{SRC}");
    let module = parse_module(SRC)?;
    println!(
        "parsed module {:?}: inputs {:?}, outputs {:?}",
        module.name,
        module.inputs().iter().map(|s| &s.name).collect::<Vec<_>>(),
        module.outputs().iter().map(|s| &s.name).collect::<Vec<_>>(),
    );

    // Logic synthesis level.
    let aig = elaborate(&module)?;
    println!("\n=== logic synthesis level ===");
    println!("elaborated: {aig:?}");
    let aig = optimize_aig(&aig, &OptimizeOptions::default());
    println!("optimized:  {aig:?}");

    // Interface representations.
    let (mut mgr, bdds) = collapse_to_bdds(&aig, 100_000)?;
    println!("collapsed:  {mgr:?}");
    let mut esop = extract_multi_esop(&mut mgr, &bdds);
    let removed = minimize_esop(&mut esop, &ExorcismOptions::default());
    println!(
        "ESOP:       {} cubes (exorcism removed {removed})",
        esop.len()
    );
    let xmg = map_to_xmg(&aig);
    println!("XMG:        {xmg:?}");

    // Reversible synthesis level: two back-ends side by side.
    println!("\n=== reversible synthesis level ===");
    let esop_circuit = synthesize_esop(&esop, &EsopSynthOptions::default());
    let c1 = esop_circuit.circuit.cost();
    println!("ESOP-based:   {c1}");
    let hier = synthesize_xmg(&xmg, &HierarchicalOptions::default());
    let c2 = hier.circuit.cost();
    println!("hierarchical: {c2}");

    // Check both circuits against the AIG on every input.
    for x in 0..256u64 {
        let expected = aig.eval(x);
        let mut s = qda_rev::state::BitState::zeros(esop_circuit.circuit.num_lines());
        s.write_register(&esop_circuit.input_lines, x);
        esop_circuit.circuit.apply(&mut s);
        assert_eq!(s.read_register(&esop_circuit.output_lines), expected);
        let mut s = qda_rev::state::BitState::zeros(hier.circuit.num_lines());
        s.write_register(&hier.input_lines, x);
        hier.circuit.apply(&mut s);
        assert_eq!(s.read_register(&hier.output_lines), expected);
    }
    println!("\nboth circuits verified against the AIG on all 256 inputs");
    Ok(())
}
