//! Quickstart: synthesize a reversible circuit for the reciprocal `1/x`
//! from Verilog, through one design flow, and inspect its cost.
//!
//! Run with: `cargo run --release -p qda-core --example quickstart`

use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow};
use qda_rev::state::BitState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A design is a Verilog module (generated here, but any
    //    combinational module in the supported subset works).
    let design = Design::intdiv(6);
    println!("=== {design} — generated Verilog ===\n{}", design.verilog());

    // 2. Run the ESOP flow (REVS, p = 0): Verilog → AIG → BDD → ESOP →
    //    reversible circuit. The outcome is verified against the design
    //    automatically.
    let outcome = EsopFlow::with_factoring(0).run(&design)?;
    println!("flow:      {}", outcome.flow_name);
    println!("qubits:    {}", outcome.cost.qubits);
    println!("T-count:   {}", outcome.cost.t_count);
    println!("gates:     {}", outcome.cost.gates);
    println!("runtime:   {:?}", outcome.runtime);
    println!("verified:  {:?}", outcome.verification);

    // 3. Execute the circuit on a classical basis state: compute 1/22.
    let mut state = BitState::zeros(outcome.circuit.num_lines());
    state.write_register(&outcome.input_lines, 22);
    outcome.circuit.apply(&mut state);
    let y = state.read_register(&outcome.output_lines);
    println!(
        "\ncircuit(22) = {y:#08b}  (≈ 1/22 = {:.6})",
        y as f64 / 64.0
    );
    assert_eq!(y, qda_arith::recip_intdiv(6, 22));
    Ok(())
}
