//! Design space exploration: run every flow on the same design and pick
//! winners by objective — the paper's headline capability ("the designer
//! can optimize the synthesis output with respect to several objectives
//! such as space, time, or runtime of the design flow").
//!
//! Run with: `cargo run --release -p qda-core --example design_space_exploration`

use qda_core::design::Design;
use qda_core::dse::{DesignSpaceExplorer, Objective};
use qda_core::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::{group_digits, Table};
use qda_revsynth::hierarchical::CleanupStrategy;

fn main() {
    let design = Design::intdiv(7);
    println!("exploring the design space of {design}\n");

    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(EsopFlow::with_factoring(1)));
    dse.add_flow(Box::new(HierarchicalFlow::with_strategy(
        CleanupStrategy::Bennett,
    )));
    dse.add_flow(Box::new(HierarchicalFlow::with_strategy(
        CleanupStrategy::PerOutput,
    )));
    let successes = dse.explore(&design);
    println!("{successes} flows succeeded\n");

    let mut table = Table::new(
        "all outcomes",
        vec!["flow", "qubits", "T-count", "runtime (ms)"],
    );
    for o in dse.outcomes() {
        table.add_row(vec![
            o.flow_name.clone(),
            o.cost.qubits.to_string(),
            group_digits(o.cost.t_count),
            format!("{:.1}", o.runtime.as_secs_f64() * 1e3),
        ]);
    }
    println!("{table}");

    // The same design, three different sweet spots.
    for objective in [Objective::Qubits, Objective::TCount, Objective::Runtime] {
        let best = dse.best(objective).expect("flows succeeded");
        println!(
            "minimize {objective:?}: use {:<34} → {} qubits, {} T",
            best.flow_name,
            best.cost.qubits,
            group_digits(best.cost.t_count)
        );
    }

    println!("\nPareto front (space–time trade-off the paper explores):");
    for o in dse.pareto_front() {
        println!(
            "  {:>6} qubits | {:>9} T | {}",
            o.cost.qubits,
            group_digits(o.cost.t_count),
            o.flow_name
        );
    }
}
