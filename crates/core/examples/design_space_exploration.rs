//! Design space exploration: run every flow on the same designs and pick
//! winners by objective — the paper's headline capability ("the designer
//! can optimize the synthesis output with respect to several objectives
//! such as space, time, or runtime of the design flow").
//!
//! The flow × design matrix is dispatched over worker threads with the
//! front end (parse → elaborate → AIG optimization) computed once per
//! design and shared by all flows; the example times a serial run against
//! a parallel run of the same matrix and checks they report identically.
//!
//! Run with: `cargo run --release -p qda-core --example design_space_exploration`

use qda_core::design::Design;
use qda_core::dse::{default_workers, DesignSpaceExplorer, Objective};
use qda_core::flow::{EsopFlow, Flow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::{deterministic_report, group_digits, Table};
use qda_revsynth::hierarchical::CleanupStrategy;
use std::time::Instant;

fn baseline_flows() -> Vec<Box<dyn Flow>> {
    vec![
        Box::new(FunctionalFlow::default()),
        Box::new(EsopFlow::with_factoring(0)),
        Box::new(EsopFlow::with_factoring(1)),
        Box::new(HierarchicalFlow::with_strategy(CleanupStrategy::Bennett)),
        Box::new(HierarchicalFlow::with_strategy(CleanupStrategy::PerOutput)),
    ]
}

fn explorer() -> DesignSpaceExplorer {
    let mut dse = DesignSpaceExplorer::new();
    for flow in baseline_flows() {
        dse.add_flow(flow);
    }
    dse
}

fn main() {
    let designs = [Design::intdiv(7), Design::newton(6)];
    println!(
        "exploring the design space of {} and {}\n",
        designs[0], designs[1]
    );

    // Baseline: the pre-cache behavior — every flow runs its own front
    // end (parse → elaborate → AIG optimization) from scratch.
    let start = Instant::now();
    for design in &designs {
        for flow in baseline_flows() {
            let _ = flow.run(design);
        }
    }
    let baseline_time = start.elapsed();

    // Cached serial: same matrix, front end computed once per design.
    let start = Instant::now();
    let mut serial = explorer();
    let successes = serial.explore_matrix(&designs, 1);
    let serial_time = start.elapsed();

    // Cached parallel: same matrix dispatched over worker threads.
    let workers = default_workers().max(2);
    let start = Instant::now();
    let mut parallel = explorer();
    parallel.explore_matrix(&designs, workers);
    let parallel_time = start.elapsed();

    assert_eq!(
        deterministic_report(serial.outcomes()),
        deterministic_report(parallel.outcomes()),
        "parallel exploration must report exactly what serial does"
    );
    println!("{successes} flow runs succeeded");
    println!(
        "uncached baseline:          {:.3}s  (front end re-run by all {} flows)",
        baseline_time.as_secs_f64(),
        baseline_flows().len(),
    );
    println!(
        "shared front-end, serial:   {:.3}s  ({:.2}x vs baseline)",
        serial_time.as_secs_f64(),
        baseline_time.as_secs_f64() / serial_time.as_secs_f64()
    );
    println!(
        "shared front-end, {workers} workers: {:.3}s  ({:.2}x vs baseline; thread-level \
         speedup needs >1 CPU)\n",
        parallel_time.as_secs_f64(),
        baseline_time.as_secs_f64() / parallel_time.as_secs_f64()
    );

    let dse = parallel;
    let mut table = Table::new(
        "all outcomes",
        vec!["design", "flow", "qubits", "T-count", "runtime (ms)"],
    );
    for o in dse.outcomes() {
        table.add_row(vec![
            o.design.name(),
            o.flow_name.clone(),
            o.cost.qubits.to_string(),
            group_digits(o.cost.t_count),
            format!("{:.1}", o.runtime.as_secs_f64() * 1e3),
        ]);
    }
    println!("{table}");

    let mut stages = Table::new(
        "per-stage timings (s)",
        vec![
            "flow",
            "parse+elab",
            "optimize",
            "synthesis",
            "post-opt",
            "resynth",
            "verify",
            "total",
        ],
    );
    for o in dse.outcomes() {
        stages.add_row(Table::stage_row(o));
    }
    println!("{stages}");

    // The same design, three different sweet spots.
    for objective in [Objective::Qubits, Objective::TCount, Objective::Runtime] {
        let best = dse.best(objective).expect("flows succeeded");
        println!(
            "minimize {objective:?}: use {:<34} → {} qubits, {} T",
            best.flow_name,
            best.cost.qubits,
            group_digits(best.cost.t_count)
        );
    }

    println!("\nPareto front (space–time trade-off the paper explores):");
    for o in dse.pareto_front() {
        println!(
            "  {:>6} qubits | {:>9} T | {} | {}",
            o.cost.qubits,
            group_digits(o.cost.t_count),
            o.design.name(),
            o.flow_name
        );
    }
}
