//! Mutation suite: seed one defect into a known-clean flow-style circuit
//! and assert the analyzer fires the *right* diagnostic code for it.
//!
//! A linter that merely stays quiet on clean circuits is unfalsifiable;
//! each test here is the positive half of the contract — every analysis
//! has at least one seeded defect it provably catches. The baseline is a
//! compute–copy–uncompute Bennett cascade, the exact shape the
//! hierarchical flow emits.

use qda_analyze::{analyze, analyze_gates, CircuitInterface, Code, Severity};
use qda_rev::gate::Control;
use qda_rev::{Circuit, Gate};

/// The clean baseline: `out ⊕= a·b` with ancilla 2 computed and
/// uncomputed around the copy (lines: a=0, b=1, helper=2, out=3).
fn bennett_and() -> Circuit {
    let mut c = Circuit::new(4);
    c.toffoli(0, 1, 2);
    c.cnot(2, 3);
    c.toffoli(0, 1, 2);
    c
}

fn bennett_iface() -> CircuitInterface {
    CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true)
}

fn codes(report: &qda_analyze::Report) -> Vec<Code> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn the_unmutated_baseline_is_totally_clean() {
    let report = analyze(&bennett_and(), &bennett_iface());
    assert!(report.diagnostics.is_empty(), "{}", report.render_human());
}

// ---- analysis 1: ancilla lifecycle ----

#[test]
fn mutation_skip_the_uncompute_gate_fires_dirty_ancilla() {
    let mut c = bennett_and();
    let gates: Vec<Gate> = c.gates()[..2].to_vec();
    c = Circuit::new(4);
    for g in gates {
        c.add_gate(g);
    }
    let report = analyze(&c, &bennett_iface());
    assert_eq!(codes(&report), vec![Code::DirtyAncilla]);
    assert_eq!(report.diagnostics[0].severity, Severity::Deny);
    assert_eq!(report.diagnostics[0].span.line, Some(2));
}

#[test]
fn mutation_swap_a_control_polarity_fires_dirty_ancilla() {
    // Uncompute with a flipped polarity leaves a·b ⊕ a·¬b = a on the
    // helper: provably nonzero, so Deny (not just a Note).
    let mut c = Circuit::new(4);
    c.toffoli(0, 1, 2);
    c.cnot(2, 3);
    c.add_gate(Gate::mct(
        vec![Control::positive(0), Control::negative(1)],
        2,
    ));
    let report = analyze(&c, &bennett_iface());
    assert!(
        codes(&report).contains(&Code::DirtyAncilla),
        "{}",
        report.render_human()
    );
    assert!(!report.is_clean(Severity::Deny));
}

#[test]
fn mutation_release_a_live_line_fires_release_of_live() {
    // Release the helper between compute and uncompute, while it still
    // provably holds a·b.
    let iface = bennett_iface().with_releases(vec![(2, 1)]);
    let report = analyze(&bennett_and(), &iface);
    assert!(codes(&report).contains(&Code::ReleaseOfLive));
}

#[test]
fn mutation_read_a_released_line_fires_use_after_release() {
    // Release the helper after the uncompute, then append a gate that
    // still reads it as a control.
    let mut c = bennett_and();
    c.cnot(2, 3);
    let iface = bennett_iface().with_releases(vec![(2, 3)]);
    let report = analyze(&c, &iface);
    assert!(codes(&report).contains(&Code::UseAfterRelease));
}

// ---- analysis 2: constant propagation ----

#[test]
fn mutation_gate_a_copy_on_an_untouched_zero_line_fires_const_dead() {
    // Positive control on helper line 2 before anything wrote it: the
    // gate can never fire under the |0⟩-start contract.
    let mut c = Circuit::new(4);
    c.toffoli(0, 2, 3);
    let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], false);
    let report = analyze(&c, &iface);
    assert!(codes(&report).contains(&Code::ConstDeadGate));
}

#[test]
fn mutation_negative_control_on_a_zero_line_fires_const_control() {
    // A negative control on a still-zero line is always satisfied: the
    // control is droppable, the gate is not.
    let mut c = Circuit::new(4);
    c.add_gate(Gate::mct(
        vec![Control::positive(0), Control::negative(2)],
        3,
    ));
    let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], false);
    let report = analyze(&c, &iface);
    assert!(codes(&report).contains(&Code::ConstControl));
    assert!(!codes(&report).contains(&Code::ConstDeadGate));
}

// ---- analysis 3: dead-cone elimination ----

#[test]
fn mutation_orphan_a_cone_fires_dead_gate() {
    // Under a garbage-tolerant interface, a write to the helper after
    // its last observable read reaches nothing.
    let mut c = bennett_and();
    c.cnot(0, 2);
    let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], false);
    let report = analyze(&c, &iface);
    let dead: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::DeadGate)
        .collect();
    assert!(!dead.is_empty());
    // The dead write is the appended gate (index 3). The uncompute
    // toffoli (index 2) is also unobservable once nothing reads line 2.
    assert!(dead.iter().any(|d| d.span.gates == Some((3, 3))));
}

#[test]
fn the_same_orphan_is_not_dead_when_cleanliness_is_observable() {
    // With require_clean, every ancilla's final value is observable, so
    // the dead-cone analysis must stay quiet (the lifecycle analysis
    // complains instead — the line no longer ends at zero).
    let mut c = bennett_and();
    c.cnot(0, 2);
    let report = analyze(&c, &bennett_iface());
    assert!(!codes(&report).contains(&Code::DeadGate));
    assert!(codes(&report).contains(&Code::DirtyAncilla));
}

// ---- analysis 4: static cost / depth ----

#[test]
fn depth_metrics_expose_the_serialization_a_mutation_introduces() {
    let baseline = analyze(&bennett_and(), &bennett_iface());
    assert_eq!(baseline.metrics.depth.logical_depth, 3);
    assert_eq!(baseline.metrics.depth.t_depth, 2);

    // Stacking a dependent chain on the output strictly deepens both.
    let mut c = bennett_and();
    c.toffoli(1, 3, 2);
    c.toffoli(1, 2, 3);
    c.toffoli(1, 3, 2);
    let deeper = analyze(
        &c,
        &CircuitInterface::hierarchical(4, vec![0, 1], vec![3], false),
    );
    assert!(deeper.metrics.depth.logical_depth > baseline.metrics.depth.logical_depth);
    assert!(deeper.metrics.depth.t_depth > baseline.metrics.depth.t_depth);
}

// ---- analysis 5: structural well-formedness ----

#[test]
fn mutation_out_of_bounds_target_fires_line_out_of_bounds() {
    let gates = vec![Gate::toffoli(0, 1, 2), Gate::cnot(1, 9)];
    let report = analyze_gates(4, &gates, &bennett_iface());
    assert!(codes(&report).contains(&Code::LineOutOfBounds));
    assert_eq!(report.diagnostics[0].severity, Severity::Deny);
}

#[test]
fn mutation_inconsistent_interface_fires_bad_interface() {
    let c = bennett_and();
    let iface = CircuitInterface::hierarchical(4, vec![0, 0], vec![3], true);
    let report = analyze(&c, &iface);
    assert!(codes(&report).contains(&Code::BadInterface));
}
