//! Property suite: the analyzer must not invent violations.
//!
//! Two laws pin this down. First, **no false positives**: an arbitrary
//! well-formed circuit under the functional contract (no ancillae, no
//! cleanliness promise) has nothing to deny. Second, **optimization
//! monotonicity**: peephole + const-prop optimization under the same
//! |0⟩-start assumption the analyzer uses can only *remove* deny-level
//! findings, never add lines to complain about — the property the flows
//! rely on when they lint the post-optimization circuit.

use proptest::prelude::*;
use qda_analyze::{analyze, CircuitInterface, Code, Severity};
use qda_rev::opt::{optimize_assuming, OptOptions};
use qda_rev::testkit::arb_mpmct_circuit;

/// The deny-level findings as comparable (code, line) keys.
fn deny_keys(report: &qda_analyze::Report) -> Vec<(Code, Option<usize>)> {
    report.denials().map(|d| (d.code, d.span.line)).collect()
}

proptest! {
    #[test]
    fn functional_circuits_are_never_denied(c in arb_mpmct_circuit(1..6, 24)) {
        let iface = CircuitInterface::functional(c.num_lines());
        let report = analyze(&c, &iface);
        prop_assert!(
            report.is_clean(Severity::Deny),
            "false positive on a functional circuit:\n{}",
            report.render_human()
        );
    }

    #[test]
    fn optimization_never_introduces_deny_findings(
        c in arb_mpmct_circuit(2..6, 16),
        input_mask in any::<u64>(),
    ) {
        // Derive a hierarchical contract from the drawn mask: some lines
        // are inputs, the rest start at |0⟩ and must end clean. Random
        // circuits routinely violate that — the law under test is that
        // the *optimized* circuit never violates it in a place the
        // original did not.
        let n = c.num_lines();
        let inputs: Vec<usize> = (0..n).filter(|l| (input_mask >> l) & 1 == 1).collect();
        let iface = CircuitInterface::hierarchical(n, inputs, vec![], true);
        let before = analyze(&c, &iface);
        let opt = optimize_assuming(&c, &OptOptions::default(), &iface.zero_lines());
        let after = analyze(&opt.circuit, &iface);
        let before_keys = deny_keys(&before);
        for key in deny_keys(&after) {
            prop_assert!(
                before_keys.contains(&key),
                "optimization introduced {:?}\nbefore:\n{}after:\n{}",
                key,
                before.render_human(),
                after.render_human()
            );
        }
    }
}
