//! Ancilla lifecycle analysis: every helper line provably returns to
//! |0⟩ before it is released or the circuit ends.
//!
//! Two engines run in a single forward pass:
//!
//! * a **structural Bennett-pairing** fast path — per-line stacks of
//!   "pending writes" `(controls, control versions)` where matching
//!   writes cancel in LIFO order, proving `value = initial value`
//!   without any algebra; and
//! * the **bounded symbolic engine** of [`crate::sym`], whose canonical
//!   XOR-of-products form proves a line constant 0 (or definitely not).
//!
//! A line is *clean* at a checkpoint if either engine proves it zero. A
//! provably nonzero line yields a deny-level diagnostic
//! ([`Code::ReleaseOfLive`] mid-circuit, [`Code::DirtyAncilla`] at the
//! end); an unprovable one only a note ([`Code::UnprovenAncilla`]) —
//! the analyzer never denies on uncertainty. Reads of a released line
//! before a re-initialising write are [`Code::UseAfterRelease`].

use qda_rev::GateArena;

use crate::diag::{Code, Diagnostic, Span};
use crate::interface::CircuitInterface;
use crate::sym::SymState;

/// One pending (uncancelled) write onto a line: the controls it fired
/// under, with the version each control line had at that moment.
type PendingWrite = Vec<(usize, bool, u64)>;

/// Runs the lifecycle analysis over the packed arena, appending
/// findings to `diags`.
pub fn check(arena: &GateArena, iface: &CircuitInterface, diags: &mut Vec<Diagnostic>) {
    let gates: Vec<_> = arena.iter().map(|(_, g)| g).collect();
    let n = iface.num_lines;
    let mut sym = SymState::for_interface(iface);
    // Structural engine state.
    let mut versions = vec![0u64; n];
    let mut stacks: Vec<Vec<PendingWrite>> = vec![Vec::new(); n];
    // Release bookkeeping: position of the release a line is still under.
    let mut released: Vec<Option<usize>> = vec![None; n];

    let mut releases: Vec<(usize, usize)> = iface.releases.clone();
    releases.sort_by_key(|&(_, pos)| pos);
    let mut next_release = 0;

    for position in 0..=gates.len() {
        // Releases scheduled before the gate at `position` executes.
        while next_release < releases.len() && releases[next_release].1 <= position {
            let (line, pos) = releases[next_release];
            next_release += 1;
            if line >= n || pos < position {
                continue; // out-of-range or already handled; wellformed reports it
            }
            let structurally_clean = stacks[line].is_empty();
            if !structurally_clean && sym.value(line).is_provably_nonzero() {
                diags.push(
                    Diagnostic::new(
                        Code::ReleaseOfLive,
                        Span::gate_line(pos.min(gates.len().saturating_sub(1)), line),
                        format!("line {line} is released at gate {pos} while provably nonzero"),
                    )
                    .with_suggestion(format!("uncompute line {line} before releasing it")),
                );
            } else if !structurally_clean && !sym.value(line).is_zero() {
                diags.push(Diagnostic::new(
                    Code::UnprovenAncilla,
                    Span::line(line),
                    format!(
                        "cannot prove line {line} clean at its release (gate {pos}): \
                         symbolic bound exceeded"
                    ),
                ));
            }
            // The allocator now owns the line and will hand it back as
            // |0⟩; track it as such so a reuse analyzes cleanly.
            sym.reset(line);
            stacks[line].clear();
            released[line] = Some(pos);
        }
        if position == gates.len() {
            break;
        }
        let gate = &gates[position];

        // Use-after-release: reading a released line before it is
        // re-initialised by a target write.
        for c in gate.controls() {
            if let Some(rel) = released[c.line()] {
                diags.push(
                    Diagnostic::new(
                        Code::UseAfterRelease,
                        Span::gate_line(position, c.line()),
                        format!(
                            "gate {position} controls on line {} after its release at gate {rel}",
                            c.line()
                        ),
                    )
                    .with_suggestion("allocate a fresh line or move the release later"),
                );
            }
        }
        // A target write to a released line is its re-allocation: the
        // allocator handed back a |0⟩ line and the builder is computing
        // onto it again.
        let t = gate.target();
        if released[t].is_some() {
            released[t] = None;
            sym.reset(t);
            stacks[t].clear();
        }

        // Structural engine: pair up the write with a matching pending
        // one (same controls, same control versions) or push it.
        let entry: PendingWrite = gate
            .controls()
            .map(|c| (c.line(), c.is_positive(), versions[c.line()]))
            .collect();
        if stacks[t].last() == Some(&entry) {
            stacks[t].pop();
        } else {
            stacks[t].push(entry);
        }
        versions[t] += 1;

        sym.apply_packed(gate);
    }

    // End of circuit: every ancilla must be clean when the flow says so.
    if iface.require_clean {
        for line in iface.ancilla_lines() {
            if line >= n || released[line].is_some() {
                continue; // released lines were checked at their release
            }
            let structurally_clean = stacks[line].is_empty();
            if structurally_clean || sym.value(line).is_zero() {
                continue;
            }
            if sym.value(line).is_provably_nonzero() {
                diags.push(
                    Diagnostic::new(
                        Code::DirtyAncilla,
                        Span::line(line),
                        format!(
                            "ancilla line {line} ends provably nonzero but the flow \
                             requires clean ancillae"
                        ),
                    )
                    .with_suggestion(format!("add the uncompute (Bennett) pass for line {line}")),
                );
            } else {
                diags.push(Diagnostic::new(
                    Code::UnprovenAncilla,
                    Span::line(line),
                    format!("cannot prove ancilla line {line} clean: symbolic bound exceeded"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::Circuit;

    fn run(c: &Circuit, iface: &CircuitInterface) -> Vec<Code> {
        let mut diags = Vec::new();
        check(c.packed(), iface, &mut diags);
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn bennett_shape_is_clean_and_skipping_the_uncompute_is_dirty() {
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.cnot(2, 3);
        c.toffoli(0, 1, 2);
        let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true);
        assert_eq!(run(&c, &iface), vec![]);

        let mut bad = Circuit::new(4);
        bad.toffoli(0, 1, 2);
        bad.cnot(2, 3);
        // uncompute skipped
        assert_eq!(run(&bad, &iface), vec![Code::DirtyAncilla]);
    }

    #[test]
    fn release_of_live_and_use_after_release_fire() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2); // line 2 = a·b, live
        let iface =
            CircuitInterface::hierarchical(3, vec![0, 1], vec![], true).with_releases(vec![(2, 1)]);
        assert_eq!(run(&c, &iface), vec![Code::ReleaseOfLive]);

        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.toffoli(0, 1, 2); // clean again
        c.cnot(2, 3); // reads line 2 after its release below
        let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true)
            .with_releases(vec![(2, 2)]);
        assert_eq!(run(&c, &iface), vec![Code::UseAfterRelease]);
    }

    #[test]
    fn reuse_after_release_is_clean() {
        // Release line 2 clean, then recompute onto it (fresh |0⟩) and
        // uncompute again: no diagnostics.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.toffoli(0, 1, 2);
        // release of line 2 happens here (position 2)
        c.cnot(0, 2); // re-allocation: target write re-initialises
        c.cnot(0, 2);
        let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true)
            .with_releases(vec![(2, 2)]);
        assert_eq!(run(&c, &iface), vec![]);
    }

    #[test]
    fn structural_pairing_survives_interleaved_writes() {
        // The two Toffolis targeting line 2 sandwich a CNOT that also
        // writes line 2: LIFO pairing must NOT pair across it, but the
        // inner pair cancels first, then the outer pair.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.cnot(0, 2);
        c.cnot(0, 2);
        c.toffoli(0, 1, 2);
        let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true);
        assert_eq!(run(&c, &iface), vec![]);
    }

    #[test]
    fn rewritten_control_blocks_structural_pairing_but_symbolic_decides() {
        // Between the pair, the control line 1 is rewritten and restored;
        // versions differ so the structural engine cannot pair, but the
        // symbolic engine still proves line 2 clean.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.not(1);
        c.not(1);
        c.toffoli(0, 1, 2);
        let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true);
        assert_eq!(run(&c, &iface), vec![]);
    }
}
