//! Bounded symbolic simulation over XOR-of-products (PPRM) forms.
//!
//! Each line's value is tracked as a positive-polarity Reed–Muller
//! expression: an XOR of product terms over the primary-input variables,
//! stored as a set of bit masks (bit *i* = input ordinal *i*). PPRM is a
//! canonical form, so the empty set proves the line is constant 0 and a
//! non-empty set proves it is *not* identically 0 — exactly the dichotomy
//! the ancilla-lifecycle analysis needs. The representation is bounded:
//! once an expression would exceed [`TERM_LIMIT`] product terms (or more
//! than [`MAX_TRACKED_INPUTS`] inputs exist) the value degrades to
//! [`LineVal::Top`], which the analyses must treat as "unknown", never as
//! a violation.

use std::collections::BTreeSet;

use qda_rev::{Control, Gate, PackedGate};

use crate::interface::CircuitInterface;

/// Maximum number of product terms per line before degrading to `Top`.
pub const TERM_LIMIT: usize = 256;

/// Maximum pairwise products computed by one AND before degrading.
const WORK_LIMIT: usize = 16_384;

/// Total pairwise-product budget of one [`SymState`] across a whole
/// circuit. Once spent, further products degrade to `Top`, bounding the
/// analysis to near-linear time on any input.
pub const SYM_WORK_BUDGET: usize = 2_000_000;

/// Inputs beyond this ordinal cannot be tracked in a `u128` mask.
pub const MAX_TRACKED_INPUTS: usize = 128;

/// Symbolic value of a single line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LineVal {
    /// Exact PPRM: XOR of the product terms in the set. Empty set is the
    /// constant 0; the set containing only the empty mask is constant 1.
    Exact(BTreeSet<u128>),
    /// Unknown: a resource bound was exceeded somewhere upstream.
    Top,
}

impl LineVal {
    /// The constant 0.
    pub fn zero() -> Self {
        LineVal::Exact(BTreeSet::new())
    }

    /// The constant 1 (the empty product term).
    pub fn one() -> Self {
        LineVal::Exact([0u128].into())
    }

    /// The input variable with the given ordinal.
    pub fn var(ordinal: usize) -> Self {
        debug_assert!(ordinal < MAX_TRACKED_INPUTS);
        LineVal::Exact([1u128 << ordinal].into())
    }

    /// Provably the constant 0?
    pub fn is_zero(&self) -> bool {
        matches!(self, LineVal::Exact(t) if t.is_empty())
    }

    /// Provably the constant 1?
    pub fn is_one(&self) -> bool {
        matches!(self, LineVal::Exact(t) if t.len() == 1 && t.contains(&0))
    }

    /// Provably *not* identically 0? (PPRM is canonical, so any
    /// non-empty exact term set denotes a function that is 1 somewhere.)
    pub fn is_provably_nonzero(&self) -> bool {
        matches!(self, LineVal::Exact(t) if !t.is_empty())
    }

    /// XOR of two values; `Top` absorbs.
    pub fn xor(&self, other: &LineVal) -> LineVal {
        match (self, other) {
            (LineVal::Exact(a), LineVal::Exact(b)) => {
                let mut out = a.clone();
                for t in b {
                    if !out.remove(t) {
                        out.insert(*t);
                    }
                }
                if out.len() > TERM_LIMIT {
                    LineVal::Top
                } else {
                    LineVal::Exact(out)
                }
            }
            _ => LineVal::Top,
        }
    }

    /// AND of two values. A provably-0 factor annihilates even a `Top`
    /// one; otherwise `Top` absorbs.
    pub fn and(&self, other: &LineVal) -> LineVal {
        let mut unlimited = usize::MAX;
        self.and_with_budget(other, &mut unlimited)
    }

    /// AND with an external work budget: the pairwise-product count is
    /// charged against `work_left`, and an unaffordable product degrades
    /// to `Top` (always sound, just less precise). This is what keeps
    /// whole-circuit analysis near-linear on pathological inputs.
    pub fn and_with_budget(&self, other: &LineVal, work_left: &mut usize) -> LineVal {
        if self.is_zero() || other.is_zero() {
            return LineVal::zero();
        }
        match (self, other) {
            (LineVal::Exact(a), LineVal::Exact(b)) => {
                let cost = a.len().saturating_mul(b.len());
                if cost > WORK_LIMIT || cost > *work_left {
                    *work_left = work_left.saturating_sub(cost.min(WORK_LIMIT));
                    return LineVal::Top;
                }
                *work_left -= cost;
                let mut out = BTreeSet::new();
                for ta in a {
                    for tb in b {
                        let t = ta | tb; // x·x = x, so AND of terms is mask union
                        if !out.remove(&t) {
                            out.insert(t);
                        }
                    }
                }
                if out.len() > TERM_LIMIT {
                    LineVal::Top
                } else {
                    LineVal::Exact(out)
                }
            }
            _ => LineVal::Top,
        }
    }

    /// Logical negation: XOR with the constant 1.
    pub fn negate(&self) -> LineVal {
        self.xor(&LineVal::one())
    }
}

/// Per-line symbolic state, advanced gate by gate.
#[derive(Clone, Debug)]
pub struct SymState {
    vals: Vec<LineVal>,
    work_left: usize,
}

impl SymState {
    /// Initial state for an interface: input lines hold their variable,
    /// every other line the constant 0. With more than
    /// [`MAX_TRACKED_INPUTS`] inputs, the excess inputs start at `Top`.
    pub fn for_interface(iface: &CircuitInterface) -> SymState {
        let mut vals = vec![LineVal::zero(); iface.num_lines];
        for (ordinal, &line) in iface.input_lines.iter().enumerate() {
            if line < vals.len() {
                vals[line] = if ordinal < MAX_TRACKED_INPUTS {
                    LineVal::var(ordinal)
                } else {
                    LineVal::Top
                };
            }
        }
        SymState {
            vals,
            work_left: SYM_WORK_BUDGET,
        }
    }

    /// Current value of a line.
    pub fn value(&self, line: usize) -> &LineVal {
        &self.vals[line]
    }

    /// Advances the state across one gate: the target is XORed with the
    /// product of the (polarity-adjusted) control values.
    pub fn apply(&mut self, gate: &Gate) {
        self.apply_controls(gate.controls().iter().copied(), gate.target());
    }

    /// [`SymState::apply`] on a packed gate view — the controls are
    /// decoded straight from the mask words, no [`Gate`] materialized.
    pub fn apply_packed(&mut self, gate: &PackedGate<'_>) {
        self.apply_controls(gate.controls(), gate.target());
    }

    fn apply_controls(&mut self, controls: impl Iterator<Item = Control>, target: usize) {
        let mut product = LineVal::one();
        for c in controls {
            let v = &self.vals[c.line()];
            let factor = if c.is_positive() {
                v.clone()
            } else {
                v.negate()
            };
            product = product.and_with_budget(&factor, &mut self.work_left);
            if product.is_zero() {
                break;
            }
        }
        self.vals[target] = self.vals[target].xor(&product);
    }

    /// Resets a line to the constant 0 (a fresh allocation after a
    /// release hands back a |0⟩ line).
    pub fn reset(&mut self, line: usize) {
        self.vals[line] = LineVal::zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::Circuit;

    fn iface(n: usize, inputs: usize) -> CircuitInterface {
        CircuitInterface::hierarchical(n, (0..inputs).collect(), vec![], true)
    }

    #[test]
    fn compute_copy_uncompute_is_provably_clean() {
        // Classic Bennett V shape: t2 = a·b, copy, uncompute.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.cnot(2, 3);
        c.toffoli(0, 1, 2);
        let mut s = SymState::for_interface(&iface(4, 2));
        for (_, g) in c.packed() {
            s.apply_packed(&g);
        }
        assert!(s.value(2).is_zero(), "ancilla provably uncomputed");
        assert!(s.value(3).is_provably_nonzero(), "copy target holds a·b");
        assert_eq!(*s.value(3), LineVal::var(0).and(&LineVal::var(1)));
    }

    #[test]
    fn negative_controls_and_nots_track_constants() {
        let mut s = SymState::for_interface(&iface(3, 1));
        s.apply(&Gate::not(1)); // line 1: 0 -> 1
        assert!(s.value(1).is_one());
        // Negative control on line 2 (still 0) always fires.
        s.apply(&Gate::mct(vec![qda_rev::Control::negative(2)], 1));
        assert!(s.value(1).is_zero(), "1 xor 1 = 0");
    }

    #[test]
    fn term_blowup_degrades_to_top_not_to_a_verdict() {
        // Product of 9 disjoint 2-term sums expands to 2^9 = 512 terms,
        // past TERM_LIMIT: the engine must answer Top, not guess.
        let mut prod = LineVal::one();
        for i in 0..9 {
            let pair = LineVal::var(2 * i).xor(&LineVal::var(2 * i + 1));
            prod = prod.and(&pair);
        }
        assert_eq!(prod, LineVal::Top);
        // And Top is sticky across xor.
        assert_eq!(prod.xor(&LineVal::one()), LineVal::Top);
    }

    #[test]
    fn zero_factor_annihilates_top() {
        assert_eq!(LineVal::Top.and(&LineVal::zero()), LineVal::zero());
        assert_eq!(LineVal::zero().and(&LineVal::Top), LineVal::zero());
        assert_eq!(LineVal::Top.and(&LineVal::one()), LineVal::Top);
    }
}
