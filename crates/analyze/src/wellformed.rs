//! Structural well-formedness: line bounds, gate invariants, and
//! interface consistency.
//!
//! This is the admission-control front line: if anything here fires at
//! deny level the dataflow analyses are skipped, because their line
//! indexing would be meaningless (or would panic) on a malformed input.

use qda_rev::Gate;

use crate::diag::{Code, Diagnostic, Span};
use crate::interface::CircuitInterface;

/// Checks every gate and the declared interface. Returns `true` when no
/// deny-level structural problem was found (i.e. the dataflow analyses
/// may safely run).
pub fn check(
    num_lines: usize,
    gates: &[Gate],
    iface: &CircuitInterface,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let before = diags.len();
    for (i, g) in gates.iter().enumerate() {
        if g.max_line() >= num_lines {
            diags.push(
                Diagnostic::new(
                    Code::LineOutOfBounds,
                    Span::gate_line(i, g.max_line()),
                    format!(
                        "gate {g} addresses line {} of a {num_lines}-line circuit",
                        g.max_line()
                    ),
                )
                .with_suggestion("grow the circuit with ensure_lines or fix the gate"),
            );
        }
        if let Err(e) = Gate::validate(g.controls(), g.target()) {
            diags.push(Diagnostic::new(
                Code::MalformedGate,
                Span::gate(i),
                format!("gate {g} is structurally invalid: {e}"),
            ));
        }
    }
    check_interface(num_lines, gates.len(), iface, diags);
    diags[before..]
        .iter()
        .all(|d| d.severity < crate::Severity::Deny)
}

fn check_interface(
    num_lines: usize,
    num_gates: usize,
    iface: &CircuitInterface,
    diags: &mut Vec<Diagnostic>,
) {
    let mut bad = |message: String, line: Option<usize>| {
        diags.push(Diagnostic::new(
            Code::BadInterface,
            Span { gates: None, line },
            message,
        ));
    };
    if iface.num_lines != num_lines {
        bad(
            format!(
                "interface declares {} lines but the circuit has {num_lines}",
                iface.num_lines
            ),
            None,
        );
    }
    for (role, lines) in [
        ("input", &iface.input_lines),
        ("output", &iface.output_lines),
    ] {
        let mut seen = vec![false; num_lines.max(iface.num_lines)];
        for &l in lines {
            if l >= iface.num_lines {
                bad(format!("{role} line {l} out of range"), Some(l));
            } else if seen[l] {
                bad(
                    format!("line {l} appears twice in the {role} register"),
                    Some(l),
                );
            } else {
                seen[l] = true;
            }
        }
    }
    let inputs: Vec<usize> = iface.input_lines.clone();
    for &(l, pos) in &iface.releases {
        if l >= iface.num_lines {
            bad(format!("release of out-of-range line {l}"), Some(l));
        } else if inputs.contains(&l) {
            bad(
                format!("primary input line {l} is released mid-circuit"),
                Some(l),
            );
        }
        if pos > num_gates {
            bad(
                format!("release of line {l} at gate {pos}, past the end of the circuit"),
                Some(l),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::Control;

    #[test]
    fn out_of_bounds_gates_and_bad_interfaces_are_denied() {
        let gates = vec![Gate::cnot(0, 5)];
        let iface = CircuitInterface::functional(2);
        let mut diags = Vec::new();
        assert!(!check(2, &gates, &iface, &mut diags));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::LineOutOfBounds);

        let mut diags = Vec::new();
        let iface = CircuitInterface::hierarchical(3, vec![0, 0], vec![9], true)
            .with_releases(vec![(0, 0), (7, 0), (2, 99)]);
        assert!(!check(3, &[], &iface, &mut diags));
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.iter().all(|&c| c == Code::BadInterface));
        assert!(
            diags.len() >= 4,
            "dup input, oob output, input release, oob release, oob pos"
        );
    }

    #[test]
    fn clean_circuits_pass() {
        let gates = vec![
            Gate::toffoli(0, 1, 2),
            Gate::mct(vec![Control::negative(0)], 1),
        ];
        let iface = CircuitInterface::functional(3);
        let mut diags = Vec::new();
        assert!(check(3, &gates, &iface, &mut diags));
        assert!(diags.is_empty());
    }
}
