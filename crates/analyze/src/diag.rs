//! Structured diagnostics: codes, severities, spans, and rendering.
//!
//! Every analysis reports through [`Diagnostic`]. Codes are stable
//! (`QDA-A0xx`) so tests, CI gates, and downstream tooling can match on
//! them; severities encode policy: [`Severity::Deny`] diagnostics are
//! *proven* violations and abort flows, [`Severity::Warning`] marks
//! provable waste, and [`Severity::Note`] marks facts the analyzer could
//! not prove either way. An analysis must never emit `Deny` for anything
//! it has not proven — uncertainty degrades to `Note`.

use std::fmt;

/// How serious a diagnostic is, and what the flows do about it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// An observation the analyzer could not resolve (e.g. a symbolic
    /// bound was exceeded). Never fails anything.
    Note,
    /// A proven inefficiency or suspicious structure. Surfaced in
    /// reports and benches; does not fail flows.
    Warning,
    /// A proven contract violation. Flows abort with
    /// `FlowError::AnalysisViolation`.
    Deny,
}

impl Severity {
    /// Lower-case name used in human and JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric block encodes the analysis:
/// `A00x` ancilla lifecycle, `A01x` constant propagation, `A02x` dead
/// cones, `A03x` structural well-formedness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Code {
    /// `QDA-A001`: an ancilla is provably nonzero at the end of the
    /// circuit although the interface requires it clean.
    DirtyAncilla,
    /// `QDA-A002`: a gate reads a line after its release and before any
    /// re-initialising write.
    UseAfterRelease,
    /// `QDA-A003`: a line is provably nonzero at the point it is
    /// released back to the allocator.
    ReleaseOfLive,
    /// `QDA-A004`: the symbolic engine exceeded its term budget and
    /// cannot prove the ancilla clean or dirty.
    UnprovenAncilla,
    /// `QDA-A010`: a gate can never fire because a control is provably
    /// constant with the opposite polarity.
    ConstDeadGate,
    /// `QDA-A011`: a control is provably constant with its own polarity
    /// and can be dropped.
    ConstControl,
    /// `QDA-A020`: a gate's effect never reaches an observable line.
    DeadGate,
    /// `QDA-A030`: a gate addresses a line outside the circuit.
    LineOutOfBounds,
    /// `QDA-A031`: the declared interface is inconsistent (duplicate
    /// roles, out-of-range lines, releases past the end, ...).
    BadInterface,
    /// `QDA-A032`: a gate violates the structural invariants of
    /// [`qda_rev::Gate::validate`] (defense in depth; unreachable
    /// through the safe constructors).
    MalformedGate,
}

impl Code {
    /// The stable `QDA-A0xx` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DirtyAncilla => "QDA-A001",
            Code::UseAfterRelease => "QDA-A002",
            Code::ReleaseOfLive => "QDA-A003",
            Code::UnprovenAncilla => "QDA-A004",
            Code::ConstDeadGate => "QDA-A010",
            Code::ConstControl => "QDA-A011",
            Code::DeadGate => "QDA-A020",
            Code::LineOutOfBounds => "QDA-A030",
            Code::BadInterface => "QDA-A031",
            Code::MalformedGate => "QDA-A032",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::DirtyAncilla
            | Code::UseAfterRelease
            | Code::ReleaseOfLive
            | Code::LineOutOfBounds
            | Code::BadInterface
            | Code::MalformedGate => Severity::Deny,
            Code::ConstDeadGate | Code::ConstControl | Code::DeadGate => Severity::Warning,
            Code::UnprovenAncilla => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the circuit a diagnostic points.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Inclusive range of gate indices, if the diagnostic is anchored to
    /// specific gates.
    pub gates: Option<(usize, usize)>,
    /// The circuit line the diagnostic is about, if any.
    pub line: Option<usize>,
}

impl Span {
    /// A span covering a single gate.
    pub fn gate(index: usize) -> Self {
        Span {
            gates: Some((index, index)),
            line: None,
        }
    }

    /// A span covering a single line with no specific gate.
    pub fn line(line: usize) -> Self {
        Span {
            gates: None,
            line: Some(line),
        }
    }

    /// A span covering one gate acting on one line.
    pub fn gate_line(index: usize, line: usize) -> Self {
        Span {
            gates: Some((index, index)),
            line: Some(line),
        }
    }
}

/// One finding of one analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code; determines [`Diagnostic::severity`].
    pub code: Code,
    /// Severity, always `code.severity()`.
    pub severity: Severity,
    /// Where the finding is anchored.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
    /// A concrete remediation, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic; the severity comes from the code.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Renders the machine (JSON) form.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"code\":\"");
        s.push_str(self.code.as_str());
        s.push_str("\",\"severity\":\"");
        s.push_str(self.severity.as_str());
        s.push('"');
        if let Some((first, last)) = self.span.gates {
            s.push_str(&format!(",\"gates\":[{first},{last}]"));
        }
        if let Some(line) = self.span.line {
            s.push_str(&format!(",\"line\":{line}"));
        }
        s.push_str(",\"message\":");
        push_json_string(&mut s, &self.message);
        if let Some(fix) = &self.suggestion {
            s.push_str(",\"suggestion\":");
            push_json_string(&mut s, fix);
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        match (self.span.gates, self.span.line) {
            (Some((a, b)), Some(l)) if a == b => write!(f, " gate {a}, line {l}:")?,
            (Some((a, b)), Some(l)) => write!(f, " gates {a}..={b}, line {l}:")?,
            (Some((a, b)), None) if a == b => write!(f, " gate {a}:")?,
            (Some((a, b)), None) => write!(f, " gates {a}..={b}:")?,
            (None, Some(l)) => write!(f, " line {l}:")?,
            (None, None) => {}
        }
        write!(f, " {}", self.message)?;
        if let Some(fix) = &self.suggestion {
            write!(f, " (fix: {fix})")?;
        }
        Ok(())
    }
}

/// Escapes `value` as a JSON string literal (with quotes) onto `out`.
pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_stably_and_carry_fixed_severities() {
        assert_eq!(Code::DirtyAncilla.as_str(), "QDA-A001");
        assert_eq!(Code::MalformedGate.as_str(), "QDA-A032");
        assert_eq!(Code::DirtyAncilla.severity(), Severity::Deny);
        assert_eq!(Code::ConstDeadGate.severity(), Severity::Warning);
        assert_eq!(Code::UnprovenAncilla.severity(), Severity::Note);
        assert!(Severity::Note < Severity::Warning && Severity::Warning < Severity::Deny);
    }

    #[test]
    fn diagnostics_render_human_and_json_forms() {
        let d = Diagnostic::new(
            Code::ReleaseOfLive,
            Span::gate_line(7, 3),
            "line 3 is released while provably nonzero",
        )
        .with_suggestion("uncompute line 3 before releasing it");
        assert_eq!(
            d.to_string(),
            "deny[QDA-A003] gate 7, line 3: line 3 is released while provably nonzero \
             (fix: uncompute line 3 before releasing it)"
        );
        assert_eq!(
            d.to_json(),
            "{\"code\":\"QDA-A003\",\"severity\":\"deny\",\"gates\":[7,7],\"line\":3,\
             \"message\":\"line 3 is released while provably nonzero\",\
             \"suggestion\":\"uncompute line 3 before releasing it\"}"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
