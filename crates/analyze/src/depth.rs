//! Static depth metrics via ASAP (as-soon-as-possible) layering.
//!
//! Gates are scheduled greedily under the dependency relation the
//! peephole optimizer already uses: a gate *reads* its control lines and
//! *read-modify-writes* its target. Reads of the same line commute and
//! may share a layer; a read must wait for the last write to that line,
//! and a write must wait for the last read *and* write. Two duration
//! notions are reported:
//!
//! * **logical depth** — every gate takes one layer;
//! * **T-depth** — only gates with two or more controls (the ones that
//!   decompose into T gates under the paper's cost model) take a layer,
//!   NOT/CNOT gates are Clifford and free.

use qda_rev::{GateArena, PackedGate};

/// Depth metrics of one circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DepthMetrics {
    /// ASAP layers with every gate costing one layer.
    pub logical_depth: usize,
    /// ASAP layers counting only gates with ≥ 2 controls.
    pub t_depth: usize,
}

/// Measures both depth metrics over the packed arena.
pub fn measure(arena: &GateArena) -> DepthMetrics {
    DepthMetrics {
        logical_depth: asap(arena, |_| 1),
        t_depth: asap(arena, |g| usize::from(g.num_controls() >= 2)),
    }
}

fn asap(arena: &GateArena, duration: impl Fn(&PackedGate<'_>) -> usize) -> usize {
    let mut read_end = vec![0usize; arena.num_lines()];
    let mut write_end = vec![0usize; arena.num_lines()];
    let mut depth = 0;
    for (_, gate) in arena {
        let t = gate.target();
        let mut start = read_end[t].max(write_end[t]);
        for c in gate.controls() {
            start = start.max(write_end[c.line()]);
        }
        let end = start + duration(&gate);
        for c in gate.controls() {
            let r = &mut read_end[c.line()];
            *r = (*r).max(end);
        }
        write_end[t] = end;
        depth = depth.max(end);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::Circuit;

    #[test]
    fn independent_gates_share_a_layer_and_chains_stack() {
        let mut c = Circuit::new(6);
        c.toffoli(0, 1, 2); // layer 1
        c.toffoli(3, 4, 5); // disjoint: layer 1
        c.toffoli(0, 1, 2); // write-after-write on 2: layer 2
        let m = measure(c.packed());
        assert_eq!(m.logical_depth, 2);
        assert_eq!(m.t_depth, 2);
    }

    #[test]
    fn shared_controls_are_concurrent_reads() {
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.toffoli(0, 1, 3); // same controls, distinct target: same layer
        let m = measure(c.packed());
        assert_eq!(m.t_depth, 1);
        assert_eq!(m.logical_depth, 1);
    }

    #[test]
    fn clifford_gates_are_free_in_t_depth_but_still_order() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2); // T layer 1
        c.cnot(2, 0); // Clifford, but reads 2 after the write
        c.toffoli(0, 1, 2); // must follow the CNOT's read of 2 and write of 0
        let m = measure(c.packed());
        assert_eq!(m.logical_depth, 3);
        assert_eq!(m.t_depth, 2, "the CNOT adds no T layer");
        assert_eq!(
            measure(&qda_rev::GateArena::new(3)),
            DepthMetrics::default()
        );
    }
}
