//! The contract a circuit is analyzed against.
//!
//! A circuit by itself is just a gate list; what the analyzer checks is
//! the *interface* the surrounding flow promises: which lines carry
//! primary inputs (everything else starts at |0⟩), which lines are read
//! as outputs, whether helper lines must be returned to zero, and where
//! the line allocator handed lines back mid-circuit.

/// Declared contract of a circuit under analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CircuitInterface {
    /// Total number of lines the circuit claims to use.
    pub num_lines: usize,
    /// Lines carrying primary inputs at time zero. Every other line is
    /// assumed to start at |0⟩.
    pub input_lines: Vec<usize>,
    /// Lines read as primary outputs after the last gate.
    pub output_lines: Vec<usize>,
    /// When true, every line that is neither an input nor an output (an
    /// *ancilla*) must be provably |0⟩ again after the last gate.
    pub require_clean: bool,
    /// Mid-circuit release events `(line, gate_position)`: before the
    /// gate at `gate_position` executes, `line` was handed back to the
    /// allocator and must be |0⟩ (see
    /// [`qda_rev::LineAllocator::release_at`]).
    pub releases: Vec<(usize, usize)>,
}

impl CircuitInterface {
    /// Interface of a functional-flow circuit: `n` lines that are all
    /// both inputs and outputs, nothing required clean.
    pub fn functional(num_lines: usize) -> Self {
        CircuitInterface {
            num_lines,
            input_lines: (0..num_lines).collect(),
            output_lines: (0..num_lines).collect(),
            require_clean: false,
            releases: Vec::new(),
        }
    }

    /// Interface of a hierarchical/ESOP-flow circuit: explicit input and
    /// output registers, ancillae required clean when `require_clean`.
    pub fn hierarchical(
        num_lines: usize,
        input_lines: Vec<usize>,
        output_lines: Vec<usize>,
        require_clean: bool,
    ) -> Self {
        CircuitInterface {
            num_lines,
            input_lines,
            output_lines,
            require_clean,
            releases: Vec::new(),
        }
    }

    /// Attaches mid-circuit release events.
    #[must_use]
    pub fn with_releases(mut self, releases: Vec<(usize, usize)>) -> Self {
        self.releases = releases;
        self
    }

    /// Lines assumed to start at |0⟩ (everything not an input).
    pub fn zero_lines(&self) -> Vec<usize> {
        let mut is_input = vec![false; self.num_lines];
        for &l in &self.input_lines {
            if l < self.num_lines {
                is_input[l] = true;
            }
        }
        (0..self.num_lines).filter(|&l| !is_input[l]).collect()
    }

    /// Ancilla lines: neither input nor output.
    pub fn ancilla_lines(&self) -> Vec<usize> {
        let mut role = vec![false; self.num_lines];
        for &l in self.input_lines.iter().chain(&self.output_lines) {
            if l < self.num_lines {
                role[l] = true;
            }
        }
        (0..self.num_lines).filter(|&l| !role[l]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_helpers_partition_the_lines() {
        let iface = CircuitInterface::hierarchical(6, vec![0, 1], vec![4], true);
        assert_eq!(iface.zero_lines(), vec![2, 3, 4, 5]);
        assert_eq!(iface.ancilla_lines(), vec![2, 3, 5]);
        let f = CircuitInterface::functional(3);
        assert!(f.zero_lines().is_empty());
        assert!(f.ancilla_lines().is_empty());
    }
}
