//! Dead-cone detection: gates whose effect can never reach an
//! observable line.
//!
//! Observability is derived from the interface: primary outputs are
//! observable, and when the flow requires clean ancillae (or preserved
//! inputs) every line is part of the contract, so nothing is dead. The
//! analysis therefore only bites for garbage-tolerant interfaces, where
//! a cone computing onto a garbage line that no output reads is pure
//! waste.
//!
//! The pass walks backwards with a liveness set: a gate whose target is
//! dead at that point is dead (XOR-ing into a line nobody will read has
//! no observable effect), and a live gate makes its control lines live.

use qda_rev::GateArena;

use crate::diag::{Code, Diagnostic, Span};
use crate::interface::CircuitInterface;

/// Runs dead-cone detection over the packed arena, appending findings
/// to `diags`.
pub fn check(arena: &GateArena, iface: &CircuitInterface, diags: &mut Vec<Diagnostic>) {
    let n = iface.num_lines;
    let mut live = vec![false; n];
    for &l in &iface.output_lines {
        if l < n {
            live[l] = true;
        }
    }
    if iface.require_clean {
        // Clean ancillae and preserved inputs are part of the contract:
        // every line is observable and no gate can be dead.
        live.fill(true);
    }
    for &(l, _) in &iface.releases {
        // A released line must be |0⟩ at its release: gates feeding it
        // are part of that proof obligation, not dead code.
        if l < n {
            live[l] = true;
        }
    }
    if live.iter().all(|&b| b) {
        return;
    }
    // The liveness walk is backwards; the arena iterates forward, so
    // collect the (cheap, borrowed) gate views first.
    let gates: Vec<_> = arena.iter().map(|(_, g)| g).collect();
    let mut dead = Vec::new();
    for (i, gate) in gates.iter().enumerate().rev() {
        let t = gate.target();
        if !live[t] {
            dead.push(i);
            continue;
        }
        for c in gate.controls() {
            live[c.line()] = true;
        }
    }
    for i in dead.into_iter().rev() {
        let gate = &gates[i];
        diags.push(
            Diagnostic::new(
                Code::DeadGate,
                Span::gate_line(i, gate.target()),
                format!(
                    "gate {i} ({}) only affects line {}, which no output observes",
                    gate.to_gate(),
                    gate.target()
                ),
            )
            .with_suggestion("remove the gate or add its target to the outputs"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::Circuit;

    fn run(c: &Circuit, iface: &CircuitInterface) -> Vec<usize> {
        let mut diags = Vec::new();
        check(c.packed(), iface, &mut diags);
        assert!(diags.iter().all(|d| d.code == Code::DeadGate));
        diags.iter().map(|d| d.span.gates.unwrap().0).collect()
    }

    #[test]
    fn orphan_cones_are_dead_unless_the_contract_observes_them() {
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2); // feeds the output via gate 1
        c.cnot(2, 3); // output line 3
        c.toffoli(0, 1, 2); // uncompute: nobody reads line 2 afterwards
        let garbage = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], false);
        assert_eq!(
            run(&c, &garbage),
            vec![2],
            "the uncompute is dead under garbage rules"
        );
        let clean = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true);
        assert_eq!(run(&c, &clean), vec![], "under clean rules nothing is dead");
    }

    #[test]
    fn whole_dead_cones_are_reported_gate_by_gate() {
        let mut c = Circuit::new(5);
        c.toffoli(0, 1, 3); // dead cone: 3 feeds only 4, which nobody reads
        c.cnot(3, 4);
        c.cnot(0, 2); // live: output
        let iface = CircuitInterface::hierarchical(5, vec![0, 1], vec![2], false);
        assert_eq!(run(&c, &iface), vec![0, 1]);
    }

    #[test]
    fn released_lines_are_observable() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        c.cnot(0, 2);
        let iface =
            CircuitInterface::hierarchical(3, vec![0], vec![1], false).with_releases(vec![(2, 2)]);
        assert_eq!(
            run(&c, &iface),
            vec![],
            "gates proving a release clean are live"
        );
    }
}
