//! Constant propagation: ancillae start at |0⟩, so some controls are
//! provably constant, making gates dead (wrong-polarity constant) or
//! controls droppable (right-polarity constant).
//!
//! This analysis only *reports*; the sound rewrites live in
//! `qda_rev::opt::optimize_checked_assuming`, which the flows run with
//! the same zero-line assumption and equivalence-check by batch
//! simulation. A warning here on a flow output therefore means the
//! optimizer was skipped or beaten — worth surfacing either way.

use qda_rev::GateArena;

use crate::diag::{Code, Diagnostic, Span};
use crate::interface::CircuitInterface;

#[derive(Clone, Copy, PartialEq, Eq)]
enum K {
    Zero,
    One,
    Top,
}

impl K {
    fn flipped(self) -> K {
        match self {
            K::Zero => K::One,
            K::One => K::Zero,
            K::Top => K::Top,
        }
    }
}

/// Runs constant propagation over the packed arena, appending findings
/// to `diags`.
pub fn check(gates: &GateArena, iface: &CircuitInterface, diags: &mut Vec<Diagnostic>) {
    let n = iface.num_lines;
    let mut vals = vec![K::Top; n];
    for l in iface.zero_lines() {
        vals[l] = K::Zero;
    }
    let mut releases: Vec<(usize, usize)> = iface.releases.clone();
    releases.sort_by_key(|&(_, pos)| pos);
    let mut next_release = 0;

    for (i, (_, gate)) in gates.iter().enumerate() {
        while next_release < releases.len() && releases[next_release].1 <= i {
            let (line, _) = releases[next_release];
            next_release += 1;
            if line < n {
                vals[line] = K::Zero; // the allocator hands back |0⟩
            }
        }
        let mut dead = false;
        let mut droppable = Vec::new();
        for c in gate.controls() {
            match (vals[c.line()], c.is_positive()) {
                (K::Zero, true) | (K::One, false) => {
                    dead = true;
                    break;
                }
                (K::Zero, false) | (K::One, true) => droppable.push(c.line()),
                (K::Top, _) => {}
            }
        }
        if dead {
            // Materializing the gate is fine here: diagnostics are cold.
            diags.push(
                Diagnostic::new(
                    Code::ConstDeadGate,
                    Span::gate(i),
                    format!("gate {i} ({}) can never fire: a control is constant with the opposite polarity", gate.to_gate()),
                )
                .with_suggestion("remove the gate (optimize_checked_assuming does this soundly)"),
            );
            continue; // the target is unchanged
        }
        for line in droppable {
            diags.push(
                Diagnostic::new(
                    Code::ConstControl,
                    Span::gate_line(i, line),
                    format!(
                        "gate {i} ({}) controls on line {line}, which is provably constant",
                        gate.to_gate()
                    ),
                )
                .with_suggestion("drop the control (optimize_checked_assuming does this soundly)"),
            );
        }
        let t = gate.target();
        vals[t] = if gate.num_controls() == 0 {
            vals[t].flipped()
        } else {
            // The gate may or may not fire; even an always-firing gate
            // flips by a non-constant amount unless all controls were
            // droppable constants — be conservative.
            K::Top
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::{Circuit, Control};

    fn run(c: &Circuit, iface: &CircuitInterface) -> Vec<Code> {
        let mut diags = Vec::new();
        check(c.packed(), iface, &mut diags);
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn const_dead_and_const_control_fire_only_with_assumed_zeros() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 2, 1); // positive control on zero line 2: dead
        c.mct(vec![Control::positive(0), Control::negative(2)], 1); // droppable
        let iface = CircuitInterface::hierarchical(3, vec![0, 1], vec![1], false);
        assert_eq!(
            run(&c, &iface),
            vec![Code::ConstDeadGate, Code::ConstControl]
        );
        // With every line an input, nothing is constant.
        assert_eq!(run(&c, &CircuitInterface::functional(3)), vec![]);
    }

    #[test]
    fn not_gates_flip_the_constant_and_writes_invalidate_it() {
        let mut c = Circuit::new(3);
        c.not(2); // line 2: const 1
        c.toffoli(0, 2, 1); // positive on const 1: droppable control
        c.cnot(0, 2); // line 2 now Top
        c.toffoli(0, 2, 1); // no finding
        let iface = CircuitInterface::hierarchical(3, vec![0, 1], vec![1], false);
        assert_eq!(run(&c, &iface), vec![Code::ConstControl]);
    }

    #[test]
    fn releases_restore_the_zero_assumption() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2); // line 2: Top
        c.toffoli(0, 2, 1); // no finding
        c.toffoli(0, 2, 1); // after the release below: line 2 zero, dead
        let iface = CircuitInterface::hierarchical(3, vec![0, 1], vec![1], false)
            .with_releases(vec![(2, 2)]);
        assert_eq!(run(&c, &iface), vec![Code::ConstDeadGate]);
    }
}
