//! Static analysis and linting for MPMCT reversible circuits.
//!
//! Where the rest of the workspace checks circuits *dynamically* — batch
//! simulation over sampled states — this crate proves contracts
//! *structurally*, in near-linear time, before a circuit ever reaches an
//! expensive back end:
//!
//! | Analysis | Codes | What it proves |
//! |---|---|---|
//! | well-formedness | `QDA-A030..A032` | line bounds, gate invariants, interface consistency |
//! | ancilla lifecycle | `QDA-A001..A004` | helper lines return to \|0⟩ before release / end |
//! | constant propagation | `QDA-A010..A011` | dead gates and droppable controls under the \|0⟩ start |
//! | dead cones | `QDA-A020` | gates whose effect reaches no observable line |
//! | depth metrics | — | ASAP logical depth and T-depth |
//!
//! The entry point is [`analyze`]: give it a circuit and the
//! [`CircuitInterface`] contract the surrounding flow promises, get back
//! a [`Report`] of [`Diagnostic`]s plus [`Metrics`]. Severities encode
//! policy — `Deny` findings are proven violations (flows abort on them),
//! `Warning`s are proven waste, `Note`s are honest uncertainty. No
//! analysis ever denies something it has not proven, which is what makes
//! "analyzer-clean at deny level" a sound gate for every flow output.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod constprop;
pub mod deadcone;
pub mod depth;
pub mod diag;
pub mod interface;
pub mod lifecycle;
pub mod sym;
pub mod wellformed;

pub use depth::DepthMetrics;
pub use diag::{Code, Diagnostic, Severity, Span};
pub use interface::CircuitInterface;

use qda_rev::cost::t_count_gate;
use qda_rev::{Circuit, Gate, GateArena};

/// Static metrics computed alongside the diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    /// Number of circuit lines.
    pub num_lines: usize,
    /// Number of gates.
    pub num_gates: usize,
    /// T-count under the paper's cost model.
    pub t_count: u64,
    /// ASAP depth metrics (zero when well-formedness already failed).
    pub depth: DepthMetrics,
}

/// Outcome of analyzing one circuit against one interface.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
    /// Static metrics of the analyzed circuit.
    pub metrics: Metrics,
}

impl Report {
    /// Number of diagnostics at exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when no diagnostic is at or above the given severity.
    /// `is_clean(Severity::Deny)` is the flows' admission gate.
    pub fn is_clean(&self, at: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < at)
    }

    /// The deny-level findings, if any.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Multi-line human-readable rendering (one line per diagnostic,
    /// then a metrics summary).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} deny, {} warning, {} note | {} lines, {} gates, T-count {}, \
             depth {}, T-depth {}\n",
            self.count(Severity::Deny),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.metrics.num_lines,
            self.metrics.num_gates,
            self.metrics.t_count,
            self.metrics.depth.logical_depth,
            self.metrics.depth.t_depth,
        ));
        out
    }

    /// Machine (JSON) rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str(&format!(
            "],\"counts\":{{\"deny\":{},\"warning\":{},\"note\":{}}},\
             \"metrics\":{{\"lines\":{},\"gates\":{},\"t_count\":{},\
             \"logical_depth\":{},\"t_depth\":{}}}}}",
            self.count(Severity::Deny),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.metrics.num_lines,
            self.metrics.num_gates,
            self.metrics.t_count,
            self.metrics.depth.logical_depth,
            self.metrics.depth.t_depth,
        ));
        s
    }
}

/// Analyzes a circuit against its declared interface.
///
/// The dataflow passes walk the circuit's own packed arena directly; no
/// per-gate materialization happens on this path. (The structural
/// front-line check still sees legacy [`Gate`] values, because those
/// are the representation malformed cascades arrive in.)
pub fn analyze(circuit: &Circuit, iface: &CircuitInterface) -> Report {
    let mut diagnostics = Vec::new();
    let gates = circuit.gates();
    let structurally_sound =
        wellformed::check(circuit.num_lines(), &gates, iface, &mut diagnostics);
    let mut metrics = metrics_of(circuit.num_lines(), &gates);
    if structurally_sound {
        run_dataflow(circuit.packed(), iface, &mut diagnostics, &mut metrics);
    }
    Report {
        diagnostics,
        metrics,
    }
}

/// Analyzes a raw gate list (the circuit need not exist as a
/// [`Circuit`]; this is also what lets tests feed in malformed input the
/// safe constructors refuse to build). The gates are packed into a
/// [`GateArena`] only after the structural check proves that sound —
/// out-of-bounds lines cannot be represented as masks.
pub fn analyze_gates(num_lines: usize, gates: &[Gate], iface: &CircuitInterface) -> Report {
    let mut diagnostics = Vec::new();
    let structurally_sound = wellformed::check(num_lines, gates, iface, &mut diagnostics);
    let mut metrics = metrics_of(num_lines, gates);
    if structurally_sound {
        let arena = GateArena::from_gates(num_lines, gates);
        run_dataflow(&arena, iface, &mut diagnostics, &mut metrics);
    }
    Report {
        diagnostics,
        metrics,
    }
}

fn metrics_of(num_lines: usize, gates: &[Gate]) -> Metrics {
    Metrics {
        num_lines,
        num_gates: gates.len(),
        t_count: gates.iter().map(t_count_gate).sum(),
        depth: DepthMetrics::default(),
    }
}

fn run_dataflow(
    arena: &GateArena,
    iface: &CircuitInterface,
    diagnostics: &mut Vec<Diagnostic>,
    metrics: &mut Metrics,
) {
    lifecycle::check(arena, iface, diagnostics);
    constprop::check(arena, iface, diagnostics);
    deadcone::check(arena, iface, diagnostics);
    metrics.depth = depth::measure(arena);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_bennett_circuit_yields_an_empty_clean_report() {
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        c.cnot(2, 3);
        c.toffoli(0, 1, 2);
        let iface = CircuitInterface::hierarchical(4, vec![0, 1], vec![3], true);
        let report = analyze(&c, &iface);
        assert!(report.diagnostics.is_empty());
        assert!(report.is_clean(Severity::Deny));
        assert!(report.is_clean(Severity::Note));
        assert_eq!(report.metrics.num_gates, 3);
        assert_eq!(report.metrics.t_count, 14);
        assert_eq!(report.metrics.depth.t_depth, 2);
    }

    #[test]
    fn deny_level_structural_failures_skip_the_dataflow_analyses() {
        // A gate out of bounds would make the dataflow passes index
        // out of range; analyze_gates must degrade gracefully.
        let gates = vec![Gate::toffoli(0, 1, 7)];
        let iface = CircuitInterface::functional(3);
        let report = analyze_gates(3, &gates, &iface);
        assert_eq!(report.count(Severity::Deny), 1);
        assert_eq!(report.diagnostics[0].code, Code::LineOutOfBounds);
        assert_eq!(report.metrics.depth, DepthMetrics::default());
        assert_eq!(report.metrics.t_count, 7, "t-count is still computable");
        assert!(!report.is_clean(Severity::Deny));
    }

    #[test]
    fn reports_render_as_json() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let iface = CircuitInterface::hierarchical(3, vec![0, 1], vec![], true);
        let report = analyze(&c, &iface);
        assert_eq!(report.count(Severity::Deny), 1, "dirty ancilla");
        let json = report.to_json();
        assert!(json.starts_with("{\"diagnostics\":[{\"code\":\"QDA-A001\""));
        assert!(json.contains("\"counts\":{\"deny\":1,\"warning\":0,\"note\":0}"));
        assert!(json.contains("\"t_count\":7"));
        let human = report.render_human();
        assert!(human.contains("deny[QDA-A001]"));
        assert!(human.ends_with("T-depth 1\n"));
    }
}
