//! End-to-end sessions against the daemon: a long scripted mixed-request
//! session in-process, and the real binary spawned over stdio.

use qda_bench::json::Json;
use qda_core::flow::FrontendCache;
use qda_server::{serve_session, ServerConfig, ServerStats};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};

/// Collects everything the daemon writes, shareable across its worker
/// threads.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_session(config: &ServerConfig, lines: &[String]) -> Vec<Json> {
    run_session_shared(
        config,
        lines,
        &Arc::new(FrontendCache::new()),
        &Arc::new(ServerStats::default()),
    )
}

fn run_session_shared(
    config: &ServerConfig,
    lines: &[String],
    cache: &Arc<FrontendCache>,
    stats: &Arc<ServerStats>,
) -> Vec<Json> {
    let input = lines.join("\n") + "\n";
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    serve_session(
        std::io::Cursor::new(input),
        SharedBuf(Arc::clone(&out)),
        config,
        cache,
        stats,
    )
    .unwrap();
    let bytes = out.lock().unwrap().clone();
    String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line {l:?}: {e}")))
        .collect()
}

fn find(responses: &[Json], id: u64) -> &Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id}"))
}

fn error_kind(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

/// The acceptance scenario of the serving shell: 20+ mixed requests —
/// among them a panicking design, a `.numvars` allocation bomb, an
/// over-deadline job, and the NaN-timing stats path — through one
/// session. Every request gets a structured response, every success
/// carries per-stage timings, and the daemon is still serving at the end.
#[test]
fn scripted_session_of_twenty_mixed_requests() {
    let gen = |id: u64, design: &str, flow: &str| {
        format!(r#"{{"id": {id}, "design": {{"generator": "{design}"}}, "flow": "{flow}"}}"#)
    };
    let half_adder = "module ha(a, b, s, c); input a; input b; output s; output c; \
                      assign s = a ^ b; assign c = a & b; endmodule";
    let real_ok =
        ".numvars 3\\n.variables x0 x1 x2\\n.begin\\nt3 x0 x1 x2\\nt3 x0 x1 x2\\nt1 x0\\n.end";
    let lines: Vec<String> = vec![
        // 1: NaN-timing path — stats before any job completes must render
        // avg_wait_s as null (0/0 through the non-finite Json::fixed fix).
        r#"{"id": 1, "op": "stats"}"#.to_string(),
        // 2–7: the paper's generators across all three flows.
        gen(2, "INTDIV(4)", "esop"),
        gen(3, "INTDIV(5)", "esop"),
        gen(4, "INTDIV(4)", "functional"),
        gen(5, "INTDIV(5)", "hierarchical"),
        gen(6, "NEWTON(4)", "esop"),
        gen(7, "NEWTON(4)", "hierarchical"),
        // 8: a panicking design — INTDIV(1) trips the generator assertion
        // inside the worker (and poisons the frontend-cache slot).
        gen(8, "INTDIV(1)", "esop"),
        // 9: the same bad design again — the recovered cache must recompute,
        // not wedge.
        gen(9, "INTDIV(1)", "esop"),
        // 10: inline Verilog round-trip.
        format!(r#"{{"id": 10, "design": {{"verilog": "{half_adder}"}}, "flow": "esop"}}"#),
        // 11: inline Verilog with a lex error — source-anchored diagnostic.
        r#"{"id": 11, "design": {"verilog": "module m(a); input a; assign € = a; endmodule"}}"#
            .to_string(),
        // 12: inline .real round-trip (optimize + lint service).
        format!(r#"{{"id": 12, "design": {{"real": "{real_ok}"}}}}"#),
        // 13: the .numvars allocation bomb — rejected at admission with a
        // line-numbered parse error, before spending a queue slot.
        r#"{"id": 13, "design": {"real": ".numvars 999999999\n.begin\n.end"}}"#
            .replace('\n', "\\n"),
        // 14: an over-deadline job — the watchdog answers with a timeout
        // and abandons the worker's result.
        r#"{"id": 14, "design": {"generator": "NEWTON(6)"}, "flow": "hierarchical", "budget": {"deadline_ms": 1}}"#
            .to_string(),
        // 15: a budget cap the result exceeds.
        r#"{"id": 15, "design": {"generator": "INTDIV(4)"}, "flow": "esop", "budget": {"max_gates": 1}}"#
            .to_string(),
        // 16: a qubit cap, also exceeded.
        r#"{"id": 16, "design": {"generator": "INTDIV(5)"}, "flow": "hierarchical", "budget": {"max_qubits": 3}}"#
            .to_string(),
        // 17: a malformed request shape.
        r#"{"id": 17, "op": "synth"}"#.to_string(),
        // 18: an unknown generator family.
        gen(18, "FFT(4)", "esop"),
        // 19: an instance too large for the functional flow (typed flow error).
        gen(19, "INTDIV(16)", "functional"),
        // 20: flow switches — post_opt off keeps the raw synthesis output.
        r#"{"id": 20, "design": {"generator": "INTDIV(4)"}, "flow": "esop", "post_opt": false, "analyze": false}"#
            .to_string(),
        // 21: a per-job worker cap rides along fine.
        r#"{"id": 21, "design": {"generator": "INTDIV(5)"}, "flow": "esop", "budget": {"workers": 1}}"#
            .to_string(),
        // 22: the ESOP factoring parameter.
        r#"{"id": 22, "design": {"generator": "INTDIV(6)"}, "flow": "esop", "p": 1}"#.to_string(),
        // 23: stats again — the daemon is still serving after all of the
        // above, and the counters reflect it.
        r#"{"id": 23, "op": "stats"}"#.to_string(),
        // 24: one more synthesis after everything, then shutdown.
        gen(24, "INTDIV(4)", "esop"),
        r#"{"id": 25, "op": "shutdown"}"#.to_string(),
    ];
    assert!(lines.len() >= 20, "the acceptance scenario is 20+ requests");
    // The whole script is submitted in one burst, so admission must be
    // sized for it (a 16-slot default queue would — correctly — shed
    // load; queue_full shedding has its own tests).
    let config = ServerConfig {
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let cache = Arc::new(FrontendCache::new());
    let stats = Arc::new(ServerStats::default());
    let responses = run_session_shared(&config, &lines, &cache, &stats);
    assert_eq!(responses.len(), lines.len(), "one response per request");

    // Every success response carries per-stage timings.
    let successes: Vec<u64> = vec![2, 3, 4, 5, 6, 7, 10, 12, 20, 21, 22, 24];
    for id in &successes {
        let r = find(&responses, *id);
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "id {id}: {}",
            r.render()
        );
        let row = r.get("result").unwrap();
        let stages = row.get("stages").unwrap_or_else(|| {
            panic!(
                "id {id} success response lacks stage timings: {}",
                row.render()
            )
        });
        assert!(stages.get("synthesis_s").is_some() || *id == 12, "id {id}");
        assert!(
            r.get("queue_wait_s").and_then(Json::as_f64).is_some(),
            "id {id} lacks queue_wait_s"
        );
    }
    // The raw-output job really skipped the post passes.
    let raw = find(&responses, 20).get("result").unwrap();
    let opted = find(&responses, 2).get("result").unwrap();
    assert!(
        raw.get("gates").and_then(Json::as_u64) >= opted.get("gates").and_then(Json::as_u64),
        "post_opt off keeps the raw gate count"
    );
    assert!(
        raw.get("lint").is_none(),
        "analyze off drops the lint block"
    );

    // The structured failures, each with the right kind.
    for (id, kind) in [
        (8, "panic"),
        (9, "panic"),
        (11, "parse"),
        (13, "parse"),
        (14, "timeout"),
        (15, "budget"),
        (16, "budget"),
        (17, "bad_request"),
        (18, "bad_request"),
        (19, "flow"),
    ] {
        let r = find(&responses, id);
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(false),
            "id {id}: {}",
            r.render()
        );
        assert_eq!(error_kind(r), Some(kind), "id {id}: {}", r.render());
    }
    // The diagnostics are source-anchored where a source exists.
    let verilog_diag = find(&responses, 11)
        .get("error")
        .and_then(|e| e.get("diagnostic"))
        .and_then(Json::as_str)
        .expect("lex errors carry a diagnostic");
    assert!(verilog_diag.contains("request.v:1"), "{verilog_diag}");
    let real_diag = find(&responses, 13)
        .get("error")
        .and_then(|e| e.get("diagnostic"))
        .and_then(Json::as_str)
        .expect("the numvars bomb carries a diagnostic");
    assert!(real_diag.contains(".numvars 999999999"), "{real_diag}");
    assert!(real_diag.contains("request.real:1"), "{real_diag}");

    // NaN path: the first stats request ran before any job completed, so
    // avg_wait_s was 0/0 — rendered null by the non-finite Json::fixed
    // fix instead of panicking the daemon. The mid-script stats (id 23)
    // is answered inline by the reader while jobs are still in flight;
    // all that matters there is that the daemon was still serving.
    let first = find(&responses, 1).get("stats").unwrap();
    assert!(first.get("avg_wait_s").unwrap().is_null());
    assert_eq!(
        find(&responses, 23).get("ok").and_then(Json::as_bool),
        Some(true)
    );

    // After the session drained, the shared counters reflect the script:
    // a follow-up session over the same daemon state reads them.
    let followup = run_session_shared(
        &config,
        &[r#"{"id": 100, "op": "stats"}"#.to_string()],
        &cache,
        &stats,
    );
    let last = find(&followup, 100).get("stats").unwrap();
    assert!(last.get("avg_wait_s").and_then(Json::as_f64).is_some());
    assert!(last.get("completed").and_then(Json::as_u64).unwrap() >= 10);
    assert!(last.get("panics").and_then(Json::as_u64).unwrap() >= 2);
    assert!(last.get("timeouts").and_then(Json::as_u64).unwrap() >= 1);
    assert!(last.get("cached_frontends").and_then(Json::as_u64).unwrap() >= 4);

    // Shutdown acknowledged.
    assert_eq!(
        find(&responses, 25)
            .get("result")
            .and_then(|r| r.get("shutting_down"))
            .and_then(Json::as_bool),
        Some(true)
    );
}

/// The deadline ordering contract: responses arrive in completion order,
/// and a timed-out job's late result is abandoned — the id is answered
/// exactly once.
#[test]
fn timed_out_jobs_are_answered_exactly_once() {
    let lines = vec![
        r#"{"id": 1, "design": {"generator": "NEWTON(6)"}, "flow": "hierarchical", "budget": {"deadline_ms": 1}}"#
            .to_string(),
        r#"{"id": 2, "design": {"generator": "INTDIV(4)"}, "flow": "esop"}"#.to_string(),
    ];
    let responses = run_session(&ServerConfig::default(), &lines);
    assert_eq!(
        responses.len(),
        2,
        "no duplicate response for the timed-out id"
    );
    assert_eq!(error_kind(find(&responses, 1)), Some("timeout"));
    assert_eq!(
        find(&responses, 2).get("ok").and_then(Json::as_bool),
        Some(true)
    );
}

/// The real binary over stdio: spawn, pipe a few jobs (including a
/// panicking one), check the responses, and confirm a clean exit on
/// shutdown.
#[test]
fn daemon_binary_serves_over_stdio() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qda-server"))
        .args(["--workers", "1", "--queue", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qda-server");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    writeln!(
        stdin,
        r#"{{"id": 1, "design": {{"generator": "INTDIV(4)"}}, "flow": "esop"}}"#
    )
    .unwrap();
    writeln!(
        stdin,
        r#"{{"id": 2, "design": {{"generator": "INTDIV(1)"}}, "flow": "esop"}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"id": 3, "op": "stats"}}"#).unwrap();
    writeln!(stdin, r#"{{"id": 4, "op": "shutdown"}}"#).unwrap();
    drop(stdin);
    let responses: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(&l.unwrap()).unwrap())
        .collect();
    assert_eq!(responses.len(), 4);
    let ok = find(&responses, 1);
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    assert!(ok.get("result").and_then(|r| r.get("stages")).is_some());
    assert_eq!(error_kind(find(&responses, 2)), Some("panic"));
    let stats = find(&responses, 3).get("stats").unwrap();
    assert_eq!(stats.get("workers").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("queue_capacity").and_then(Json::as_u64), Some(8));
    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "clean exit, got {status:?}");
}
