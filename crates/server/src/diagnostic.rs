//! Source-anchored diagnostics for remote callers.
//!
//! A batch CLI user has the failing file open in an editor; a remote
//! caller only has the response line. So every input error the daemon
//! reports carries, next to the machine-readable `kind`/`message`, a
//! rendered human diagnostic that quotes the offending source line with
//! a caret — the driver/diagnostic split modeled on sigil-lang's
//! `oric`/`ori_diagnostic` pair:
//!
//! ```text
//! error: operand x9 out of range (.numvars 3)
//!  --> job-7.real:3
//!   |
//! 3 | t2 x1 x9
//!   | ^^^^^^^^
//! ```

/// Renders a rustc-style diagnostic anchored at 1-based `line` of
/// `source`, labeled with `origin` (a synthetic file name such as
/// `job-7.real`).
///
/// Out-of-range line numbers degrade gracefully to the header alone, so
/// a malformed error position can never panic the renderer.
pub fn render(origin: &str, source: &str, line: usize, message: &str) -> String {
    let mut out = format!("error: {message}\n --> {origin}:{line}\n");
    let Some(text) = line.checked_sub(1).and_then(|i| source.lines().nth(i)) else {
        return out;
    };
    let gutter = " ".repeat(line.to_string().len());
    let underline = "^".repeat(text.trim_end().chars().count().max(1));
    out.push_str(&format!(
        "{gutter} |\n{line} | {text}\n{gutter} | {underline}\n"
    ));
    out
}

/// Maps a byte offset into `source` to a 1-based line number (for the
/// Verilog lexer, which reports positions as byte offsets).
pub fn line_of_offset(source: &str, offset: usize) -> usize {
    let clamped = offset.min(source.len());
    source[..clamped].bytes().filter(|&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_the_offending_line() {
        let src = ".numvars 3\n.begin\nt2 x1 x9\n.end\n";
        let d = render("job-7.real", src, 3, "operand x9 out of range (.numvars 3)");
        assert!(d.starts_with("error: operand x9 out of range"), "{d}");
        assert!(d.contains(" --> job-7.real:3\n"), "{d}");
        assert!(d.contains("3 | t2 x1 x9\n"), "{d}");
        assert!(d.contains("  | ^^^^^^^^\n"), "{d}");
    }

    #[test]
    fn out_of_range_line_degrades_to_the_header() {
        let d = render("x.real", "one line", 99, "boom");
        assert_eq!(d, "error: boom\n --> x.real:99\n");
        let d = render("x.real", "", 0, "boom");
        assert_eq!(d, "error: boom\n --> x.real:0\n");
    }

    #[test]
    fn wide_gutter_for_multi_digit_lines() {
        let src = "a\n".repeat(12);
        let d = render("f.v", &src, 11, "late failure");
        assert!(d.contains("11 | a\n"), "{d}");
        assert!(d.contains("   | ^\n"), "{d}");
    }

    #[test]
    fn offsets_map_to_lines() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_of_offset(src, 0), 1);
        assert_eq!(line_of_offset(src, 3), 1);
        assert_eq!(line_of_offset(src, 4), 2);
        assert_eq!(line_of_offset(src, 10), 3);
        assert_eq!(line_of_offset(src, 9999), 3, "clamped");
    }
}
