//! The daemon core: reader, bounded queue, worker pool, watchdog.
//!
//! One session (a stdio pair or a TCP connection) is served by
//! [`serve_session`]:
//!
//! * the **reader** (the calling thread) decodes one request per line and
//!   never blocks on synthesis — cheap ops (`stats`, decode errors,
//!   `queue_full` rejections) are answered inline, jobs go through
//!   [`BoundedQueue::try_push`];
//! * **workers** pop jobs and run them on the shared `qda_logic::par`
//!   pool under `with_worker_cap`, with panics contained per job
//!   (`catch_unwind`) — a hostile design parameter produces a structured
//!   `panic` error response, not a dead daemon;
//! * the **watchdog** tracks per-job deadlines and answers an
//!   over-deadline job with a structured `timeout` error the moment its
//!   deadline passes; the worker's eventual result is abandoned
//!   (responses are complete-once, first writer wins).
//!
//! The [`FrontendCache`] and [`ServerStats`] are shared across sessions,
//! so a TCP daemon amortizes front-end work over all its clients.

use crate::protocol::{
    self, DesignSpec, ErrorKind, FlowChoice, FlowSwitches, Request, RequestError, SynthRequest,
};
use crate::queue::BoundedQueue;
use qda_bench::json::Json;
use qda_bench::results::{BenchData, BenchRow, LintRowData, OptRowData};
use qda_core::flow::{
    EsopFlow, Flow, FlowBudget, FlowError, FrontendArtifacts, FrontendCache, FunctionalFlow,
    HierarchicalFlow, StageTimings,
};
use qda_core::Design;
use std::io::{BufRead, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Knobs of one daemon instance.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Bounded work-queue capacity; admission beyond it fails with
    /// `queue_full`.
    pub queue_capacity: usize,
    /// Worker threads per session.
    pub workers: usize,
    /// `qda_logic::par` participant cap per job (0 = uncapped), unless
    /// the request budget narrows it further.
    pub job_worker_cap: usize,
    /// Longest accepted request line in bytes (defense against an
    /// unbounded-line memory bomb).
    pub max_line_bytes: usize,
    /// Deadline applied to jobs whose budget does not carry one
    /// (`None` = no default deadline).
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 16,
            workers: 2,
            job_worker_cap: 0,
            max_line_bytes: 1 << 20,
            default_deadline_ms: None,
        }
    }
}

/// Monotonic counters of a daemon instance, shared across sessions.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Synthesis requests admitted to the queue.
    pub received: AtomicU64,
    /// Jobs answered with a success response.
    pub completed: AtomicU64,
    /// Jobs answered with a structured error (excluding timeouts).
    pub failed: AtomicU64,
    /// Jobs rejected at admission (`queue_full`).
    pub rejected: AtomicU64,
    /// Jobs answered by the watchdog (`timeout`).
    pub timeouts: AtomicU64,
    /// Jobs whose execution panicked (contained, answered as `panic`).
    pub panics: AtomicU64,
    /// Total queue wait of answered jobs, in microseconds.
    pub wait_us: AtomicU64,
}

impl ServerStats {
    /// Mean queue wait per answered job in seconds — **NaN until the
    /// first job completes** (0/0), which the telemetry layer renders as
    /// `null` rather than panicking (the `Json::fixed` non-finite fix).
    pub fn avg_wait_s(&self) -> f64 {
        let done = self.completed.load(Ordering::Relaxed) + self.failed.load(Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        let total = self.wait_us.load(Ordering::Relaxed) as f64 / 1e6;
        total / done as f64
    }

    fn to_json(&self, queue_depth: usize, config: &ServerConfig, cached: usize) -> Json {
        let get = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed));
        Json::object([
            ("received", get(&self.received)),
            ("completed", get(&self.completed)),
            ("failed", get(&self.failed)),
            ("rejected", get(&self.rejected)),
            ("timeouts", get(&self.timeouts)),
            ("panics", get(&self.panics)),
            ("queue_depth", Json::Int(queue_depth as u64)),
            ("queue_capacity", Json::Int(config.queue_capacity as u64)),
            ("workers", Json::Int(config.workers as u64)),
            ("cached_frontends", Json::Int(cached as u64)),
            ("avg_wait_s", Json::fixed(self.avg_wait_s(), 6)),
        ])
    }
}

/// All responses of a session funnel through one writer; each response is
/// one line, written and flushed under the lock so concurrent workers
/// never interleave bytes.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(writer: &SharedWriter, line: &str) {
    let mut guard = writer.lock().unwrap_or_else(PoisonError::into_inner);
    // A vanished client is not a daemon error; drop the bytes.
    let _ = writeln!(guard, "{line}");
    let _ = guard.flush();
}

/// The complete-once response slot of one in-flight job. The worker and
/// the watchdog race to answer; whoever swaps the flag first writes the
/// response line, the loser's result is abandoned.
struct Pending {
    id: Json,
    done: AtomicBool,
    writer: SharedWriter,
}

impl Pending {
    fn new(id: Json, writer: SharedWriter) -> Self {
        Self {
            id,
            done: AtomicBool::new(false),
            writer,
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Writes `line` as the job's response unless one was already sent;
    /// returns whether this call won.
    fn complete(&self, line: &str) -> bool {
        if self.done.swap(true, Ordering::AcqRel) {
            return false;
        }
        write_line(&self.writer, line);
        true
    }
}

/// One admitted job.
struct Job {
    request: Box<SynthRequest>,
    admitted: Instant,
    pending: Arc<Pending>,
}

/// Deadline bookkeeping shared between the reader (registering) and the
/// watchdog thread (firing).
#[derive(Default)]
struct WatchState {
    entries: Vec<(Instant, u64, Arc<Pending>)>,
    closed: bool,
}

struct Watchdog {
    state: Mutex<WatchState>,
    wake: Condvar,
    stats: Arc<ServerStats>,
}

impl Watchdog {
    fn new(stats: Arc<ServerStats>) -> Self {
        Self {
            state: Mutex::new(WatchState::default()),
            wake: Condvar::new(),
            stats,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WatchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(&self, deadline: Instant, deadline_ms: u64, pending: Arc<Pending>) {
        self.lock().entries.push((deadline, deadline_ms, pending));
        self.wake.notify_all();
    }

    fn close(&self) {
        self.lock().closed = true;
        self.wake.notify_all();
    }

    /// The watchdog loop: sleep until the earliest deadline, answer every
    /// expired job with a structured `timeout`, drop entries whose jobs
    /// were answered in time.
    fn run(&self) {
        let mut state = self.lock();
        loop {
            let now = Instant::now();
            state.entries.retain(|(deadline, deadline_ms, pending)| {
                if pending.is_done() {
                    return false;
                }
                if *deadline > now {
                    return true;
                }
                let error = RequestError::new(
                    ErrorKind::Timeout,
                    format!("deadline of {deadline_ms} ms exceeded; result abandoned"),
                );
                if pending.complete(&protocol::error_response(&pending.id, &error)) {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                false
            });
            if state.closed {
                return;
            }
            let next = state.entries.iter().map(|e| e.0).min();
            state = match next {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    self.wake
                        .wait_timeout(state, wait)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                None => self
                    .wake
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
            };
        }
    }
}

fn build_flow(choice: FlowChoice, switches: FlowSwitches) -> Box<dyn Flow> {
    match choice {
        FlowChoice::Functional => {
            let mut flow = FunctionalFlow::default();
            apply_switches(
                switches,
                &mut flow.post_opt,
                &mut flow.post_resynth,
                &mut flow.analyze,
            );
            Box::new(flow)
        }
        FlowChoice::Esop { p } => {
            let mut flow = EsopFlow::with_factoring(p);
            apply_switches(
                switches,
                &mut flow.post_opt,
                &mut flow.post_resynth,
                &mut flow.analyze,
            );
            Box::new(flow)
        }
        FlowChoice::Hierarchical => {
            let mut flow = HierarchicalFlow::default();
            apply_switches(
                switches,
                &mut flow.post_opt,
                &mut flow.post_resynth,
                &mut flow.analyze,
            );
            Box::new(flow)
        }
    }
}

fn apply_switches(
    switches: FlowSwitches,
    post_opt: &mut bool,
    post_resynth: &mut bool,
    analyze: &mut bool,
) {
    if let Some(v) = switches.post_opt {
        *post_opt = v;
    }
    if let Some(v) = switches.post_resynth {
        *post_resynth = v;
    }
    if let Some(v) = switches.analyze {
        *analyze = v;
    }
}

fn flow_error(e: &FlowError) -> RequestError {
    let kind = match e {
        FlowError::Frontend(_) => ErrorKind::Parse,
        _ => ErrorKind::Flow,
    };
    RequestError::new(kind, e.to_string())
}

fn timeout_error(budget: &FlowBudget) -> RequestError {
    let _ = budget;
    RequestError::new(
        ErrorKind::Timeout,
        "deadline exceeded before completion; work abandoned at a stage boundary",
    )
}

fn verilog_error(source: &str, e: &qda_verilog::VerilogError) -> RequestError {
    let (line, message) = match e {
        qda_verilog::VerilogError::Lex { offset, message } => (
            Some(crate::diagnostic::line_of_offset(source, *offset)),
            message.clone(),
        ),
        qda_verilog::VerilogError::Parse { message }
        | qda_verilog::VerilogError::Elaborate { message } => (None, message.clone()),
    };
    let mut error = RequestError::new(ErrorKind::Parse, format!("verilog: {message}"));
    if let Some(line) = line {
        error = error.with_diagnostic(crate::diagnostic::render(
            "request.v",
            source,
            line,
            &message,
        ));
    }
    error
}

fn real_error(source: &str, e: &qda_rev::io::ParseRealError) -> RequestError {
    RequestError::new(ErrorKind::Parse, e.to_string()).with_diagnostic(crate::diagnostic::render(
        "request.real",
        source,
        e.line,
        &e.message,
    ))
}

/// Splits `INTDIV(6)` into the family and parameter a [`BenchRow`] wants.
fn family_of(design: &Design) -> String {
    let name = design.name();
    name.split('(').next().unwrap_or(&name).to_string()
}

/// Runs one job to its response payload (the `BENCH_*.json` row shape).
///
/// Budget checks happen at the stage boundaries the shell controls:
/// before front-end work, after the front end, and on the synthesized
/// cost — cooperative cancellation, never mid-rewrite teardown.
fn execute(
    request: &SynthRequest,
    cache: &FrontendCache,
    budget: &FlowBudget,
) -> Result<Json, RequestError> {
    match &request.design {
        DesignSpec::Generator(design) => {
            let flow = build_flow(request.flow, request.switches);
            flow.precheck(design).map_err(|e| flow_error(&e))?;
            if budget.expired() {
                return Err(timeout_error(budget));
            }
            let frontend = cache
                .get_or_compute(design, &flow.frontend_options())
                .map_err(|e| flow_error(&e))?;
            if budget.expired() {
                return Err(timeout_error(budget));
            }
            let outcome = flow
                .run_with_frontend(design, &frontend)
                .map_err(|e| flow_error(&e))?;
            budget
                .check_cost(&outcome.cost)
                .map_err(|v| RequestError::new(ErrorKind::Budget, v.to_string()))?;
            Ok(BenchRow::from_outcome(&family_of(design), design.bits(), &outcome).to_json())
        }
        DesignSpec::Verilog(source) => {
            let start = Instant::now();
            let module =
                qda_verilog::parse_module(source).map_err(|e| verilog_error(source, &e))?;
            let aig = qda_verilog::elaborate(&module).map_err(|e| verilog_error(source, &e))?;
            let parse_elaborate = start.elapsed();
            let design = Design::external(aig.num_pis());
            let flow = build_flow(request.flow, request.switches);
            flow.precheck(&design).map_err(|e| flow_error(&e))?;
            if budget.expired() {
                return Err(timeout_error(budget));
            }
            let start = Instant::now();
            let aig = qda_classical::rewrite::optimize_aig(&aig, &flow.frontend_options());
            let frontend = FrontendArtifacts {
                aig,
                parse_elaborate,
                optimize: start.elapsed(),
            };
            let outcome = flow
                .run_with_frontend(&design, &frontend)
                .map_err(|e| flow_error(&e))?;
            budget
                .check_cost(&outcome.cost)
                .map_err(|v| RequestError::new(ErrorKind::Budget, v.to_string()))?;
            Ok(BenchRow::from_outcome("EXTERNAL", design.bits(), &outcome).to_json())
        }
        DesignSpec::Real(source) => execute_real(source, request, budget),
    }
}

/// A `.real` job has no reference function to synthesize from, so the
/// service is optimize + lint: peephole pass (soundness-checked) and the
/// static analyzer, reported in the same row shape.
fn execute_real(
    source: &str,
    request: &SynthRequest,
    budget: &FlowBudget,
) -> Result<Json, RequestError> {
    let start = Instant::now();
    let circuit = qda_rev::io::from_real(source).map_err(|e| real_error(source, &e))?;
    let parse_elaborate = start.elapsed();
    if budget.expired() {
        return Err(timeout_error(budget));
    }
    let before = circuit.cost();
    let (circuit, opt, post_opt) = if request.switches.post_opt.unwrap_or(true) {
        let start = Instant::now();
        let optimized =
            qda_rev::opt::optimize_checked(&circuit, &qda_rev::opt::OptOptions::default())
                .map_err(|witness| {
                    RequestError::new(
                        ErrorKind::Flow,
                        format!("post-synthesis optimization unsound: {witness}"),
                    )
                })?;
        (
            optimized.circuit,
            Some(OptRowData {
                gates_in: before.gates,
                t_count_in: before.t_count,
                stats: optimized.stats,
            }),
            start.elapsed(),
        )
    } else {
        (circuit, None, Duration::ZERO)
    };
    let (lint, analyze) = if request.switches.analyze.unwrap_or(true) {
        let start = Instant::now();
        let interface = qda_analyze::CircuitInterface::functional(circuit.num_lines());
        let report = qda_analyze::analyze(&circuit, &interface);
        (Some(LintRowData::from_report(&report)), start.elapsed())
    } else {
        (None, Duration::ZERO)
    };
    let cost = circuit.cost();
    budget
        .check_cost(&cost)
        .map_err(|v| RequestError::new(ErrorKind::Budget, v.to_string()))?;
    let stages = StageTimings {
        parse_elaborate,
        post_opt,
        analyze,
        ..StageTimings::default()
    };
    let row = BenchRow {
        design: "EXTERNAL".to_string(),
        n: circuit.num_lines(),
        flow: "real (peephole + lint)".to_string(),
        data: Ok(BenchData {
            qubits: cost.qubits,
            t_count: cost.t_count,
            gates: cost.gates,
            runtime_s: stages.total().as_secs_f64(),
            stages: Some(stages),
            states_per_sec: None,
            cubes_in: None,
            opt,
            resynth: None,
            lint,
        }),
    };
    Ok(row.to_json())
}

/// Extracts the human message of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    cache: &FrontendCache,
    stats: &ServerStats,
    config: &ServerConfig,
) {
    while let Some(job) = queue.pop() {
        let wait = job.admitted.elapsed();
        // Already answered (watchdog timeout while queued): skip the work
        // entirely.
        if job.pending.is_done() {
            continue;
        }
        let mut budget = job.request.budget.to_flow_budget(job.admitted);
        if budget.deadline.is_none() {
            budget.deadline = config
                .default_deadline_ms
                .map(|ms| job.admitted + Duration::from_millis(ms));
        }
        let cap = match job.request.budget.workers {
            Some(w) if w >= 1 => usize::try_from(w).unwrap_or(usize::MAX),
            _ if config.job_worker_cap >= 1 => config.job_worker_cap,
            _ => usize::MAX,
        };
        let request = &job.request;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            qda_logic::par::with_worker_cap(cap, || execute(request, cache, &budget))
        }));
        let result = outcome.unwrap_or_else(|payload| {
            stats.panics.fetch_add(1, Ordering::Relaxed);
            Err(RequestError::new(
                ErrorKind::Panic,
                format!("job panicked: {}", panic_message(payload.as_ref())),
            ))
        });
        let (line, counter) = match &result {
            Ok(payload) => (
                protocol::ok_response(
                    &job.pending.id,
                    "result",
                    payload.clone(),
                    Some(wait.as_secs_f64()),
                ),
                &stats.completed,
            ),
            Err(error) => (
                protocol::error_response(&job.pending.id, error),
                &stats.failed,
            ),
        };
        if job.pending.complete(&line) {
            counter.fetch_add(1, Ordering::Relaxed);
            let micros = u64::try_from(wait.as_micros()).unwrap_or(u64::MAX);
            stats.wait_us.fetch_add(micros, Ordering::Relaxed);
        }
    }
}

/// Reads one request line of at most `max` bytes. `None` = end of stream;
/// `Some(Err(n))` = an overlong line of `n` bytes was skipped whole.
fn read_request_line(
    reader: &mut impl BufRead,
    max: usize,
) -> std::io::Result<Option<Result<String, usize>>> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && buf.len() > max {
        // Discard the remainder without accumulating it: a single
        // newline-free multi-gigabyte line must cost O(buffer), not
        // O(line), of memory.
        let mut skipped = buf.len();
        loop {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                break;
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    skipped += i + 1;
                    reader.consume(i + 1);
                    break;
                }
                None => {
                    let n = available.len();
                    skipped += n;
                    reader.consume(n);
                }
            }
        }
        return Ok(Some(Err(skipped)));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    Ok(Some(Ok(String::from_utf8_lossy(&buf).into_owned())))
}

/// Serves one line-delimited JSON session until end of stream or a
/// `shutdown` request. The calling thread is the reader; `config.workers`
/// worker threads and one watchdog thread are spawned for the session's
/// lifetime. Pending jobs still drain (and get responses) after shutdown.
///
/// # Errors
///
/// Propagates reader I/O errors; a vanished *writer* is tolerated (the
/// remaining responses are dropped).
pub fn serve_session(
    mut reader: impl BufRead,
    writer: impl Write + Send + 'static,
    config: &ServerConfig,
    cache: &Arc<FrontendCache>,
    stats: &Arc<ServerStats>,
) -> std::io::Result<()> {
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
    let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_capacity));
    let watchdog = Arc::new(Watchdog::new(Arc::clone(stats)));
    let mut threads = Vec::new();
    for _ in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let cache = Arc::clone(cache);
        let stats = Arc::clone(stats);
        let config = *config;
        threads.push(std::thread::spawn(move || {
            worker_loop(&queue, &cache, &stats, &config);
        }));
    }
    let watchdog_thread = {
        let watchdog = Arc::clone(&watchdog);
        std::thread::spawn(move || watchdog.run())
    };

    while let Some(line) = read_request_line(&mut reader, config.max_line_bytes)? {
        let line = match line {
            Ok(line) => line,
            Err(skipped) => {
                let error = RequestError::new(
                    ErrorKind::BadRequest,
                    format!(
                        "request line of {skipped} bytes exceeds the {} byte limit",
                        config.max_line_bytes
                    ),
                );
                write_line(&writer, &protocol::error_response(&Json::Null, &error));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::decode_request(&line) {
            Err(error) => {
                // A rejected request still deserves its id echoed back
                // when the line was at least JSON (correlation matters
                // most on errors).
                let id = Json::parse(&line)
                    .ok()
                    .and_then(|v| v.get("id").cloned())
                    .unwrap_or(Json::Null);
                write_line(&writer, &protocol::error_response(&id, &error));
            }
            Ok(Request::Stats { id }) => {
                let payload = stats.to_json(queue.len(), config, cache.len());
                write_line(&writer, &protocol::ok_response(&id, "stats", payload, None));
            }
            Ok(Request::Shutdown { id }) => {
                let payload = Json::object([("shutting_down", Json::Bool(true))]);
                write_line(
                    &writer,
                    &protocol::ok_response(&id, "result", payload, None),
                );
                break;
            }
            Ok(Request::Synth(request)) => {
                let admitted = Instant::now();
                let pending = Arc::new(Pending::new(request.id.clone(), Arc::clone(&writer)));
                let deadline_ms = request.budget.deadline_ms.or(config.default_deadline_ms);
                let job = Job {
                    request,
                    admitted,
                    pending: Arc::clone(&pending),
                };
                match queue.try_push(job) {
                    Ok(()) => {
                        stats.received.fetch_add(1, Ordering::Relaxed);
                        if let Some(ms) = deadline_ms {
                            watchdog.register(admitted + Duration::from_millis(ms), ms, pending);
                        }
                    }
                    Err(full) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        let error = RequestError::new(ErrorKind::QueueFull, full.to_string());
                        pending.complete(&protocol::error_response(&pending.id, &error));
                    }
                }
            }
        }
    }

    // Drain: pending jobs still get their responses, then everything
    // winds down.
    queue.close();
    for thread in threads {
        let _ = thread.join();
    }
    watchdog.close();
    let _ = watchdog_thread.join();
    Ok(())
}

/// Serves line-delimited JSON sessions over TCP, one thread per
/// connection, sharing the front-end cache and stats across connections.
/// A `shutdown` request ends its own connection only; the listener runs
/// until the process is killed.
///
/// # Errors
///
/// Propagates bind failures; per-connection errors are contained.
pub fn serve_tcp(addr: &str, config: ServerConfig) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    // With `--tcp 127.0.0.1:0` the kernel picks the port; tell the
    // operator (on stderr — stdout stays protocol-clean).
    eprintln!("qda-server listening on {}", listener.local_addr()?);
    let cache = Arc::new(FrontendCache::new());
    let stats = Arc::new(ServerStats::default());
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let cache = Arc::clone(&cache);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            let Ok(write_half) = stream.try_clone() else {
                return;
            };
            let reader = std::io::BufReader::new(stream);
            let _ = serve_session(reader, write_half, &config, &cache, &stats);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a whole scripted session through an in-memory pipe and
    /// returns one parsed response per request line.
    fn run_session(config: &ServerConfig, lines: &[String]) -> Vec<Json> {
        let stats = Arc::new(ServerStats::default());
        run_session_with(config, lines, &Arc::new(FrontendCache::new()), &stats)
    }

    fn run_session_with(
        config: &ServerConfig,
        lines: &[String],
        cache: &Arc<FrontendCache>,
        stats: &Arc<ServerStats>,
    ) -> Vec<Json> {
        let input = lines.join("\n") + "\n";
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        serve_session(
            std::io::Cursor::new(input),
            SharedBuf(Arc::clone(&out)),
            config,
            cache,
            stats,
        )
        .unwrap();
        let bytes = out.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is valid JSON"))
            .collect()
    }

    fn synth(id: u64, design: &str) -> String {
        format!(r#"{{"id": {id}, "design": {{"generator": "{design}"}}, "flow": "esop"}}"#)
    }

    #[test]
    fn round_trips_a_generator_job_with_stage_timings() {
        let responses = run_session(&ServerConfig::default(), &[synth(1, "INTDIV(4)")]);
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("id").and_then(Json::as_u64), Some(1));
        assert!(r.get("queue_wait_s").and_then(Json::as_f64).is_some());
        let row = r.get("result").unwrap();
        assert_eq!(row.get("design").and_then(Json::as_str), Some("INTDIV"));
        assert_eq!(row.get("qubits").and_then(Json::as_u64), Some(8));
        let stages = row.get("stages").expect("per-stage telemetry");
        for key in [
            "parse_elaborate_s",
            "optimize_s",
            "synthesis_s",
            "verification_s",
        ] {
            assert!(stages.get(key).is_some(), "missing {key}");
        }
        assert!(row.get("lint").is_some(), "analyze defaults on");
    }

    #[test]
    fn panicking_job_is_contained_and_the_daemon_keeps_serving() {
        // INTDIV(1) trips the generator assertion inside the worker (and
        // poisons the shared cache's slot mutex — the recovery fix). Both
        // a retry of the bad design and a fresh good design must still be
        // served by the *same* session.
        let responses = run_session(
            &ServerConfig::default(),
            &[
                synth(1, "INTDIV(1)"),
                synth(2, "INTDIV(1)"),
                synth(3, "INTDIV(4)"),
            ],
        );
        assert_eq!(responses.len(), 3);
        let by_id = |id: u64| {
            responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
                .unwrap()
        };
        for id in [1, 2] {
            let r = by_id(id);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
            let e = r.get("error").unwrap();
            assert_eq!(e.get("kind").and_then(Json::as_str), Some("panic"));
            assert!(
                e.get("message")
                    .and_then(Json::as_str)
                    .unwrap()
                    .contains("at least 2"),
                "panic message surfaces"
            );
        }
        assert_eq!(by_id(3).get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn queue_full_is_rejected_without_blocking() {
        // One worker, capacity 1: the first job occupies the worker (a
        // slow-ish design), the second fills the queue, the third must be
        // rejected with a structured queue_full error.
        let config = ServerConfig {
            queue_capacity: 1,
            workers: 1,
            ..ServerConfig::default()
        };
        // All three requests arrive before the reader can be outpaced by
        // the worker only if job 1 is slow enough; NEWTON(5) through the
        // hierarchical flow takes long enough in practice. To make the
        // test deterministic regardless, push enough jobs that at least
        // one must be rejected: the queue admits 1, the worker holds 1,
        // so 8 back-to-back jobs cannot all be in flight.
        let mut lines = vec![format!(
            r#"{{"id": 1, "design": {{"generator": "NEWTON(5)"}}, "flow": "hierarchical"}}"#
        )];
        for id in 2..=8 {
            lines.push(synth(id, "INTDIV(4)"));
        }
        let responses = run_session(&config, &lines);
        assert_eq!(responses.len(), 8);
        let rejected: Vec<_> = responses
            .iter()
            .filter(|r| {
                r.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    == Some("queue_full")
            })
            .collect();
        assert!(
            !rejected.is_empty(),
            "8 instant submissions into a 1-slot queue with 1 worker must reject at least one"
        );
        for r in &rejected {
            let message = r
                .get("error")
                .unwrap()
                .get("message")
                .and_then(Json::as_str)
                .unwrap();
            assert!(
                message.contains("work queue full (1 jobs queued)"),
                "{message}"
            );
        }
        // And at least one job (the first) completed fine.
        assert!(responses
            .iter()
            .any(|r| r.get("ok").and_then(Json::as_bool) == Some(true)));
    }

    #[test]
    fn over_deadline_job_gets_a_structured_timeout() {
        let responses = run_session(
            &ServerConfig::default(),
            &[
                r#"{"id": 1, "design": {"generator": "NEWTON(6)"}, "flow": "hierarchical",
                    "budget": {"deadline_ms": 1}}"#
                    .replace('\n', " "),
            ],
        );
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let e = r.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("timeout"));
        assert!(
            e.get("message")
                .and_then(Json::as_str)
                .unwrap()
                .contains("1 ms"),
            "names the deadline"
        );
    }

    #[test]
    fn stats_before_any_job_reports_null_avg_wait() {
        // The NaN path: avg_wait_s is 0/0 before the first job completes;
        // the non-finite Json::fixed fix renders it as null instead of
        // panicking the daemon.
        let responses = run_session(
            &ServerConfig::default(),
            &[r#"{"id": "s", "op": "stats"}"#.to_string()],
        );
        let r = &responses[0];
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let stats = r.get("stats").unwrap();
        assert!(
            stats.get("avg_wait_s").unwrap().is_null(),
            "0/0 must render as null: {}",
            stats.render()
        );
        assert_eq!(stats.get("received").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn real_job_optimizes_lints_and_reports() {
        let real =
            ".numvars 3\\n.variables x0 x1 x2\\n.begin\\nt3 x0 x1 x2\\nt3 x0 x1 x2\\nt1 x0\\n.end";
        let responses = run_session(
            &ServerConfig::default(),
            &[format!(r#"{{"id": 1, "design": {{"real": "{real}"}}}}"#)],
        );
        let r = &responses[0];
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            r.render()
        );
        let row = r.get("result").unwrap();
        assert_eq!(row.get("design").and_then(Json::as_str), Some("EXTERNAL"));
        assert_eq!(row.get("qubits").and_then(Json::as_u64), Some(3));
        // The double Toffoli cancels: 3 gates in, 1 gate out.
        assert_eq!(row.get("gates_in").and_then(Json::as_u64), Some(3));
        assert_eq!(row.get("gates").and_then(Json::as_u64), Some(1));
        assert!(row.get("lint").is_some());
    }

    #[test]
    fn budget_caps_produce_budget_errors() {
        let responses = run_session(
            &ServerConfig::default(),
            &[r#"{"id": 1, "design": {"generator": "INTDIV(4)"}, "flow": "esop", "budget": {"max_gates": 1}}"#
                .to_string()],
        );
        let e = responses[0].get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("budget"));
        assert!(e
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("budget allows 1"));
    }

    #[test]
    fn malformed_lines_and_shutdown_are_answered_inline() {
        let responses = run_session(
            &ServerConfig::default(),
            &[
                "this is not json".to_string(),
                r#"{"id": 9, "op": "shutdown"}"#.to_string(),
                synth(10, "INTDIV(4)"), // after shutdown: never read
            ],
        );
        assert_eq!(responses.len(), 2, "nothing is served after shutdown");
        let bad = &responses[0];
        assert_eq!(
            bad.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
        let down = &responses[1];
        assert_eq!(down.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            down.get("result")
                .and_then(|r| r.get("shutting_down"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn overlong_line_discard_is_bounded_and_exact() {
        // A small BufReader capacity forces the discard loop through many
        // fill_buf rounds; the skipped count must still be exact and the
        // following line must survive intact.
        let mut data = vec![b'x'; 10_000];
        data.push(b'\n');
        data.extend_from_slice(b"next\n");
        let mut reader = std::io::BufReader::with_capacity(64, std::io::Cursor::new(data));
        match read_request_line(&mut reader, 32).unwrap() {
            Some(Err(skipped)) => assert_eq!(skipped, 10_001),
            other => panic!("expected overlong skip, got {other:?}"),
        }
        match read_request_line(&mut reader, 32).unwrap() {
            Some(Ok(line)) => assert_eq!(line, "next"),
            other => panic!("expected next line, got {other:?}"),
        }
        // A newline-free stream tail is also discarded without blowing up.
        let mut reader =
            std::io::BufReader::with_capacity(64, std::io::Cursor::new(vec![b'y'; 5_000]));
        match read_request_line(&mut reader, 32).unwrap() {
            Some(Err(skipped)) => assert_eq!(skipped, 5_000),
            other => panic!("expected overlong skip, got {other:?}"),
        }
        assert!(read_request_line(&mut reader, 32).unwrap().is_none());
    }

    #[test]
    fn overlong_lines_are_skipped_with_a_structured_error() {
        let config = ServerConfig {
            max_line_bytes: 64,
            ..ServerConfig::default()
        };
        let long = format!(
            r#"{{"id": 1, "design": {{"verilog": "{}"}}}}"#,
            "x".repeat(200)
        );
        let responses = run_session(&config, &[long, synth(2, "INTDIV(4)")]);
        assert_eq!(responses.len(), 2);
        let e = responses[0].get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("bad_request"));
        assert!(e
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("64 byte limit"));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn sessions_share_the_frontend_cache() {
        let cache = Arc::new(FrontendCache::new());
        let stats = Arc::new(ServerStats::default());
        let config = ServerConfig::default();
        run_session_with(&config, &[synth(1, "INTDIV(4)")], &cache, &stats);
        assert_eq!(cache.len(), 1);
        let responses =
            run_session_with(&config, &[r#"{"op": "stats"}"#.to_string()], &cache, &stats);
        let s = responses[0].get("stats").unwrap();
        assert_eq!(s.get("cached_frontends").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("completed").and_then(Json::as_u64), Some(1));
        assert!(
            s.get("avg_wait_s").and_then(Json::as_f64).is_some(),
            "finite once a job completed"
        );
    }
}
