//! Bounded admission queue.
//!
//! Admission control is the daemon's back-pressure mechanism: the reader
//! thread must **never block** on a full queue (that would stall every
//! later request, including the cheap ones), so [`BoundedQueue::try_push`]
//! fails fast and the caller answers the client with a structured
//! `queue_full` error. Workers block on [`BoundedQueue::pop`] until a job
//! arrives or the queue is closed and drained.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Rejection returned by [`BoundedQueue::try_push`] when the queue is at
/// capacity (or closed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity that was exhausted.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work queue full ({} jobs queued)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with non-blocking admission and blocking
/// consumption.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Queue state is plain data; recover from a poisoned lock rather
        // than letting one panicking worker wedge admission for good.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a job without ever blocking.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `capacity` jobs are already pending (or the
    /// queue has been closed).
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed and drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes are
    /// rejected, and blocked consumers wake up once the backlog is gone.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of jobs currently pending.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_beyond_capacity_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }

    #[test]
    fn close_drains_then_wakes_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert!(q.try_push(8).is_err(), "closed queues admit nothing");
        assert_eq!(q.pop(), Some(7), "backlog still drains");
        assert_eq!(q.pop(), None);
        // A blocked consumer also wakes.
        let q2 = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q2);
            std::thread::spawn(move || q.pop())
        };
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn queue_full_error_renders() {
        let e = QueueFull { capacity: 16 };
        assert_eq!(e.to_string(), "work queue full (16 jobs queued)");
    }
}
