//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in completion
//! order (responses carry the request `id` for correlation):
//!
//! ```json
//! {"id": 1, "op": "synth", "design": {"generator": "INTDIV(6)"},
//!  "flow": "hierarchical", "post_opt": true,
//!  "budget": {"max_gates": 10000, "deadline_ms": 2000}}
//! {"id": 2, "op": "stats"}
//! {"id": 3, "op": "shutdown"}
//! ```
//!
//! A successful synthesis response embeds the same row shape the
//! `BENCH_*.json` files use (per-stage timings, cost, lint summary);
//! failures carry a structured error with a machine-readable `kind` and,
//! for input errors, a rendered source-anchored diagnostic:
//!
//! ```json
//! {"id": 1, "ok": true, "queue_wait_s": 0.000123, "result": {...}}
//! {"id": 4, "ok": false, "error": {"kind": "queue_full",
//!  "message": "work queue full (16 jobs queued)"}}
//! ```

use qda_bench::json::Json;
use qda_core::flow::FlowBudget;
use qda_core::Design;
use std::time::Duration;

/// Where a request's design comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum DesignSpec {
    /// A named built-in generator, e.g. `INTDIV(6)` or `NEWTON(5)`.
    Generator(Design),
    /// Inline Verilog source.
    Verilog(String),
    /// Inline RevKit `.real` source (optimize + analyze service; there is
    /// no reference function to synthesize from).
    Real(String),
}

/// Which flow a synthesis request runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowChoice {
    /// BDD collapse → optimum embedding → TBS.
    Functional,
    /// ESOP extraction → exorcism → REVS ESOP mode with factoring `p`.
    Esop {
        /// REVS factoring parameter.
        p: usize,
    },
    /// XMG mapping → REVS hierarchical (Bennett cleanup).
    Hierarchical,
}

/// Post-processing switches of a synthesis request; `None` keeps the
/// flow's own default (e.g. resynthesis defaults on only for the
/// hierarchical flow).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowSwitches {
    /// Run the peephole optimizer.
    pub post_opt: Option<bool>,
    /// Run windowed resynthesis.
    pub post_resynth: Option<bool>,
    /// Run the static analyzer.
    pub analyze: Option<bool>,
}

/// Per-request resource budget, decoded from the `budget` object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestBudget {
    /// Reject results with more gates than this.
    pub max_gates: Option<u64>,
    /// Reject results with more lines than this.
    pub max_qubits: Option<u64>,
    /// Wall-clock deadline, measured from admission; the watchdog
    /// abandons the job's result once it passes.
    pub deadline_ms: Option<u64>,
    /// Worker-pool cap for this job (`qda_logic::par::with_worker_cap`).
    pub workers: Option<u64>,
}

impl RequestBudget {
    /// The flow-level budget this request implies, with the deadline
    /// anchored at `admitted` (i.e. now, at admission time).
    pub fn to_flow_budget(&self, admitted: std::time::Instant) -> FlowBudget {
        FlowBudget {
            max_gates: self.max_gates,
            max_qubits: self.max_qubits,
            deadline: self
                .deadline_ms
                .map(|ms| admitted + Duration::from_millis(ms)),
        }
    }
}

/// A synthesis job, decoded and validated.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthRequest {
    /// Echoed verbatim in the response.
    pub id: Json,
    /// The design to synthesize.
    pub design: DesignSpec,
    /// The flow to run (ignored for `.real` designs).
    pub flow: FlowChoice,
    /// Post-processing switches.
    pub switches: FlowSwitches,
    /// Resource budget.
    pub budget: RequestBudget,
}

/// A decoded request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a synthesis job.
    Synth(Box<SynthRequest>),
    /// Report daemon statistics.
    Stats {
        /// Echoed verbatim in the response.
        id: Json,
    },
    /// Stop accepting requests on this stream.
    Shutdown {
        /// Echoed verbatim in the response.
        id: Json,
    },
}

/// Machine-readable failure category of an error response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a valid request shape.
    BadRequest,
    /// The submitted design source failed to parse/elaborate.
    Parse,
    /// The bounded work queue was at capacity.
    QueueFull,
    /// The job missed its deadline and its result was abandoned.
    Timeout,
    /// The result exceeded a resource cap of the request budget.
    Budget,
    /// The flow itself failed (collapse blow-up, verification, ...).
    Flow,
    /// The job panicked; the daemon caught it and kept serving.
    Panic,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Parse => "parse",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Budget => "budget",
            ErrorKind::Flow => "flow",
            ErrorKind::Panic => "panic",
        }
    }
}

/// A structured request failure: category, message, and (for input
/// errors) a rendered source-anchored diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestError {
    /// Failure category.
    pub kind: ErrorKind,
    /// One-line description.
    pub message: String,
    /// Rendered diagnostic quoting the offending source line, when the
    /// failure is anchored in submitted source.
    pub diagnostic: Option<String>,
}

impl RequestError {
    /// An error without a source anchor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            diagnostic: None,
        }
    }

    /// Attaches a rendered diagnostic.
    pub fn with_diagnostic(mut self, diagnostic: String) -> Self {
        self.diagnostic = Some(diagnostic);
        self
    }
}

fn bad(message: impl Into<String>) -> RequestError {
    RequestError::new(ErrorKind::BadRequest, message)
}

/// Parses a generator name of the form `INTDIV(6)` / `NEWTON(5)`
/// (case-insensitive).
///
/// # Errors
///
/// Rejects unknown families and malformed parameter syntax. The
/// parameter *value* is deliberately not validated here: a hostile value
/// must be survivable at execution time anyway (that is what the panic
/// containment and cache-poison recovery are for).
pub fn parse_generator(name: &str) -> Result<Design, RequestError> {
    let trimmed = name.trim();
    let open = trimmed
        .find('(')
        .ok_or_else(|| bad(format!("generator {trimmed:?} is not of the form NAME(n)")))?;
    let close = trimmed
        .strip_suffix(')')
        .ok_or_else(|| bad(format!("generator {trimmed:?} is missing the closing ')'")))?;
    let family = trimmed[..open].trim().to_ascii_uppercase();
    let param = close[open + 1..].trim();
    let n: usize = param
        .parse()
        .map_err(|_| bad(format!("generator parameter {param:?} is not an integer")))?;
    match family.as_str() {
        "INTDIV" => Ok(Design::intdiv(n)),
        "NEWTON" => Ok(Design::newton(n)),
        _ => Err(bad(format!(
            "unknown generator family {family:?} (supported: INTDIV, NEWTON)"
        ))),
    }
}

/// Admission-time mirror of the `.real` parser's `.numvars` cap: a
/// hostile header is rejected before the job spends a queue slot, with
/// the same line-numbered message the parser itself would produce.
///
/// # Errors
///
/// A [`RequestError`] of kind [`ErrorKind::Parse`] naming the offending
/// line, with a rendered diagnostic.
pub fn precheck_real(source: &str) -> Result<(), RequestError> {
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix(".numvars") {
            if let Ok(n) = rest.trim().parse::<u64>() {
                if n > qda_rev::io::MAX_NUMVARS as u64 {
                    let message = format!(
                        "line {}: .numvars {n} exceeds the supported maximum {}",
                        idx + 1,
                        qda_rev::io::MAX_NUMVARS
                    );
                    let rendered = crate::diagnostic::render(
                        "request.real",
                        source,
                        idx + 1,
                        &format!(
                            ".numvars {n} exceeds the supported maximum {}",
                            qda_rev::io::MAX_NUMVARS
                        ),
                    );
                    return Err(
                        RequestError::new(ErrorKind::Parse, message).with_diagnostic(rendered)
                    );
                }
            }
            return Ok(());
        }
    }
    Ok(())
}

fn decode_design(value: &Json) -> Result<DesignSpec, RequestError> {
    if let Some(name) = value.get("generator").and_then(Json::as_str) {
        return Ok(DesignSpec::Generator(parse_generator(name)?));
    }
    if let Some(src) = value.get("verilog").and_then(Json::as_str) {
        if src.trim().is_empty() {
            return Err(bad("empty verilog source"));
        }
        return Ok(DesignSpec::Verilog(src.to_string()));
    }
    if let Some(src) = value.get("real").and_then(Json::as_str) {
        precheck_real(src)?;
        return Ok(DesignSpec::Real(src.to_string()));
    }
    Err(bad(
        "design must carry one of: \"generator\", \"verilog\", \"real\"",
    ))
}

fn decode_flow(root: &Json) -> Result<FlowChoice, RequestError> {
    let Some(name) = root.get("flow") else {
        return Ok(FlowChoice::Esop { p: 0 });
    };
    let Some(name) = name.as_str() else {
        return Err(bad("\"flow\" must be a string"));
    };
    match name {
        "functional" => Ok(FlowChoice::Functional),
        "esop" => {
            let p = match root.get("p") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad("\"p\" must be a non-negative integer"))?
                    as usize,
            };
            Ok(FlowChoice::Esop { p })
        }
        "hierarchical" => Ok(FlowChoice::Hierarchical),
        other => Err(bad(format!(
            "unknown flow {other:?} (supported: functional, esop, hierarchical)"
        ))),
    }
}

fn decode_bool(root: &Json, key: &str) -> Result<Option<bool>, RequestError> {
    match root.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(format!("{key:?} must be a boolean"))),
    }
}

fn decode_u64(obj: &Json, key: &str) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("{key:?} must be a non-negative integer"))),
    }
}

fn decode_budget(root: &Json) -> Result<RequestBudget, RequestError> {
    let Some(budget) = root.get("budget") else {
        return Ok(RequestBudget::default());
    };
    if !matches!(budget, Json::Obj(_)) {
        return Err(bad("\"budget\" must be an object"));
    }
    Ok(RequestBudget {
        max_gates: decode_u64(budget, "max_gates")?,
        max_qubits: decode_u64(budget, "max_qubits")?,
        deadline_ms: decode_u64(budget, "deadline_ms")?,
        workers: decode_u64(budget, "workers")?,
    })
}

/// Decodes one request line.
///
/// The request `id` is echoed in responses and may be any JSON scalar;
/// a missing id decodes as `null`.
///
/// # Errors
///
/// A [`RequestError`] of kind [`ErrorKind::BadRequest`] (malformed JSON
/// or request shape) or [`ErrorKind::Parse`] (a design source rejected at
/// admission).
pub fn decode_request(line: &str) -> Result<Request, RequestError> {
    let root = Json::parse(line).map_err(|e| bad(e.to_string()))?;
    if !matches!(root, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    let id = root.get("id").cloned().unwrap_or(Json::Null);
    let op = match root.get("op") {
        None => "synth",
        Some(v) => v.as_str().ok_or_else(|| bad("\"op\" must be a string"))?,
    };
    match op {
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "synth" => {
            let design = root
                .get("design")
                .ok_or_else(|| bad("synth request needs a \"design\" object"))?;
            let design = decode_design(design)?;
            Ok(Request::Synth(Box::new(SynthRequest {
                id,
                design,
                flow: decode_flow(&root)?,
                switches: FlowSwitches {
                    post_opt: decode_bool(&root, "post_opt")?,
                    post_resynth: decode_bool(&root, "post_resynth")?,
                    analyze: decode_bool(&root, "analyze")?,
                },
                budget: decode_budget(&root)?,
            })))
        }
        other => Err(bad(format!(
            "unknown op {other:?} (supported: synth, stats, shutdown)"
        ))),
    }
}

/// Renders a success response embedding `result` (a `BENCH_*.json`-shaped
/// row or a stats object).
pub fn ok_response(
    id: &Json,
    payload_key: &str,
    payload: Json,
    queue_wait_s: Option<f64>,
) -> String {
    let mut pairs = vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(true)),
    ];
    if let Some(wait) = queue_wait_s {
        pairs.push(("queue_wait_s".to_string(), Json::fixed(wait, 6)));
    }
    pairs.push((payload_key.to_string(), payload));
    Json::Obj(pairs).render()
}

/// Renders a structured error response.
pub fn error_response(id: &Json, error: &RequestError) -> String {
    let mut err_pairs = vec![
        ("kind".to_string(), Json::from(error.kind.as_str())),
        ("message".to_string(), Json::from(error.message.as_str())),
    ];
    if let Some(diagnostic) = &error.diagnostic {
        err_pairs.push(("diagnostic".to_string(), Json::from(diagnostic.as_str())));
    }
    Json::object([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::Obj(err_pairs)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_generator_synth_request() {
        let r = decode_request(
            r#"{"id": 7, "design": {"generator": "intdiv(6)"}, "flow": "esop", "p": 1,
                "post_opt": false, "budget": {"max_gates": 500, "deadline_ms": 2000}}"#,
        )
        .unwrap();
        let Request::Synth(s) = r else {
            panic!("not synth")
        };
        assert_eq!(s.id, Json::Int(7));
        assert_eq!(s.design, DesignSpec::Generator(Design::intdiv(6)));
        assert_eq!(s.flow, FlowChoice::Esop { p: 1 });
        assert_eq!(s.switches.post_opt, Some(false));
        assert_eq!(s.switches.post_resynth, None, "flow default preserved");
        assert_eq!(s.budget.max_gates, Some(500));
        assert_eq!(s.budget.deadline_ms, Some(2000));
        assert_eq!(s.budget.max_qubits, None);
    }

    #[test]
    fn op_defaults_to_synth_and_flow_to_esop_p0() {
        let r = decode_request(r#"{"design": {"generator": "NEWTON(4)"}}"#).unwrap();
        let Request::Synth(s) = r else {
            panic!("not synth")
        };
        assert_eq!(s.id, Json::Null);
        assert_eq!(s.flow, FlowChoice::Esop { p: 0 });
        assert_eq!(s.budget, RequestBudget::default());
    }

    #[test]
    fn decodes_stats_and_shutdown() {
        assert_eq!(
            decode_request(r#"{"id": "s1", "op": "stats"}"#).unwrap(),
            Request::Stats {
                id: Json::from("s1")
            }
        );
        assert_eq!(
            decode_request(r#"{"id": 9, "op": "shutdown"}"#).unwrap(),
            Request::Shutdown { id: Json::Int(9) }
        );
    }

    #[test]
    fn rejects_malformed_requests_with_bad_request() {
        for line in [
            "not json at all",
            "[1, 2]",
            r#"{"op": "synth"}"#,
            r#"{"op": "zap"}"#,
            r#"{"design": {}}"#,
            r#"{"design": {"generator": "FFT(4)"}}"#,
            r#"{"design": {"generator": "INTDIV"}}"#,
            r#"{"design": {"generator": "INTDIV(x)"}}"#,
            r#"{"design": {"generator": "INTDIV(4)"}, "flow": "quantum"}"#,
            r#"{"design": {"generator": "INTDIV(4)"}, "post_opt": "yes"}"#,
            r#"{"design": {"generator": "INTDIV(4)"}, "budget": {"max_gates": -1}}"#,
            r#"{"design": {"verilog": "  "}}"#,
        ] {
            let e = decode_request(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "line {line:?} -> {e:?}");
        }
    }

    #[test]
    fn generator_parse_accepts_paper_spellings() {
        assert_eq!(parse_generator("INTDIV(6)").unwrap(), Design::intdiv(6));
        assert_eq!(parse_generator(" newton( 5 ) ").unwrap(), Design::newton(5));
        // A hostile parameter value decodes fine — containment happens at
        // execution time, where the panic is caught and reported.
        assert_eq!(parse_generator("INTDIV(1)").unwrap(), Design::intdiv(1));
    }

    #[test]
    fn numvars_bomb_is_rejected_at_admission() {
        let line = r#"{"id": 3, "design": {"real": ".numvars 999999999\n.begin\nt1 x0\n.end"}}"#;
        let e = decode_request(line).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Parse);
        assert!(e.message.contains("line 1"), "{}", e.message);
        assert!(e.message.contains("999999999"), "{}", e.message);
        let d = e.diagnostic.expect("source-anchored");
        assert!(d.contains("request.real:1"), "{d}");
        assert!(d.contains(".numvars 999999999"), "{d}");
        // An in-range header sails through.
        assert!(precheck_real(".numvars 64\n.begin\n.end").is_ok());
        assert!(precheck_real("no header at all").is_ok());
    }

    #[test]
    fn responses_render_and_round_trip() {
        let ok = ok_response(
            &Json::Int(4),
            "result",
            Json::object([("gates", Json::Int(12))]),
            Some(0.25),
        );
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("queue_wait_s").and_then(Json::as_f64), Some(0.25));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("gates"))
                .and_then(Json::as_u64),
            Some(12)
        );

        let err = error_response(
            &Json::Null,
            &RequestError::new(ErrorKind::QueueFull, "work queue full (2 jobs queued)"),
        );
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v.get("id").unwrap().is_null());
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("queue_full"));
        assert!(e.get("diagnostic").is_none());
    }

    #[test]
    fn error_kinds_have_stable_wire_spellings() {
        for (kind, wire) in [
            (ErrorKind::BadRequest, "bad_request"),
            (ErrorKind::Parse, "parse"),
            (ErrorKind::QueueFull, "queue_full"),
            (ErrorKind::Timeout, "timeout"),
            (ErrorKind::Budget, "budget"),
            (ErrorKind::Flow, "flow"),
            (ErrorKind::Panic, "panic"),
        ] {
            assert_eq!(kind.as_str(), wire);
        }
    }
}
