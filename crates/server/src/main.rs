//! The `qda-server` binary: synthesis-as-a-service over stdio or TCP.

use qda_core::flow::FrontendCache;
use qda_server::{serve_session, serve_tcp, ServerConfig, ServerStats};
use std::sync::Arc;

const USAGE: &str = "\
qda-server — reversible-synthesis daemon (line-delimited JSON)

USAGE:
    qda-server [OPTIONS]

OPTIONS:
    --tcp ADDR            Listen on ADDR (e.g. 127.0.0.1:7878) instead of stdio
    --queue N             Bounded work-queue capacity        [default: 16]
    --workers N           Worker threads per session         [default: 2]
    --job-workers N       qda_logic::par cap per job (0 = uncapped)
    --max-line-bytes N    Longest accepted request line      [default: 1048576]
    --deadline-ms N       Default per-job deadline when the request carries none
    --help                Print this help

One JSON request per line on stdin (or the socket), one response line per
request; see the qda-server README for the protocol.";

fn parse_args() -> Result<(Option<String>, ServerConfig), String> {
    let mut config = ServerConfig::default();
    let mut tcp = None;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--tcp" => tcp = Some(value(&mut args, "--tcp")?),
            "--queue" => {
                config.queue_capacity = parse_num(&value(&mut args, "--queue")?, "--queue")?;
            }
            "--workers" => {
                config.workers = parse_num(&value(&mut args, "--workers")?, "--workers")?;
            }
            "--job-workers" => {
                config.job_worker_cap =
                    parse_num(&value(&mut args, "--job-workers")?, "--job-workers")?;
            }
            "--max-line-bytes" => {
                config.max_line_bytes =
                    parse_num(&value(&mut args, "--max-line-bytes")?, "--max-line-bytes")?;
            }
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse_num(
                    &value(&mut args, "--deadline-ms")?,
                    "--deadline-ms",
                )?);
            }
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
    }
    Ok((tcp, config))
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: {text:?} is not a valid number"))
}

fn main() {
    let (tcp, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let result = match tcp {
        Some(addr) => serve_tcp(&addr, config),
        None => {
            let cache = Arc::new(FrontendCache::new());
            let stats = Arc::new(ServerStats::default());
            let stdin = std::io::stdin();
            serve_session(stdin.lock(), std::io::stdout(), &config, &cache, &stats)
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
