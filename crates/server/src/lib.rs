//! Synthesis-as-a-service: the flows of the paper behind a daemon.
//!
//! `qda-server` turns the batch pipeline (Verilog → AIG → reversible
//! circuit, `qda-core`'s three flows) into a long-running service that
//! speaks **line-delimited JSON** over stdio or a TCP listener. Each
//! request line carries a design (a named generator such as `INTDIV(6)`,
//! inline Verilog, or inline `.real` text), a flow configuration, and a
//! per-request resource budget; each response line carries either the
//! same `BENCH_*.json` row shape the bench binaries emit (per-stage
//! timings, cost figures, lint summary) or a structured error.
//!
//! What makes it a *daemon* rather than a loop around `Flow::run`:
//!
//! * **Bounded admission** ([`queue`]): a fixed-capacity work queue;
//!   beyond capacity the caller gets a structured `queue_full` error
//!   immediately — the reader thread never blocks, so cheap requests
//!   (`stats`, malformed lines) are always answered.
//! * **Budget enforcement** (`qda_core::flow::FlowBudget`): per-request
//!   gate/qubit caps checked on the synthesized result, and a wall-clock
//!   deadline enforced by a watchdog thread that answers the client with
//!   a `timeout` error and abandons the worker's eventual result
//!   (responses are complete-once).
//! * **Containment** ([`server`]): jobs run under `catch_unwind`, so a
//!   hostile design parameter that trips a generator assertion produces
//!   a structured `panic` response — and the shared front-end cache
//!   recovers its poisoned slot instead of wedging (the cache-poisoning
//!   fix in `qda-core`).
//! * **Source-anchored diagnostics** ([`diagnostic`]): a remote caller
//!   has no file to open, so parse errors quote the offending line of
//!   the *submitted* source with a caret, rustc-style.
//!
//! See [`protocol`] for the wire format and `README.md` for a quick
//! start.

pub mod diagnostic;
pub mod protocol;
pub mod queue;
pub mod server;

pub use server::{serve_session, serve_tcp, ServerConfig, ServerStats};
