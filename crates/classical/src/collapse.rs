//! Collapsing an AIG into per-output BDDs (ABC `collapse`).
//!
//! The functional reversible-synthesis flow requires a symbolic, canonical
//! function representation; the ESOP flow extracts minimized ESOPs from the
//! same BDDs. Collapsing can blow up — a node budget aborts the attempt,
//! mirroring how the paper notes that "collapsing does not scale to these
//! high bitwidths".

use qda_bdd::{Bdd, BddManager};
use qda_logic::aig::{Aig, Lit};
use std::fmt;

/// Error: the BDD grew past the node budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollapseError {
    /// The budget that was exceeded.
    pub node_limit: usize,
}

impl fmt::Display for CollapseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD collapse exceeded {} nodes", self.node_limit)
    }
}

impl std::error::Error for CollapseError {}

/// Collapses an AIG into one BDD per primary output, sharing a manager.
///
/// PI `i` of the AIG becomes BDD variable `i`.
///
/// # Errors
///
/// Returns [`CollapseError`] when the manager exceeds `node_limit` nodes.
///
/// # Example
///
/// ```
/// use qda_logic::aig::Aig;
/// use qda_classical::collapse::collapse_to_bdds;
///
/// let mut aig = Aig::new(2);
/// let a = aig.pi(0);
/// let b = aig.pi(1);
/// let f = aig.xor(a, b);
/// aig.add_po(f);
/// let (mgr, bdds) = collapse_to_bdds(&aig, 1_000)?;
/// assert_eq!(mgr.sat_count(bdds[0]), 2);
/// # Ok::<(), qda_classical::collapse::CollapseError>(())
/// ```
pub fn collapse_to_bdds(
    aig: &Aig,
    node_limit: usize,
) -> Result<(BddManager, Vec<Bdd>), CollapseError> {
    let mut mgr = BddManager::new(aig.num_pis());
    let mut map: Vec<Bdd> = vec![Bdd::FALSE; aig.num_nodes()];
    for i in 0..aig.num_pis() {
        map[i + 1] = mgr.var(i);
    }
    let read = |mgr: &mut BddManager, map: &[Bdd], l: Lit| -> Bdd {
        let b = map[l.node()];
        if l.is_complement() {
            mgr.not(b)
        } else {
            b
        }
    };
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        let [a, b] = aig.fanins(n);
        let ba = read(&mut mgr, &map, a);
        let bb = read(&mut mgr, &map, b);
        map[n] = mgr.and(ba, bb);
        if mgr.num_nodes() > node_limit {
            return Err(CollapseError { node_limit });
        }
    }
    let outs: Vec<Bdd> = aig
        .pos()
        .to_vec()
        .into_iter()
        .map(|po| read(&mut mgr, &map, po))
        .collect();
    Ok((mgr, outs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_matches_aig_semantics() {
        let mut aig = Aig::new(5);
        let pis: Vec<Lit> = (0..5).map(|i| aig.pi(i)).collect();
        let s = aig.xor(pis[0], pis[1]);
        let t = aig.maj(s, pis[2], pis[3]);
        let u = aig.or(t, !pis[4]);
        aig.add_po(u);
        aig.add_po(s);
        let (mgr, bdds) = collapse_to_bdds(&aig, 10_000).unwrap();
        for x in 0..32u64 {
            let y = aig.eval(x);
            assert_eq!(mgr.eval(bdds[0], x), y & 1 == 1);
            assert_eq!(mgr.eval(bdds[1], x), (y >> 1) & 1 == 1);
        }
    }

    #[test]
    fn node_limit_aborts() {
        // A multiplier's middle bits have exponential BDDs; 6x6 with a tiny
        // limit must abort.
        let mut aig = Aig::new(12);
        let a: Vec<Lit> = (0..6).map(|i| aig.pi(i)).collect();
        let b: Vec<Lit> = (0..6).map(|i| aig.pi(6 + i)).collect();
        // Poor-man's multiplier high bit: chain of MAJ/XOR mixing.
        let mut acc = Lit::FALSE;
        for i in 0..6 {
            for j in 0..6 {
                let pp = aig.and(a[i], b[j]);
                acc = aig.maj(acc, pp, a[(i + j) % 6]);
            }
        }
        aig.add_po(acc);
        let r = collapse_to_bdds(&aig, 40);
        assert!(r.is_err());
    }
}
