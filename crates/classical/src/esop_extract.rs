//! ESOP extraction from BDDs via PSDKRO expansion.
//!
//! A pseudo-Kronecker (PSDKRO) expression is obtained by choosing, at every
//! BDD node, the cheapest of the three expansions
//!
//! * Shannon:         `f = x̄·f₀ ⊕ x·f₁`
//! * positive Davio:  `f = f₀ ⊕ x·f₂`
//! * negative Davio:  `f = f₁ ⊕ x̄·f₂`
//!
//! with `f₂ = f₀ ⊕ f₁`. The recursion is memoized per BDD node, so shared
//! subfunctions are expanded once; the memo stores reference-counted cube
//! slices (`Rc<[Cube]>`), so a memo hit costs one pointer clone instead of
//! deep-copying the node's whole cube list, and
//! [`extract_multi_esop`] shares one memo across all outputs, so BDD nodes
//! shared between outputs contribute their cube lists without being
//! re-expanded per output. The result is the starting point for
//! [`crate::exorcism`] minimization — together they stand in for ABC's
//! `&exorcism` in the paper's ESOP flow.

use qda_bdd::{Bdd, BddManager};
use qda_logic::cube::Cube;
use qda_logic::esop::{Esop, MultiEsop};
use qda_logic::hash::FxHashMap;
use std::rc::Rc;

/// Memoized per-node cube lists: cloning a hit is `O(1)`.
type CubeList = Rc<[Cube]>;
type Memo = FxHashMap<Bdd, CubeList>;

/// Extracts a single-output ESOP from a BDD.
pub fn extract_esop(mgr: &mut BddManager, f: Bdd) -> Esop {
    let mut memo = Memo::default();
    let cubes = rec(mgr, f, &mut memo);
    Esop::from_cubes(mgr.num_vars(), cubes.to_vec())
}

fn rec(mgr: &mut BddManager, f: Bdd, memo: &mut Memo) -> CubeList {
    if f == Bdd::FALSE {
        return Vec::new().into();
    }
    if f == Bdd::TRUE {
        return vec![Cube::tautology()].into();
    }
    if let Some(c) = memo.get(&f) {
        return Rc::clone(c);
    }
    let var = mgr.top_var(f) as usize;
    let (f0, f1) = mgr.branches(f, var as u32);
    let f2 = mgr.xor(f0, f1);
    let c0 = rec(mgr, f0, memo);
    let c1 = rec(mgr, f1, memo);
    let c2 = rec(mgr, f2, memo);
    // Pick the expansion minimizing cube count (ties favour Davio, which
    // produces literal-free branches).
    let shannon = c0.len() + c1.len();
    let pdavio = c0.len() + c2.len();
    let ndavio = c1.len() + c2.len();
    let best = shannon.min(pdavio).min(ndavio);
    let mut cubes: Vec<Cube> = Vec::with_capacity(best);
    if best == pdavio {
        cubes.extend(c0.iter().copied());
        cubes.extend(c2.iter().map(|c| c.with_literal(var, true)));
    } else if best == ndavio {
        cubes.extend(c1.iter().copied());
        cubes.extend(c2.iter().map(|c| c.with_literal(var, false)));
    } else {
        cubes.extend(c0.iter().map(|c| c.with_literal(var, false)));
        cubes.extend(c1.iter().map(|c| c.with_literal(var, true)));
    }
    let cubes: CubeList = cubes.into();
    memo.insert(f, Rc::clone(&cubes));
    cubes
}

/// Extracts a shared multi-output ESOP from per-output BDDs (cubes feeding
/// several outputs are stored once with a combined output mask). All
/// outputs expand through one memo, so BDD nodes shared across outputs are
/// expanded once in total, not once per output.
///
/// # Panics
///
/// Panics if `outputs` is empty or has more than 64 entries.
pub fn extract_multi_esop(mgr: &mut BddManager, outputs: &[Bdd]) -> MultiEsop {
    assert!(!outputs.is_empty() && outputs.len() <= 64);
    let mut memo = Memo::default();
    let esops: Vec<Esop> = outputs
        .iter()
        .map(|&f| {
            let cubes = rec(mgr, f, &mut memo);
            Esop::from_cubes(mgr.num_vars(), cubes.to_vec())
        })
        .collect();
    MultiEsop::from_single_outputs(&esops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::tt::TruthTable;

    fn tt_to_esop(tt: &TruthTable) -> Esop {
        let mut mgr = BddManager::new(tt.num_vars());
        let f = mgr.from_truth_table(tt);
        extract_esop(&mut mgr, f)
    }

    #[test]
    fn parity_is_linear_in_cubes() {
        // x0 ⊕ x1 ⊕ x2 ⊕ x3 needs exactly 4 cubes in PSDKRO (one per
        // variable) versus 8 minterms.
        let tt = TruthTable::from_fn(4, |x| x.count_ones() % 2 == 1);
        let esop = tt_to_esop(&tt);
        assert_eq!(esop.to_truth_table(), tt);
        assert_eq!(esop.len(), 4);
    }

    #[test]
    fn and_is_single_cube() {
        let tt = TruthTable::from_fn(3, |x| x == 7);
        let esop = tt_to_esop(&tt);
        assert_eq!(esop.len(), 1);
        assert_eq!(esop.cubes()[0].num_literals(), 3);
    }

    #[test]
    fn random_functions_round_trip() {
        for seed in 0..12u64 {
            let tt = TruthTable::from_fn(5, |x| {
                (x.wrapping_mul(2654435761).wrapping_add(seed * 97) >> 3) & 1 == 1
            });
            let esop = tt_to_esop(&tt);
            assert_eq!(esop.to_truth_table(), tt, "seed {seed}");
        }
    }

    #[test]
    fn psdkro_beats_minterm_expansion() {
        // A dense function: majority of 5.
        let tt = TruthTable::from_fn(5, |x| x.count_ones() >= 3);
        let esop = tt_to_esop(&tt);
        assert_eq!(esop.to_truth_table(), tt);
        assert!((esop.len() as u64) < tt.count_ones());
    }

    #[test]
    fn multi_output_shares_cubes() {
        let mut mgr = BddManager::new(3);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let and01 = mgr.and(x0, x1);
        let x2 = mgr.var(2);
        let g = mgr.xor(and01, x2);
        let multi = extract_multi_esop(&mut mgr, &[and01, g]);
        let tts = multi.to_truth_table();
        for x in 0..8u64 {
            let e0 = (x & 1) & ((x >> 1) & 1);
            let e1 = e0 ^ ((x >> 2) & 1);
            assert_eq!(tts.eval(x), e0 | (e1 << 1));
        }
        // The x0&x1 cube is shared: 2 distinct cubes total, not 3.
        assert_eq!(multi.len(), 2);
    }

    #[test]
    fn shared_memo_matches_per_output_extraction() {
        // Outputs with heavily shared BDD structure: the multi-output
        // extraction (one memo) must agree with extracting each output in
        // isolation (fresh memos).
        let mut mgr = BddManager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|i| mgr.var(i)).collect();
        let mut acc = Bdd::FALSE;
        let mut outputs = Vec::new();
        for &v in &vars {
            acc = mgr.xor(acc, v);
            let guarded = mgr.and(acc, vars[0]);
            outputs.push(mgr.or(guarded, vars[5]));
        }
        let multi = extract_multi_esop(&mut mgr, &outputs);
        for (j, &f) in outputs.iter().enumerate() {
            let single = extract_esop(&mut mgr, f);
            assert_eq!(
                multi.output(j).to_truth_table(),
                single.to_truth_table(),
                "output {j}"
            );
        }
    }

    #[test]
    fn constants() {
        let mut mgr = BddManager::new(2);
        assert!(extract_esop(&mut mgr, Bdd::FALSE).is_empty());
        let one = extract_esop(&mut mgr, Bdd::TRUE);
        assert_eq!(one.len(), 1);
        assert_eq!(one.cubes()[0].num_literals(), 0);
    }
}
