//! Classical logic synthesis: the middle level of the paper's design flows.
//!
//! This crate plays the role ABC and CirKit play in the paper:
//!
//! * [`rewrite`] — AIG optimization (the `dc2`/`resyn2` step),
//! * [`collapse`] — AIG → BDD collapsing (ABC `collapse`),
//! * [`esop_extract`] — BDD → ESOP via PSDKRO expansion,
//! * [`exorcism`] — exorcism-style multi-output ESOP minimization
//!   (ABC `&exorcism`),
//! * [`cut`] — k-feasible cut enumeration,
//! * [`xmg_map`] — AIG → XMG mapping over 4-feasible cuts
//!   (CirKit `xmglut -k 4`).

pub mod collapse;
pub mod cut;
pub mod esop_extract;
pub mod exorcism;
pub mod rewrite;
pub mod xmg_map;

pub use collapse::collapse_to_bdds;
pub use esop_extract::extract_multi_esop;
pub use exorcism::minimize_esop;
pub use rewrite::optimize_aig;
pub use xmg_map::map_to_xmg;
