//! Classical logic synthesis: the middle level of the paper's design flows.
//!
//! This crate plays the role ABC and CirKit play in the paper:
//!
//! * [`rewrite`] — AIG optimization (the `dc2`/`resyn2` step),
//! * [`collapse`] — AIG → BDD collapsing (ABC `collapse`),
//! * [`esop_extract`] — BDD → ESOP via PSDKRO expansion,
//! * [`exorcism`] — exorcism-style multi-output ESOP minimization
//!   (ABC `&exorcism`),
//! * [`cut`] — k-feasible cut enumeration,
//! * [`xmg_map`] — AIG → XMG mapping over 4-feasible cuts
//!   (CirKit `xmglut -k 4`).
//!
//! # Example
//!
//! Collapse a two-input XOR AIG into a BDD and extract its ESOP:
//!
//! ```
//! use qda_classical::collapse::collapse_to_bdds;
//! use qda_classical::esop_extract::extract_esop;
//! use qda_logic::aig::Aig;
//! use qda_logic::tt::TruthTable;
//!
//! let mut aig = Aig::new(2);
//! let a = aig.pi(0);
//! let b = aig.pi(1);
//! let f = aig.xor(a, b);
//! aig.add_po(f);
//! let (mut mgr, bdds) = collapse_to_bdds(&aig, 1_000)?;
//! let esop = extract_esop(&mut mgr, bdds[0]);
//! let xor = TruthTable::from_fn(2, |x| (x ^ (x >> 1)) & 1 == 1);
//! assert_eq!(esop.to_truth_table(), xor);
//! # Ok::<(), qda_classical::collapse::CollapseError>(())
//! ```

pub mod collapse;
pub mod cut;
pub mod esop_extract;
pub mod exorcism;
pub mod rewrite;
pub mod xmg_map;

pub use collapse::collapse_to_bdds;
pub use esop_extract::extract_multi_esop;
pub use exorcism::minimize_esop;
pub use rewrite::optimize_aig;
pub use xmg_map::map_to_xmg;
