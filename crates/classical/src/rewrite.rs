//! AIG optimization: the crate's stand-in for ABC's `dc2` / `resyn2`.
//!
//! Three passes, composed and iterated by [`optimize_aig`]:
//!
//! 1. **Strash rebuild** — reconstructs the AIG bottom-up through the
//!    structural-hashing constructor, folding constants and duplicate
//!    structure introduced by earlier passes.
//! 2. **Balance** — collects maximal AND trees and rebuilds them as
//!    balanced trees (reduces depth, often exposes sharing).
//! 3. **Fraig-lite** — for AIGs with ≤ 16 inputs, computes the exact truth
//!    table of every node and merges functionally equivalent (or
//!    antivalent) nodes. This is exact (no SAT needed) because the whole
//!    input space fits in the simulation vectors.

use qda_logic::aig::{Aig, Lit};
use qda_logic::hash::FxHashMap;

/// Options controlling [`optimize_aig`].
///
/// `Eq`/`Hash` so the options can key front-end caches (two flows asking
/// for the same optimization share one optimized AIG).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OptimizeOptions {
    /// Number of rebuild+balance rounds.
    pub rounds: usize,
    /// Enable the exact fraig pass for ≤ `fraig_limit`-input AIGs.
    pub fraig_limit: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        Self {
            rounds: 3,
            fraig_limit: 16,
        }
    }
}

/// Optimizes an AIG, returning a functionally equivalent, usually smaller
/// one. Mirrors the role of several `dc2` rounds in the paper's flows.
///
/// # Example
///
/// ```
/// use qda_logic::aig::Aig;
/// use qda_classical::rewrite::{optimize_aig, OptimizeOptions};
///
/// let mut aig = Aig::new(2);
/// let a = aig.pi(0);
/// let b = aig.pi(1);
/// let x = aig.xor(a, b);
/// let y = aig.xor(a, b); // shared by hashing already
/// let f = aig.and(x, y); // = x
/// aig.add_po(f);
/// let opt = optimize_aig(&aig, &OptimizeOptions::default());
/// assert!(opt.num_ands() <= aig.num_ands());
/// ```
pub fn optimize_aig(aig: &Aig, options: &OptimizeOptions) -> Aig {
    let mut cur = aig.cleanup();
    for _ in 0..options.rounds {
        let balanced = balance(&cur);
        let fraiged = if balanced.num_pis() <= options.fraig_limit {
            fraig_exact(&balanced)
        } else {
            balanced
        };
        if fraiged.num_ands() >= cur.num_ands() {
            break;
        }
        cur = fraiged;
    }
    cur
}

/// Rebuilds the AIG with balanced AND trees.
///
/// Maximal single-fanout AND chains are collected into n-ary conjunctions
/// and re-emitted as balanced trees, reducing logic depth.
pub fn balance(aig: &Aig) -> Aig {
    let fanout = fanout_counts(aig);
    let mut out = Aig::new(aig.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_pis() + 1) {
        *m = Lit::new(i, false);
    }
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        // Collect the maximal AND tree rooted here, stopping at
        // multi-fanout or complemented edges.
        let mut leaves = Vec::new();
        collect_and_leaves(aig, Lit::new(n, false), n, &fanout, &mut leaves);
        let mapped: Vec<Lit> = leaves
            .iter()
            .map(|l| map[l.node()] ^ l.is_complement())
            .collect();
        map[n] = out.and_many(&mapped);
    }
    for po in aig.pos() {
        let l = map[po.node()] ^ po.is_complement();
        out.add_po(l);
    }
    out.cleanup()
}

fn collect_and_leaves(aig: &Aig, lit: Lit, root: usize, fanout: &[usize], leaves: &mut Vec<Lit>) {
    let n = lit.node();
    let expandable = !lit.is_complement() && aig.is_and(n) && (n == root || fanout[n] == 1);
    if expandable {
        let [a, b] = aig.fanins(n);
        collect_and_leaves(aig, a, root, fanout, leaves);
        collect_and_leaves(aig, b, root, fanout, leaves);
    } else {
        leaves.push(lit);
    }
}

fn fanout_counts(aig: &Aig) -> Vec<usize> {
    let mut counts = vec![0usize; aig.num_nodes()];
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        let [a, b] = aig.fanins(n);
        counts[a.node()] += 1;
        counts[b.node()] += 1;
    }
    for po in aig.pos() {
        counts[po.node()] += 1;
    }
    counts
}

/// Exact functional reduction for AIGs with few inputs: every node's full
/// truth table is computed and equivalent/antivalent nodes are merged.
///
/// # Panics
///
/// Panics if the AIG has more than 20 inputs (table blow-up guard).
pub fn fraig_exact(aig: &Aig) -> Aig {
    assert!(aig.num_pis() <= 20, "fraig_exact limited to 20 inputs");
    let n_in = aig.num_pis();
    let words_per_node = 1usize.max((1usize << n_in) / 64);
    // values[node] = packed truth table.
    let total = 1u64 << n_in;
    let mut values: Vec<Vec<u64>> = vec![vec![0; words_per_node]; aig.num_nodes()];
    // PIs.
    for pi in 0..n_in {
        for x in 0..total {
            if (x >> pi) & 1 == 1 {
                values[pi + 1][(x >> 6) as usize] |= 1 << (x & 63);
            }
        }
    }
    let mask = if n_in >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << n_in)) - 1
    };
    let read = |values: &Vec<Vec<u64>>, l: Lit, w: usize| -> u64 {
        let v = values[l.node()][w];
        if l.is_complement() {
            !v & mask
        } else {
            v & mask
        }
    };
    let mut out = Aig::new(n_in);
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, m) in map.iter_mut().enumerate().take(n_in + 1) {
        *m = Lit::new(i, false);
    }
    // Canonical table (with complement normalization: lowest bit clear).
    let mut canon: FxHashMap<Vec<u64>, Lit> = FxHashMap::default();
    canon.insert(vec![0; words_per_node], Lit::FALSE);
    for pi in 0..n_in {
        let tt: Vec<u64> = (0..words_per_node)
            .map(|w| values[pi + 1][w] & mask)
            .collect();
        canon.insert(tt, Lit::new(pi + 1, false));
    }
    for n in (n_in + 1)..aig.num_nodes() {
        let [a, b] = aig.fanins(n);
        for w in 0..words_per_node {
            values[n][w] = read(&values, a, w) & read(&values, b, w);
        }
        // Normalize: store with bit 0 = 0.
        let tt: Vec<u64> = (0..words_per_node).map(|w| values[n][w] & mask).collect();
        let complemented = tt[0] & 1 == 1;
        let key: Vec<u64> = if complemented {
            tt.iter().map(|w| !w & mask).collect()
        } else {
            tt.clone()
        };
        if let Some(&rep) = canon.get(&key) {
            map[n] = rep ^ complemented;
        } else {
            let la = map[a.node()] ^ a.is_complement();
            let lb = map[b.node()] ^ b.is_complement();
            let lit = out.and(la, lb);
            map[n] = lit;
            canon.insert(key, lit ^ complemented);
        }
    }
    for po in aig.pos() {
        let l = map[po.node()] ^ po.is_complement();
        out.add_po(l);
    }
    out.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::sim::{check_aig_equivalence, EquivalenceOutcome};

    fn random_aig(num_pis: usize, num_ands: usize, seed: u64) -> Aig {
        // Deterministic pseudo-random AIG builder.
        let mut aig = Aig::new(num_pis);
        let mut lits: Vec<Lit> = (0..num_pis).map(|i| aig.pi(i)).collect();
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..num_ands {
            let a = lits[(next() as usize) % lits.len()] ^ (next() & 1 == 1);
            let b = lits[(next() as usize) % lits.len()] ^ (next() & 1 == 1);
            let f = aig.and(a, b);
            lits.push(f);
        }
        for _ in 0..3 {
            let po = lits[(next() as usize) % lits.len()];
            aig.add_po(po);
        }
        aig
    }

    #[test]
    fn balance_preserves_function_and_reduces_depth() {
        let mut aig = Aig::new(8);
        let mut acc = aig.pi(0);
        for i in 1..8 {
            let p = aig.pi(i);
            acc = aig.and(acc, p);
        }
        aig.add_po(acc);
        let bal = balance(&aig);
        assert_eq!(
            check_aig_equivalence(&aig, &bal, 10, 4),
            EquivalenceOutcome::Equivalent
        );
        assert!(bal.depth() < aig.depth());
        assert_eq!(bal.depth(), 3);
    }

    #[test]
    fn fraig_merges_equivalent_nodes() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        // Two structurally different XORs of (a, b).
        let x1 = aig.xor(a, b);
        let or = aig.or(a, b);
        let nand = !aig.and(a, b);
        let x2 = aig.and(or, nand);
        let f = aig.and(x1, c);
        let g = aig.and(x2, c);
        aig.add_po(f);
        aig.add_po(g);
        let red = fraig_exact(&aig);
        assert_eq!(
            check_aig_equivalence(&aig, &red, 10, 4),
            EquivalenceOutcome::Equivalent
        );
        // f and g collapse to the same node.
        assert_eq!(red.pos()[0], red.pos()[1]);
    }

    #[test]
    fn fraig_detects_antivalence() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.pi(0), aig.pi(1));
        let xor = aig.xor(a, b);
        let xnor = {
            let n = aig.and(a, b);
            let m = aig.and(!a, !b);
            aig.or(n, m)
        };
        aig.add_po(xor);
        aig.add_po(xnor);
        let red = fraig_exact(&aig);
        assert_eq!(
            check_aig_equivalence(&aig, &red, 10, 4),
            EquivalenceOutcome::Equivalent
        );
        assert_eq!(red.pos()[0], !red.pos()[1]);
    }

    #[test]
    fn optimize_random_aigs_preserves_semantics() {
        for seed in [1u64, 7, 42, 99] {
            let aig = random_aig(6, 40, seed);
            let opt = optimize_aig(&aig, &OptimizeOptions::default());
            assert_eq!(
                check_aig_equivalence(&aig, &opt, 10, 8),
                EquivalenceOutcome::Equivalent,
                "seed {seed}"
            );
            assert!(opt.num_ands() <= aig.num_ands());
        }
    }

    #[test]
    fn optimize_skips_fraig_for_wide_aigs() {
        let aig = random_aig(24, 60, 3);
        let opt = optimize_aig(
            &aig,
            &OptimizeOptions {
                rounds: 2,
                fraig_limit: 16,
            },
        );
        assert!(check_aig_equivalence(&aig, &opt, 12, 16).is_ok());
    }

    #[test]
    fn fraig_on_wide_tables_uses_words() {
        // 8 inputs → 4 words per node; exercise the multi-word path.
        let aig = random_aig(8, 50, 11);
        let red = fraig_exact(&aig);
        assert_eq!(
            check_aig_equivalence(&aig, &red, 10, 4),
            EquivalenceOutcome::Equivalent
        );
    }
}
