//! AIG → XMG mapping over 4-feasible cuts (CirKit `xmglut -k 4`).
//!
//! Every AIG node in the chosen cover is re-expressed over
//! {XOR, MAJ, INV} by recursive decomposition of its 4-input cut function:
//!
//! 1. XOR extraction (`f = xᵥ ⊕ g` whenever the cofactors are antivalent) —
//!    this is what makes XMGs so effective for arithmetic, because XOR
//!    gates cost zero T gates downstream;
//! 2. literal AND/OR factoring (`f = xᵥ ∧ g`, `f = xᵥ ∨ g`, …);
//! 3. direct MAJ-of-literals detection;
//! 4. Shannon expansion on the most binate variable otherwise
//!    (a mux = 3 MAJ gates).

use crate::cut::{cut_truth_table, enumerate_cuts, Cut};
use qda_logic::aig::{Aig, Lit};
use qda_logic::xmg::Xmg;

const VAR_PAT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

fn cof(tt: u16, v: usize, value: bool) -> u16 {
    let pat = VAR_PAT[v];
    let shift = 1usize << v;
    if value {
        let hi = tt & pat;
        hi | (hi >> shift)
    } else {
        let lo = tt & !pat;
        lo | (lo << shift)
    }
}

fn depends(tt: u16, v: usize) -> bool {
    cof(tt, v, false) != cof(tt, v, true)
}

/// Synthesizes a ≤4-variable function over the given leaf literals into an
/// XMG, returning the output literal.
///
/// # Panics
///
/// Panics if fewer than 4 leaf literals are provided for a function that
/// depends on the missing variables.
pub fn xmg_from_tt4(xmg: &mut Xmg, tt: u16, leaves: &[Lit]) -> Lit {
    let active: Vec<usize> = (0..4.min(leaves.len()))
        .filter(|&v| depends(tt, v))
        .collect();
    synth(xmg, tt, leaves, &active)
}

fn synth(xmg: &mut Xmg, tt: u16, leaves: &[Lit], active: &[usize]) -> Lit {
    if tt == 0 {
        return Lit::FALSE;
    }
    if tt == 0xFFFF {
        return Lit::TRUE;
    }
    // Single literal?
    for &v in active {
        if tt == VAR_PAT[v] {
            return leaves[v];
        }
        if tt == !VAR_PAT[v] {
            return !leaves[v];
        }
    }
    // XOR extraction: f = x_v ⊕ f0 when f0 == !f1.
    for &v in active {
        let f0 = cof(tt, v, false);
        let f1 = cof(tt, v, true);
        if f0 == !f1 {
            let rest: Vec<usize> = active.iter().copied().filter(|&u| u != v).collect();
            let g = synth(xmg, f0, leaves, &rest);
            return xmg.xor(leaves[v], g);
        }
    }
    // Literal AND/OR factoring.
    for &v in active {
        let f0 = cof(tt, v, false);
        let f1 = cof(tt, v, true);
        let rest: Vec<usize> = active.iter().copied().filter(|&u| u != v).collect();
        if f0 == 0 {
            let g = synth(xmg, f1, leaves, &rest);
            return xmg.and(leaves[v], g);
        }
        if f1 == 0 {
            let g = synth(xmg, f0, leaves, &rest);
            return xmg.and(!leaves[v], g);
        }
        if f0 == 0xFFFF {
            let g = synth(xmg, f1, leaves, &rest);
            return xmg.or(!leaves[v], g);
        }
        if f1 == 0xFFFF {
            let g = synth(xmg, f0, leaves, &rest);
            return xmg.or(leaves[v], g);
        }
    }
    // Direct MAJ of three literals (any polarities, output polarity via
    // self-duality).
    if active.len() == 3 {
        let (a, b, c) = (active[0], active[1], active[2]);
        for pa in [false, true] {
            for pb in [false, true] {
                for pc in [false, true] {
                    let ta = VAR_PAT[a] ^ if pa { 0xFFFF } else { 0 };
                    let tb = VAR_PAT[b] ^ if pb { 0xFFFF } else { 0 };
                    let tc = VAR_PAT[c] ^ if pc { 0xFFFF } else { 0 };
                    let maj = (ta & tb) | (ta & tc) | (tb & tc);
                    if tt == maj {
                        let (la, lb, lc) = (leaves[a] ^ pa, leaves[b] ^ pb, leaves[c] ^ pc);
                        return xmg.maj(la, lb, lc);
                    }
                }
            }
        }
    }
    // Shannon expansion on the most binate variable.
    let v = *active
        .iter()
        .max_by_key(|&&v| {
            let f0 = cof(tt, v, false);
            let f1 = cof(tt, v, true);
            (f0 ^ f1).count_ones()
        })
        .expect("non-constant function must have support");
    let rest: Vec<usize> = active.iter().copied().filter(|&u| u != v).collect();
    let g1 = synth(xmg, cof(tt, v, true), leaves, &rest);
    let g0 = synth(xmg, cof(tt, v, false), leaves, &rest);
    xmg.mux(leaves[v], g1, g0)
}

/// Maps an AIG into an XMG via a 4-feasible cut cover.
///
/// # Example
///
/// ```
/// use qda_logic::aig::Aig;
/// use qda_classical::xmg_map::map_to_xmg;
///
/// let mut aig = Aig::new(2);
/// let a = aig.pi(0);
/// let b = aig.pi(1);
/// let f = aig.xor(a, b); // three ANDs in the AIG
/// aig.add_po(f);
/// let xmg = map_to_xmg(&aig);
/// assert_eq!(xmg.num_xors(), 1); // recovered as one XOR gate
/// assert_eq!(xmg.num_majs(), 0);
/// ```
pub fn map_to_xmg(aig: &Aig) -> Xmg {
    let aig = aig.cleanup();
    let cuts = enumerate_cuts(&aig, 4, 8);
    // Choose the best non-trivial cut per node by *area flow*: the local
    // resynthesis cost (MAJ gates weighted 10×, XOR 1×, since MAJ gates
    // carry all the downstream T-cost) plus the amortized flow of the cut
    // leaves. This avoids locally-cheap cuts over internal nodes that pull
    // the whole cone into the cover anyway.
    let fanout = {
        let mut counts = vec![0usize; aig.num_nodes()];
        for n in (aig.num_pis() + 1)..aig.num_nodes() {
            let [a, b] = aig.fanins(n);
            counts[a.node()] += 1;
            counts[b.node()] += 1;
        }
        for po in aig.pos() {
            counts[po.node()] += 1;
        }
        counts
    };
    let mut best_cut: Vec<Option<Cut>> = vec![None; aig.num_nodes()];
    let mut best_tt: Vec<u16> = vec![0; aig.num_nodes()];
    // flow[n] = estimated amortized cost (scaled by 1000) of providing n.
    let mut flow: Vec<u64> = vec![0; aig.num_nodes()];
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        let mut best: Option<(u64, usize, Cut, u16)> = None;
        for cut in &cuts[n] {
            if cut.leaves() == [n] {
                continue;
            }
            let tt = cut_truth_table(&aig, n, cut);
            let mut scratch = Xmg::new(4);
            let leaves: Vec<Lit> = (0..4).map(|i| scratch.pi(i)).collect();
            let _ = xmg_from_tt4(&mut scratch, tt, &leaves);
            let local = 10_000 * scratch.num_majs() as u64 + 1_000 * scratch.num_xors() as u64;
            let leaf_flow: u64 = cut
                .leaves()
                .iter()
                .map(|&l| flow[l] / fanout[l].max(1) as u64)
                .sum();
            let total = local + leaf_flow;
            let better = match &best {
                None => true,
                Some(b) => (total, cut.size()) < (b.0, b.1),
            };
            if better {
                best = Some((total, cut.size(), cut.clone(), tt));
            }
        }
        let (total, _, cut, tt) = best.expect("AND node always has a non-trivial cut");
        flow[n] = total;
        best_tt[n] = tt;
        best_cut[n] = Some(cut);
    }
    // Cover selection: walk back from POs marking required nodes.
    let mut required = vec![false; aig.num_nodes()];
    let mut stack: Vec<usize> = aig.pos().iter().map(|p| p.node()).collect();
    while let Some(n) = stack.pop() {
        if required[n] || !aig.is_and(n) {
            required[n] = true;
            continue;
        }
        required[n] = true;
        for &leaf in best_cut[n].as_ref().expect("cut chosen").leaves() {
            stack.push(leaf);
        }
    }
    // Build the XMG in topological order.
    let mut xmg = Xmg::new(aig.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_pis() + 1) {
        *m = Lit::new(i, false);
    }
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        if !required[n] {
            continue;
        }
        let cut = best_cut[n].as_ref().expect("cut chosen");
        let leaves: Vec<Lit> = cut.leaves().iter().map(|&l| map[l]).collect();
        map[n] = xmg_from_tt4(&mut xmg, best_tt[n], &leaves);
    }
    for po in aig.pos() {
        let l = map[po.node()] ^ po.is_complement();
        xmg.add_po(l);
    }
    xmg.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(aig: &Aig, xmg: &Xmg) {
        assert_eq!(aig.num_pis(), xmg.num_pis());
        assert_eq!(aig.num_pos(), xmg.num_pos());
        let n = aig.num_pis();
        assert!(n <= 12, "test helper is exhaustive");
        for x in 0..(1u64 << n) {
            assert_eq!(aig.eval(x), xmg.eval(x), "x={x}");
        }
    }

    #[test]
    fn maps_full_adder_with_xor_and_maj() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let axb = aig.xor(a, b);
        let sum = aig.xor(axb, c);
        let carry = aig.maj(a, b, c);
        aig.add_po(sum);
        aig.add_po(carry);
        let xmg = map_to_xmg(&aig);
        check_equiv(&aig, &xmg);
        // A good mapping recovers the arithmetic structure: no more than a
        // couple of MAJ gates, XORs for the sum.
        assert!(xmg.num_majs() <= 2, "{xmg:?}");
        assert!(xmg.num_xors() >= 1, "{xmg:?}");
    }

    #[test]
    fn maps_ripple_adder() {
        // 3-bit adder from word helpers: heavy XOR content.
        let mut aig = Aig::new(6);
        let a: Vec<Lit> = (0..3).map(|i| aig.pi(i)).collect();
        let b: Vec<Lit> = (0..3).map(|i| aig.pi(3 + i)).collect();
        let mut carry = Lit::FALSE;
        for i in 0..3 {
            let axb = aig.xor(a[i], b[i]);
            let s = aig.xor(axb, carry);
            let c = aig.maj(a[i], b[i], carry);
            aig.add_po(s);
            carry = c;
        }
        aig.add_po(carry);
        let xmg = map_to_xmg(&aig);
        check_equiv(&aig, &xmg);
        // The mapped XMG should use XORs (zero-T) generously.
        assert!(xmg.num_xors() >= 3, "{xmg:?}");
    }

    #[test]
    fn maps_random_logic() {
        let mut aig = Aig::new(5);
        let pis: Vec<Lit> = (0..5).map(|i| aig.pi(i)).collect();
        let t1 = aig.and(pis[0], !pis[1]);
        let t2 = aig.or(t1, pis[2]);
        let t3 = aig.xor(t2, pis[3]);
        let t4 = aig.mux(pis[4], t3, t1);
        let t5 = aig.maj(t2, t3, t4);
        aig.add_po(t4);
        aig.add_po(t5);
        let xmg = map_to_xmg(&aig);
        check_equiv(&aig, &xmg);
    }

    #[test]
    fn constant_and_passthrough_outputs() {
        let mut aig = Aig::new(2);
        let a = aig.pi(0);
        aig.add_po(Lit::FALSE);
        aig.add_po(Lit::TRUE);
        aig.add_po(a);
        aig.add_po(!a);
        let xmg = map_to_xmg(&aig);
        check_equiv(&aig, &xmg);
        assert_eq!(xmg.num_gates(), 0);
    }

    #[test]
    fn xmg_from_tt_handles_all_two_var_functions() {
        for tt16 in 0..16u16 {
            // Expand a 2-var function to a 4-var table on vars {0,1}.
            let mut tt = 0u16;
            for x in 0..16u16 {
                let idx = x & 3;
                if (tt16 >> idx) & 1 == 1 {
                    tt |= 1 << x;
                }
            }
            let mut xmg = Xmg::new(2);
            let leaves = [xmg.pi(0), xmg.pi(1), Lit::FALSE, Lit::FALSE];
            let f = xmg_from_tt4(&mut xmg, tt, &leaves);
            xmg.add_po(f);
            for x in 0..4u64 {
                let expected = (tt16 >> x) & 1 == 1;
                assert_eq!(xmg.eval(x) == 1, expected, "tt={tt16:04b} x={x}");
            }
        }
    }
}
