//! Exorcism-style multi-output ESOP minimization.
//!
//! Implements the cube-pair rewriting loop of Mishchenko & Perkowski's
//! EXORCISM-4 (Reed–Muller workshop 2001), which the paper invokes as ABC's
//! `&exorcism`:
//!
//! * distance-0 pairs (same cube) cancel by XOR-ing output masks,
//! * distance-1 pairs with equal masks merge into one cube,
//! * distance-2 pairs with equal masks are *exorlinked*: the pair is
//!   replaced by an equivalent pair, accepted when it reduces the literal
//!   count or unlocks a new distance-0/1 reduction.
//!
//! The loop runs until a fixpoint or the iteration budget is reached.

use qda_logic::esop::MultiEsop;

/// Options for [`minimize_esop`].
#[derive(Clone, Copy, Debug)]
pub struct ExorcismOptions {
    /// Maximum number of full improvement sweeps.
    pub max_rounds: usize,
    /// Whether to attempt distance-2 exorlink rewrites.
    pub exorlink2: bool,
}

impl Default for ExorcismOptions {
    fn default() -> Self {
        Self {
            max_rounds: 24,
            exorlink2: true,
        }
    }
}

/// Minimizes a multi-output ESOP in place; returns the number of cubes
/// eliminated.
///
/// # Example
///
/// ```
/// use qda_logic::cube::Cube;
/// use qda_logic::esop::MultiEsop;
/// use qda_classical::exorcism::{minimize_esop, ExorcismOptions};
///
/// // x̄y ⊕ xy  ==  y
/// let mut esop = MultiEsop::from_cubes(2, 1, vec![
///     (Cube::tautology().with_literal(0, false).with_literal(1, true), 1),
///     (Cube::tautology().with_literal(0, true).with_literal(1, true), 1),
/// ]);
/// let before = esop.to_truth_table();
/// minimize_esop(&mut esop, &ExorcismOptions::default());
/// assert_eq!(esop.len(), 1);
/// assert_eq!(esop.to_truth_table(), before);
/// ```
pub fn minimize_esop(esop: &mut MultiEsop, options: &ExorcismOptions) -> usize {
    let initial = esop.len();
    esop.dedupe();
    for _ in 0..options.max_rounds {
        let mut changed = merge_distance_one(esop);
        if options.exorlink2 {
            changed |= exorlink_pass(esop);
        }
        esop.dedupe();
        if !changed {
            break;
        }
    }
    initial.saturating_sub(esop.len())
}

/// Merges all distance-1 pairs with identical output masks. Returns whether
/// anything changed.
fn merge_distance_one(esop: &mut MultiEsop) -> bool {
    let mut changed = false;
    loop {
        let cubes = esop.cubes_mut();
        let mut merged = None;
        'search: for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if cubes[i].1 != cubes[j].1 {
                    continue;
                }
                if let Some(m) = cubes[i].0.merge_distance_one(&cubes[j].0) {
                    merged = Some((i, j, m));
                    break 'search;
                }
            }
        }
        match merged {
            Some((i, j, m)) => {
                let mask = cubes[i].1;
                cubes[j] = (m, mask);
                cubes.swap_remove(i);
                changed = true;
            }
            None => return changed,
        }
    }
}

/// One sweep of exorlink-2 rewrites; a rewrite is kept when it triggers a
/// follow-up merge (cube count reduction) or lowers the literal count.
fn exorlink_pass(esop: &mut MultiEsop) -> bool {
    let mut changed = false;
    let n = esop.len();
    'pairs: for i in 0..n {
        for j in (i + 1)..n {
            let (ci, mi) = esop.cubes()[i];
            let (cj, mj) = esop.cubes()[j];
            if mi != mj || ci.distance(&cj) != 2 {
                continue;
            }
            for which in 0..2 {
                let Some((a, b)) = ci.exorlink2(&cj, which) else {
                    continue;
                };
                // Accept if the rewritten pair merges with something else
                // (lookahead) or strictly reduces literals.
                let current_lits = ci.num_literals() + cj.num_literals();
                let new_lits = a.num_literals() + b.num_literals();
                let unlocks = esop.cubes().iter().enumerate().any(|(k, &(ck, mk))| {
                    k != i && k != j && mk == mi && (ck.distance(&a) <= 1 || ck.distance(&b) <= 1)
                });
                if unlocks || new_lits < current_lits {
                    let cubes = esop.cubes_mut();
                    cubes[i] = (a, mi);
                    cubes[j] = (b, mi);
                    changed = true;
                    continue 'pairs;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::esop::Esop;
    use qda_logic::tt::TruthTable;

    fn from_minterms(tt: &TruthTable) -> MultiEsop {
        MultiEsop::from_single_outputs(&[Esop::from_truth_table(tt)])
    }

    #[test]
    fn minimizes_single_variable_function() {
        // All 8 minterms of x1 over 4 vars must collapse to one cube.
        let tt = TruthTable::from_fn(4, |x| (x >> 1) & 1 == 1);
        let mut esop = from_minterms(&tt);
        minimize_esop(&mut esop, &ExorcismOptions::default());
        assert_eq!(esop.len(), 1);
        assert_eq!(esop.to_truth_table().outputs()[0], tt);
    }

    #[test]
    fn preserves_function_on_random_inputs() {
        for seed in 0..10u64 {
            let tt = TruthTable::from_fn(5, |x| {
                (x.wrapping_mul(0x9E3779B9).wrapping_add(seed * 131) >> 2) & 1 == 1
            });
            let mut esop = from_minterms(&tt);
            let before = esop.len();
            minimize_esop(&mut esop, &ExorcismOptions::default());
            assert_eq!(esop.to_truth_table().outputs()[0], tt, "seed {seed}");
            assert!(esop.len() <= before);
        }
    }

    #[test]
    fn exorlink_enables_further_merges() {
        // Three minterms of 2 vars: 00, 01, 10. Distance-1 merges give one
        // pair; exorlink finishes the job: result is 2 cubes (e.g. x̄ ⊕ x ȳ).
        let tt = TruthTable::from_fn(2, |x| x != 3);
        let mut esop = from_minterms(&tt);
        minimize_esop(&mut esop, &ExorcismOptions::default());
        assert!(esop.len() <= 2);
        assert_eq!(esop.to_truth_table().outputs()[0], tt);
    }

    #[test]
    fn respects_output_masks() {
        // Identical cubes feeding different outputs must not merge.
        let c0 = qda_logic::cube::Cube::minterm(2, 1);
        let c1 = qda_logic::cube::Cube::minterm(2, 2);
        let mut esop = MultiEsop::from_cubes(2, 2, vec![(c0, 0b01), (c1, 0b10)]);
        let before = esop.to_truth_table();
        minimize_esop(&mut esop, &ExorcismOptions::default());
        assert_eq!(esop.to_truth_table(), before);
        assert_eq!(esop.len(), 2);
    }

    #[test]
    fn multi_output_minimization_preserves_all_outputs() {
        let t0 = TruthTable::from_fn(4, |x| x % 3 == 0);
        let t1 = TruthTable::from_fn(4, |x| x % 3 == 1);
        let mut esop = MultiEsop::from_single_outputs(&[
            Esop::from_truth_table(&t0),
            Esop::from_truth_table(&t1),
        ]);
        minimize_esop(&mut esop, &ExorcismOptions::default());
        let tts = esop.to_truth_table();
        assert_eq!(tts.outputs()[0], t0);
        assert_eq!(tts.outputs()[1], t1);
    }

    #[test]
    fn reports_eliminated_count() {
        let tt = TruthTable::from_fn(3, |x| x < 4); // = x̄2: 4 minterms → 1 cube
        let mut esop = from_minterms(&tt);
        let eliminated = minimize_esop(&mut esop, &ExorcismOptions::default());
        assert_eq!(eliminated, 3);
    }
}
