//! Exorcism-style multi-output ESOP minimization.
//!
//! Implements the cube-pair rewriting loop of Mishchenko & Perkowski's
//! EXORCISM-4 (Reed–Muller workshop 2001), which the paper invokes as ABC's
//! `&exorcism`:
//!
//! * distance-0 pairs (same cube) cancel by XOR-ing output masks,
//! * distance-1 pairs with equal masks merge into one cube,
//! * distance-2 pairs with equal masks are *exorlinked*: the pair is
//!   replaced by an equivalent pair, accepted when it reduces the literal
//!   count or unlocks a new distance-0/1 reduction.
//!
//! Two engines implement this loop (selected by [`ExorcismOptions::engine`]):
//!
//! * [`ExorcismEngine::Indexed`] (default) — the worklist-driven engine.
//!   Cubes live in a slot store wrapped by three indexes:
//!
//!   1. an **exact map** `cube → slot` (distance-0 partners; inserting a
//!      duplicate cube XORs the output masks in place),
//!   2. a **wildcard index** keyed by `(output mask, var, cube with that
//!      var wildcarded)`. Two same-mask cubes share a wildcard key iff they
//!      agree everywhere except possibly at `var`; combined with the exact
//!      map's uniqueness invariant, every non-self bucket mate is at
//!      distance exactly 1, so distance-1 partners are found in
//!      `O(num_vars)` lookups instead of an `O(n)` scan,
//!   3. **mask groups** `output mask → slots`, scanned for distance-2
//!      exorlink candidates behind a care-mask / literal-count signature
//!      filter (distance-2 cubes differ in ≤ 2 care bits and ≤ 2 literals).
//!
//!   A merge worklist holds the slots whose distance-0/1 neighbourhood may
//!   have changed (freshly inserted or rewritten cubes); an exorlink dirty
//!   list holds the slots touched since the last exorlink sweep. Rewrites
//!   re-enqueue only the cubes they create, so the loop is incremental —
//!   there are no full restarts.
//!
//! * [`ExorcismEngine::Naive`] — the original quadratic-restart engine
//!   (full `O(n²)` rescans after every merge), kept as the differential
//!   -testing oracle.
//!
//! Both engines run until a fixpoint or the round budget is exhausted, and
//! preserve the multi-output function exactly: every rewrite replaces a set
//! of `(cube, output mask)` entries by an XOR-equivalent set.

use qda_logic::cube::Cube;
use qda_logic::esop::{xor_dedupe_sorted, MultiEsop};
use qda_logic::hash::{FxHashMap, FxHashSet};
use qda_logic::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// Which minimization engine [`minimize_esop`] runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExorcismEngine {
    /// The indexed, worklist-driven engine (see the module docs).
    #[default]
    Indexed,
    /// The original quadratic-restart engine; kept for differential
    /// testing against [`ExorcismEngine::Indexed`].
    Naive,
    /// Bit-exact replay of [`ExorcismEngine::Naive`]'s decision sequence
    /// with the `O(n²)` pair rescans and `O(n)` unlock lookaheads replaced
    /// by position-indexed lookups: same result, far less work. The
    /// indexed engine also runs this as one of its starts (on covers small
    /// enough to afford it), which makes it never worse than the naive
    /// oracle there by construction.
    Replay,
}

/// Options for [`minimize_esop`].
#[derive(Clone, Copy, Debug)]
pub struct ExorcismOptions {
    /// Maximum number of improvement rounds (exorlink sweeps for the
    /// indexed engine, full sweeps for the naive one). `0` degrades to a
    /// bare distance-0 dedupe.
    pub max_rounds: usize,
    /// Whether to attempt distance-2 exorlink rewrites.
    pub exorlink2: bool,
    /// Engine selection.
    pub engine: ExorcismEngine,
    /// Number of diversified starts of the indexed engine (insertion and
    /// scan orders vary per start; the best cover wins). The greedy loop
    /// is order-sensitive, so a few cheap restarts recover most of the
    /// quality a single unlucky path leaves behind. Ignored by the naive
    /// engine; `0` behaves like `1`.
    pub restarts: usize,
    /// Seed-cover size cap for taking the extra [`Self::restarts`]: inputs
    /// with more cubes run a single start (restart quality gains fade with
    /// size while their cost grows linearly).
    pub restart_cube_limit: usize,
}

impl Default for ExorcismOptions {
    fn default() -> Self {
        Self {
            max_rounds: 24,
            exorlink2: true,
            engine: ExorcismEngine::Indexed,
            restarts: 4,
            restart_cube_limit: 512,
        }
    }
}

/// Minimizes a multi-output ESOP in place; returns the number of cubes
/// eliminated.
///
/// # Example
///
/// ```
/// use qda_logic::cube::Cube;
/// use qda_logic::esop::MultiEsop;
/// use qda_classical::exorcism::{minimize_esop, ExorcismOptions};
///
/// // x̄y ⊕ xy  ==  y
/// let mut esop = MultiEsop::from_cubes(2, 1, vec![
///     (Cube::tautology().with_literal(0, false).with_literal(1, true), 1),
///     (Cube::tautology().with_literal(0, true).with_literal(1, true), 1),
/// ]);
/// let before = esop.to_truth_table();
/// minimize_esop(&mut esop, &ExorcismOptions::default());
/// assert_eq!(esop.len(), 1);
/// assert_eq!(esop.to_truth_table(), before);
/// ```
pub fn minimize_esop(esop: &mut MultiEsop, options: &ExorcismOptions) -> usize {
    let initial = esop.len();
    match options.engine {
        ExorcismEngine::Indexed => minimize_indexed(esop, options),
        ExorcismEngine::Naive => minimize_naive(esop, options),
        ExorcismEngine::Replay => {
            let cubes = run_naive_replay(esop.num_vars(), esop.cubes(), options);
            *esop = MultiEsop::from_cubes(esop.num_vars(), esop.num_outputs(), cubes);
        }
    }
    initial.saturating_sub(esop.len())
}

// ---------------------------------------------------------------------------
// Indexed worklist engine
// ---------------------------------------------------------------------------

/// Wildcard-index key: `(output mask, wildcarded var, cube with that var
/// set to don't-care)`. Same-mask cubes share a key iff they agree on every
/// position except possibly `var`.
type WildKey = (u64, u32, Cube);

/// The indexed cube store. Slot ids are stable while a cube is live; freed
/// slots are recycled, and all three indexes are maintained eagerly, so
/// every index entry points at a live cube that matches its key.
struct CubeIndex {
    num_vars: usize,
    /// Scan wildcard positions (and exorlink candidates) high-to-low
    /// instead of low-to-high; varies the greedy path across restarts.
    scan_rev: bool,
    /// Drain the merge worklist LIFO (depth-first subcube growth) instead
    /// of FIFO (level-by-level pairing); a second restart axis.
    lifo: bool,
    /// `slots[s] = Some((cube, mask))` while live; `None` once detached.
    slots: Vec<Option<(Cube, u64)>>,
    free: Vec<usize>,
    /// Distance-0 index. Invariant: every live cube value appears in
    /// exactly one slot (duplicates are XOR-merged on insert).
    exact: FxHashMap<Cube, usize>,
    /// Distance-1 index: each live slot appears in `num_vars` buckets.
    wildcard: FxHashMap<WildKey, Vec<usize>>,
    /// Exorlink candidate groups by output mask.
    groups: FxHashMap<u64, FxHashSet<usize>>,
    /// Slots whose distance-0/1 neighbourhood may have changed.
    merge_queue: VecDeque<usize>,
    queued: Vec<bool>,
    /// Slots touched since the last exorlink sweep.
    dirty: Vec<usize>,
    dirty_flag: Vec<bool>,
}

impl CubeIndex {
    fn new(num_vars: usize, scan_rev: bool, lifo: bool) -> Self {
        Self {
            num_vars,
            scan_rev,
            lifo,
            slots: Vec::new(),
            free: Vec::new(),
            exact: FxHashMap::default(),
            wildcard: FxHashMap::default(),
            groups: FxHashMap::default(),
            merge_queue: VecDeque::new(),
            queued: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: Vec::new(),
        }
    }

    fn live(&self) -> usize {
        self.exact.len()
    }

    /// Current cover cost: `(cube count, literal count)`.
    fn cost(&self) -> (usize, usize) {
        (
            self.live(),
            self.slots
                .iter()
                .flatten()
                .map(|(c, _)| c.num_literals())
                .sum(),
        )
    }

    /// Inserts a cube, cancelling against an existing identical cube
    /// (masks XOR; the cube disappears entirely if they cancel to zero).
    fn insert(&mut self, cube: Cube, mask: u64) {
        if mask == 0 {
            return;
        }
        if let Some(&slot) = self.exact.get(&cube) {
            let (_, old_mask) = self.slots[slot].expect("exact entry points at live slot");
            self.detach(slot);
            let merged = old_mask ^ mask;
            if merged != 0 {
                self.insert_fresh(cube, merged);
            }
            return;
        }
        self.insert_fresh(cube, mask);
    }

    fn insert_fresh(&mut self, cube: Cube, mask: u64) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.queued.push(false);
                self.dirty_flag.push(false);
                self.slots.len() - 1
            }
        };
        self.slots[slot] = Some((cube, mask));
        self.exact.insert(cube, slot);
        for v in 0..self.num_vars as u32 {
            self.wildcard
                .entry((mask, v, cube.without_var(v as usize)))
                .or_default()
                .push(slot);
        }
        self.groups.entry(mask).or_default().insert(slot);
        self.enqueue_merge(slot);
        self.mark_dirty(slot);
    }

    /// Removes a live cube from the store and all indexes.
    fn detach(&mut self, slot: usize) {
        let (cube, mask) = self.slots[slot].take().expect("detach of a live slot");
        self.exact.remove(&cube);
        for v in 0..self.num_vars as u32 {
            let key = (mask, v, cube.without_var(v as usize));
            if let Entry::Occupied(mut e) = self.wildcard.entry(key) {
                e.get_mut().retain(|&s| s != slot);
                if e.get().is_empty() {
                    e.remove();
                }
            }
        }
        if let Entry::Occupied(mut e) = self.groups.entry(mask) {
            e.get_mut().remove(&slot);
            if e.get().is_empty() {
                e.remove();
            }
        }
        self.free.push(slot);
    }

    fn pop_merge(&mut self) -> Option<usize> {
        if self.lifo {
            self.merge_queue.pop_back()
        } else {
            self.merge_queue.pop_front()
        }
    }

    fn enqueue_merge(&mut self, slot: usize) {
        if !self.queued[slot] {
            self.queued[slot] = true;
            self.merge_queue.push_back(slot);
        }
    }

    fn mark_dirty(&mut self, slot: usize) {
        if !self.dirty_flag[slot] {
            self.dirty_flag[slot] = true;
            self.dirty.push(slot);
        }
    }

    /// A distance-1, same-mask partner of `cube`, if any, in
    /// `O(num_vars)` bucket lookups. Among the candidates, a partner with
    /// the same care set (phase difference — the merge drops the whole
    /// variable) is preferred over one whose care set differs (the merge
    /// only flips a phase), which gives tighter subcubes first.
    fn find_merge_partner(&self, slot: usize, cube: Cube, mask: u64) -> Option<usize> {
        let mut fallback = None;
        for i in 0..self.num_vars as u32 {
            let v = if self.scan_rev {
                self.num_vars as u32 - 1 - i
            } else {
                i
            };
            let key = (mask, v, cube.without_var(v as usize));
            if let Some(bucket) = self.wildcard.get(&key) {
                for &s in bucket {
                    if s == slot {
                        continue;
                    }
                    let (pc, _) = self.slots[s].expect("index entries are live");
                    if pc.care() == cube.care() {
                        return Some(s);
                    }
                    if fallback.is_none() {
                        fallback = Some(s);
                    }
                }
            }
        }
        fallback
    }

    /// Drains the merge worklist: every popped live cube is merged with a
    /// distance-1 partner if one exists (the result is re-inserted, which
    /// re-enqueues it and may cascade through distance-0 cancellation).
    /// Removals never create new distance-1 pairs among the survivors, so
    /// processing each insertion once is exhaustive.
    fn drain_merges(&mut self) {
        while let Some(slot) = self.pop_merge() {
            self.queued[slot] = false;
            let Some((cube, mask)) = self.slots[slot] else {
                continue; // stale entry: the cube was rewritten away
            };
            if let Some(partner) = self.find_merge_partner(slot, cube, mask) {
                let (pc, _) = self.slots[partner].expect("index entries are live");
                let merged = cube
                    .merge_distance_one(&pc)
                    .expect("wildcard bucket mates are at distance 1");
                self.detach(slot);
                self.detach(partner);
                self.insert(merged, mask);
            }
        }
    }

    /// Whether inserting `cube` with `mask` would immediately reduce the
    /// cube count: an identical cube exists (any mask — the masks XOR), or
    /// a same-mask distance-1 partner exists. `excl` are the pair being
    /// rewritten, which is about to leave the store.
    fn has_reduction_partner(&self, cube: &Cube, mask: u64, excl: [usize; 2]) -> bool {
        if let Some(&s) = self.exact.get(cube) {
            if !excl.contains(&s) {
                return true;
            }
        }
        for v in 0..self.num_vars as u32 {
            let key = (mask, v, cube.without_var(v as usize));
            if let Some(bucket) = self.wildcard.get(&key) {
                if bucket.iter().any(|s| !excl.contains(s)) {
                    return true;
                }
            }
        }
        false
    }

    /// Marks every live cube dirty (used to seed a diversification sweep
    /// after the incremental worklist has run dry).
    fn mark_all_dirty(&mut self) {
        for slot in 0..self.slots.len() {
            if self.slots[slot].is_some() {
                self.mark_dirty(slot);
            }
        }
    }

    /// One exorlink sweep over the cubes touched since the last sweep.
    /// With `zero_gain`, rewrites that keep the literal count are accepted
    /// too (EXORCISM-4's diversification move: it perturbs the cover at
    /// zero cost so later sweeps can find reductions the greedy path
    /// missed). Returns whether any rewrite was accepted.
    ///
    /// The dirty slots are bucketed by output mask so each mask group is
    /// snapshotted once per sweep, not once per dirty cube. Cubes created
    /// mid-sweep are missing from the snapshots; they are dirty and get
    /// their turn next sweep.
    fn exorlink_sweep(&mut self, zero_gain: bool) -> bool {
        let dirty = std::mem::take(&mut self.dirty);
        let mut by_mask: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for slot in dirty {
            self.dirty_flag[slot] = false;
            if let Some((_, mask)) = self.slots[slot] {
                by_mask.entry(mask).or_default().push(slot);
            }
        }
        let mut changed = false;
        for (mask, dirty_slots) in by_mask {
            let Some(group) = self.groups.get(&mask) else {
                continue;
            };
            let mut snapshot: Vec<usize> = group.iter().copied().collect();
            // Hash-set order is deterministic but arbitrary; sort so
            // results do not depend on the groups' internal layout.
            snapshot.sort_unstable();
            if self.scan_rev {
                snapshot.reverse();
            }
            for slot in dirty_slots {
                let Some((cube, m)) = self.slots[slot] else {
                    continue; // rewritten away earlier in this sweep
                };
                if m != mask {
                    continue; // re-masked by a distance-0 cancellation
                }
                changed |= self.try_exorlink(slot, cube, mask, &snapshot, zero_gain);
            }
        }
        changed
    }

    /// Tries to exorlink `slot` with a distance-2 cube of the same mask.
    /// A rewrite is accepted when it strictly reduces the literal count or
    /// when a rewritten cube has an immediate distance-0/1 reduction
    /// partner (the follow-up merge is performed right away, so every
    /// acceptance strictly decreases `(cube count, literal count)`
    /// lexicographically — the loop cannot cycle).
    fn try_exorlink(
        &mut self,
        slot: usize,
        cube: Cube,
        mask: u64,
        candidates: &[usize],
        zero_gain: bool,
    ) -> bool {
        let lits = cube.num_literals();
        for &j in candidates {
            if j == slot {
                continue;
            }
            // The shared snapshot may hold slots that earlier rewrites in
            // this sweep killed or re-masked.
            let Some((cj, mj)) = self.slots[j] else {
                continue;
            };
            if mj != mask {
                continue;
            }
            // Signature filter: distance-2 cubes differ in at most two
            // care-mask bits and at most two literals.
            if (cube.care() ^ cj.care()).count_ones() > 2 {
                continue;
            }
            let lits_j = cj.num_literals();
            if lits.abs_diff(lits_j) > 2 {
                continue;
            }
            if cube.distance(&cj) != 2 {
                continue;
            }
            for which in 0..2 {
                let Some((a, b)) = cube.exorlink2(&cj, which) else {
                    continue;
                };
                let new_lits = a.num_literals() + b.num_literals();
                let accept = new_lits < lits + lits_j
                    || (zero_gain && new_lits == lits + lits_j)
                    || self.has_reduction_partner(&a, mask, [slot, j])
                    || self.has_reduction_partner(&b, mask, [slot, j]);
                if accept {
                    self.detach(slot);
                    self.detach(j);
                    self.insert(a, mask);
                    self.insert(b, mask);
                    self.drain_merges();
                    return true;
                }
            }
        }
        false
    }

    /// Consumes the store into a sorted cube list (sorted so the result is
    /// independent of slot allocation order).
    fn into_cubes(self) -> Vec<(Cube, u64)> {
        let mut out: Vec<(Cube, u64)> = self.slots.into_iter().flatten().collect();
        out.sort_unstable();
        out
    }
}

fn minimize_indexed(esop: &mut MultiEsop, options: &ExorcismOptions) {
    if options.max_rounds == 0 {
        esop.dedupe();
        return;
    }
    // The greedy loop is order-sensitive: different orders reach
    // different local optima. Run a few diversified starts — insertion
    // order (input / reversed / deterministic shuffles), index scan
    // direction (start bit 0) and merge-worklist discipline (start bit 1)
    // — and keep the smallest cover by (cube count, literal count). On
    // covers small enough to afford it, the naive-replay start runs too,
    // so the result is never worse than the naive oracle's.
    //
    // Every start is independent and individually deterministic, so the
    // batch is sharded across workers ([`qda_logic::par`]); the fold
    // below walks the results in start order and accepts only strictly
    // better covers, which reproduces the serial outcome byte for byte
    // whatever `QDA_WORKERS` says.
    let within_restart_budget = esop.len() <= options.restart_cube_limit;
    let naive_jobs = usize::from(within_restart_budget);
    let starts = if within_restart_budget {
        options.restarts.clamp(1, 16)
    } else {
        1
    };
    let runs = par::run_indexed(naive_jobs + starts, |job| {
        if job < naive_jobs {
            return run_naive_replay(esop.num_vars(), esop.cubes(), options);
        }
        let start = job - naive_jobs;
        let mut seed: Vec<(Cube, u64)> = esop.cubes().to_vec();
        match start {
            0 => {}
            1 => seed.reverse(),
            s => shuffle(&mut seed, s as u64),
        }
        run_indexed(
            esop.num_vars(),
            &seed,
            options,
            start % 2 == 1,
            (start / 2) % 2 == 1,
        )
    });
    let mut runs = runs.into_iter();
    let mut best = runs.next().expect("at least one start ran");
    for cubes in runs {
        if cover_cost(&cubes) < cover_cost(&best) {
            best = cubes;
        }
    }
    *esop = MultiEsop::from_cubes(esop.num_vars(), esop.num_outputs(), best);
}

/// Fisher–Yates with a seed-determined `StdRng` stream: deterministic
/// per-start insertion orders for the diversified restarts.
fn shuffle(cubes: &mut [(Cube, u64)], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for i in (1..cubes.len()).rev() {
        let j = rng.gen_range(0..i as u64 + 1) as usize;
        cubes.swap(i, j);
    }
}

/// Cover quality: fewer cubes first, then fewer literals.
fn cover_cost(cubes: &[(Cube, u64)]) -> (usize, usize) {
    (
        cubes.len(),
        cubes.iter().map(|(c, _)| c.num_literals()).sum(),
    )
}

/// One start of the indexed engine; returns the minimized, sorted cover.
fn run_indexed(
    num_vars: usize,
    seed: &[(Cube, u64)],
    options: &ExorcismOptions,
    scan_rev: bool,
    lifo: bool,
) -> Vec<(Cube, u64)> {
    let mut index = CubeIndex::new(num_vars, scan_rev, lifo);
    for &(c, m) in seed {
        index.insert(c, m);
    }
    index.drain_merges();
    if options.exorlink2 {
        // Best cost seen at a greedy fixpoint: diversification continues
        // only while it keeps paying off within a small stale budget —
        // zero-gain moves can ping-pong forever otherwise.
        let mut best_fixpoint_cost = (usize::MAX, usize::MAX);
        let mut stale = 0;
        for _ in 0..options.max_rounds {
            if !index.exorlink_sweep(false) {
                // The worklist ran dry at a greedy fixpoint: perturb it
                // with a zero-gain sweep (which cannot worsen any count).
                let cost = index.cost();
                if cost < best_fixpoint_cost {
                    best_fixpoint_cost = cost;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale > 3 {
                        break;
                    }
                }
                index.mark_all_dirty();
                if !index.exorlink_sweep(true) {
                    break;
                }
            }
        }
    }
    debug_assert_eq!(
        index.live(),
        index.slots.iter().flatten().count(),
        "exact map out of sync with the slot store"
    );
    index.into_cubes()
}

// ---------------------------------------------------------------------------
// Exact naive replay, index-accelerated
// ---------------------------------------------------------------------------

/// Position-keyed wildcard index over a cube array: bucket
/// `(mask, var, cube-with-var-wildcarded)` holds the array positions whose
/// entry matches the key, so a position's same-mask distance-≤1 mates are
/// found in `O(num_vars)` lookups. Cubes with literals outside
/// `0..num_vars` are not indexed correctly (the standard [`MultiEsop`]
/// invariant).
struct PosIndex {
    num_vars: usize,
    buckets: FxHashMap<WildKey, Vec<usize>>,
}

impl PosIndex {
    fn build(arr: &[(Cube, u64)], num_vars: usize) -> Self {
        let mut idx = Self {
            num_vars,
            buckets: FxHashMap::default(),
        };
        for (p, &(c, m)) in arr.iter().enumerate() {
            idx.add(p, c, m);
        }
        idx
    }

    fn add(&mut self, pos: usize, cube: Cube, mask: u64) {
        for v in 0..self.num_vars as u32 {
            self.buckets
                .entry((mask, v, cube.without_var(v as usize)))
                .or_default()
                .push(pos);
        }
    }

    fn remove(&mut self, pos: usize, cube: Cube, mask: u64) {
        for v in 0..self.num_vars as u32 {
            let key = (mask, v, cube.without_var(v as usize));
            if let Entry::Occupied(mut e) = self.buckets.entry(key) {
                e.get_mut().retain(|&p| p != pos);
                if e.get().is_empty() {
                    e.remove();
                }
            }
        }
    }

    /// All positions at distance exactly 1 (same mask) from `arr[pos]`.
    /// Distance-0 mates — identical cubes, legal mid-phase — are excluded,
    /// exactly as the naive scan skips them. A distance-1 mate shares
    /// exactly one wildcard key, so the result is duplicate-free.
    fn merge_partners(&self, arr: &[(Cube, u64)], pos: usize) -> Vec<usize> {
        let (cube, mask) = arr[pos];
        let mut out = Vec::new();
        for v in 0..self.num_vars as u32 {
            if let Some(bucket) = self.buckets.get(&(mask, v, cube.without_var(v as usize))) {
                out.extend(
                    bucket
                        .iter()
                        .copied()
                        .filter(|&p| p != pos && arr[p].0 != cube),
                );
            }
        }
        out
    }

    /// Whether a position outside `excl` holds a same-mask cube at
    /// distance ≤ 1 from `cube` (which need not be in the array) — the
    /// naive exorlink unlock lookahead, in `O(num_vars)` lookups.
    fn has_mate(&self, cube: Cube, mask: u64, excl: [usize; 2]) -> bool {
        for v in 0..self.num_vars as u32 {
            if let Some(bucket) = self.buckets.get(&(mask, v, cube.without_var(v as usize))) {
                if bucket.iter().any(|p| !excl.contains(p)) {
                    return true;
                }
            }
        }
        false
    }
}

/// Replays [`naive_merge_distance_one`] exactly: repeatedly merge the
/// lexicographically first `(i, j)` distance-1 equal-mask pair (which is
/// what the naive restart scan finds), mirroring its
/// `cubes[j] = merged; cubes.swap_remove(i)` array surgery — but find each
/// pair through the position index and a lazily verified candidate set
/// instead of an `O(n²)` rescan.
fn replay_merge_phase(arr: &mut Vec<(Cube, u64)>, num_vars: usize) -> bool {
    let mut idx = PosIndex::build(arr, num_vars);
    // Invariant: every position with at least one merge partner is in
    // `cands` (the set may also hold already-pairless positions, verified
    // and dropped on pop). So `min(cands)` with a non-empty partner set is
    // the naive scan's `i`, and all its partners lie above it.
    let mut cands: std::collections::BTreeSet<usize> = (0..arr.len()).collect();
    let mut changed = false;
    while let Some(&i) = cands.iter().next() {
        let partners = idx.merge_partners(arr, i);
        let Some(&j) = partners.iter().min() else {
            cands.remove(&i);
            continue;
        };
        debug_assert!(j > i, "a lower partner would itself be in cands");
        let mask = arr[i].1;
        let merged = arr[i]
            .0
            .merge_distance_one(&arr[j].0)
            .expect("index mates are at distance 1");
        // Positions whose content or existence changes: i (receives the
        // swapped-in last element), j (receives the merged cube), and the
        // last position (vacated).
        let last = arr.len() - 1;
        let mut affected = vec![i, j, last];
        affected.sort_unstable();
        affected.dedup();
        for &p in &affected {
            let (c, m) = arr[p];
            idx.remove(p, c, m);
        }
        arr[j] = (merged, mask);
        arr.swap_remove(i);
        changed = true;
        for &p in &affected {
            if p < arr.len() {
                let (c, m) = arr[p];
                idx.add(p, c, m);
            } else {
                cands.remove(&p);
            }
        }
        // The changed positions may pair with anything, including
        // positions already verified pairless — requeue both sides.
        for &p in &affected {
            if p < arr.len() {
                cands.insert(p);
                for q in idx.merge_partners(arr, p) {
                    cands.insert(q);
                }
            }
        }
    }
    changed
}

/// Replays [`naive_exorlink_pass`] exactly — same pair order, same
/// `which` order, same acceptance rule — with the `O(n)` unlock lookahead
/// served by [`PosIndex::has_mate`].
fn replay_exorlink_pass(arr: &mut [(Cube, u64)], num_vars: usize) -> bool {
    let mut idx = PosIndex::build(arr, num_vars);
    let mut changed = false;
    let n = arr.len();
    'pairs: for i in 0..n {
        for j in (i + 1)..n {
            let (ci, mi) = arr[i];
            let (cj, mj) = arr[j];
            if mi != mj || ci.distance(&cj) != 2 {
                continue;
            }
            for which in 0..2 {
                let Some((a, b)) = ci.exorlink2(&cj, which) else {
                    continue;
                };
                let current_lits = ci.num_literals() + cj.num_literals();
                let new_lits = a.num_literals() + b.num_literals();
                let unlocks = idx.has_mate(a, mi, [i, j]) || idx.has_mate(b, mi, [i, j]);
                if unlocks || new_lits < current_lits {
                    idx.remove(i, ci, mi);
                    idx.remove(j, cj, mj);
                    arr[i] = (a, mi);
                    arr[j] = (b, mi);
                    idx.add(i, a, mi);
                    idx.add(j, b, mi);
                    changed = true;
                    continue 'pairs;
                }
            }
        }
    }
    changed
}

/// Exact replay of [`minimize_naive`]'s round structure; bit-identical
/// output (pinned by the differential test suite).
fn run_naive_replay(
    num_vars: usize,
    seed: &[(Cube, u64)],
    options: &ExorcismOptions,
) -> Vec<(Cube, u64)> {
    let mut arr = xor_dedupe_sorted(seed.to_vec());
    for _ in 0..options.max_rounds {
        let mut changed = replay_merge_phase(&mut arr, num_vars);
        if options.exorlink2 {
            changed |= replay_exorlink_pass(&mut arr, num_vars);
        }
        arr = xor_dedupe_sorted(arr);
        if !changed {
            break;
        }
    }
    arr
}

// ---------------------------------------------------------------------------
// Naive restart engine (differential-testing oracle)
// ---------------------------------------------------------------------------

fn minimize_naive(esop: &mut MultiEsop, options: &ExorcismOptions) {
    esop.dedupe();
    for _ in 0..options.max_rounds {
        let mut changed = naive_merge_distance_one(esop);
        if options.exorlink2 {
            changed |= naive_exorlink_pass(esop);
        }
        esop.dedupe();
        if !changed {
            break;
        }
    }
}

/// Merges all distance-1 pairs with identical output masks by restarting a
/// full `O(n²)` pair scan after every merge. Returns whether anything
/// changed.
fn naive_merge_distance_one(esop: &mut MultiEsop) -> bool {
    let mut changed = false;
    loop {
        let cubes = esop.cubes_mut();
        let mut merged = None;
        'search: for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if cubes[i].1 != cubes[j].1 {
                    continue;
                }
                if let Some(m) = cubes[i].0.merge_distance_one(&cubes[j].0) {
                    merged = Some((i, j, m));
                    break 'search;
                }
            }
        }
        match merged {
            Some((i, j, m)) => {
                let mask = cubes[i].1;
                cubes[j] = (m, mask);
                cubes.swap_remove(i);
                changed = true;
            }
            None => return changed,
        }
    }
}

/// One sweep of exorlink-2 rewrites; a rewrite is kept when it triggers a
/// follow-up merge (cube count reduction, checked by an `O(n)` lookahead)
/// or lowers the literal count.
fn naive_exorlink_pass(esop: &mut MultiEsop) -> bool {
    let mut changed = false;
    let n = esop.len();
    'pairs: for i in 0..n {
        for j in (i + 1)..n {
            let (ci, mi) = esop.cubes()[i];
            let (cj, mj) = esop.cubes()[j];
            if mi != mj || ci.distance(&cj) != 2 {
                continue;
            }
            for which in 0..2 {
                let Some((a, b)) = ci.exorlink2(&cj, which) else {
                    continue;
                };
                // Accept if the rewritten pair merges with something else
                // (lookahead) or strictly reduces literals.
                let current_lits = ci.num_literals() + cj.num_literals();
                let new_lits = a.num_literals() + b.num_literals();
                let unlocks = esop.cubes().iter().enumerate().any(|(k, &(ck, mk))| {
                    k != i && k != j && mk == mi && (ck.distance(&a) <= 1 || ck.distance(&b) <= 1)
                });
                if unlocks || new_lits < current_lits {
                    let cubes = esop.cubes_mut();
                    cubes[i] = (a, mi);
                    cubes[j] = (b, mi);
                    changed = true;
                    continue 'pairs;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::esop::Esop;
    use qda_logic::tt::TruthTable;

    fn from_minterms(tt: &TruthTable) -> MultiEsop {
        MultiEsop::from_single_outputs(&[Esop::from_truth_table(tt)])
    }

    fn engines() -> [ExorcismOptions; 2] {
        [
            ExorcismOptions::default(),
            ExorcismOptions {
                engine: ExorcismEngine::Naive,
                ..ExorcismOptions::default()
            },
        ]
    }

    #[test]
    fn minimizes_single_variable_function() {
        // All 8 minterms of x1 over 4 vars must collapse to one cube.
        for options in engines() {
            let tt = TruthTable::from_fn(4, |x| (x >> 1) & 1 == 1);
            let mut esop = from_minterms(&tt);
            minimize_esop(&mut esop, &options);
            assert_eq!(esop.len(), 1, "{:?}", options.engine);
            assert_eq!(esop.to_truth_table().outputs()[0], tt);
        }
    }

    #[test]
    fn preserves_function_on_random_inputs() {
        for options in engines() {
            for seed in 0..10u64 {
                let tt = TruthTable::from_fn(5, |x| {
                    (x.wrapping_mul(0x9E3779B9).wrapping_add(seed * 131) >> 2) & 1 == 1
                });
                let mut esop = from_minterms(&tt);
                let before = esop.len();
                minimize_esop(&mut esop, &options);
                assert_eq!(
                    esop.to_truth_table().outputs()[0],
                    tt,
                    "seed {seed} {:?}",
                    options.engine
                );
                assert!(esop.len() <= before);
            }
        }
    }

    #[test]
    fn exorlink_enables_further_merges() {
        // Three minterms of 2 vars: 00, 01, 10. Distance-1 merges give one
        // pair; exorlink finishes the job: result is 2 cubes (e.g. x̄ ⊕ x ȳ).
        for options in engines() {
            let tt = TruthTable::from_fn(2, |x| x != 3);
            let mut esop = from_minterms(&tt);
            minimize_esop(&mut esop, &options);
            assert!(esop.len() <= 2, "{:?}", options.engine);
            assert_eq!(esop.to_truth_table().outputs()[0], tt);
        }
    }

    #[test]
    fn respects_output_masks() {
        // Identical cubes feeding different outputs must not merge.
        for options in engines() {
            let c0 = qda_logic::cube::Cube::minterm(2, 1);
            let c1 = qda_logic::cube::Cube::minterm(2, 2);
            let mut esop = MultiEsop::from_cubes(2, 2, vec![(c0, 0b01), (c1, 0b10)]);
            let before = esop.to_truth_table();
            minimize_esop(&mut esop, &options);
            assert_eq!(esop.to_truth_table(), before);
            assert_eq!(esop.len(), 2, "{:?}", options.engine);
        }
    }

    #[test]
    fn multi_output_minimization_preserves_all_outputs() {
        for options in engines() {
            let t0 = TruthTable::from_fn(4, |x| x % 3 == 0);
            let t1 = TruthTable::from_fn(4, |x| x % 3 == 1);
            let mut esop = MultiEsop::from_single_outputs(&[
                Esop::from_truth_table(&t0),
                Esop::from_truth_table(&t1),
            ]);
            minimize_esop(&mut esop, &options);
            let tts = esop.to_truth_table();
            assert_eq!(tts.outputs()[0], t0, "{:?}", options.engine);
            assert_eq!(tts.outputs()[1], t1);
        }
    }

    #[test]
    fn reports_eliminated_count() {
        for options in engines() {
            let tt = TruthTable::from_fn(3, |x| x < 4); // = x̄2: 4 minterms → 1 cube
            let mut esop = from_minterms(&tt);
            let eliminated = minimize_esop(&mut esop, &options);
            assert_eq!(eliminated, 3, "{:?}", options.engine);
        }
    }

    #[test]
    fn zero_rounds_only_dedupes() {
        for engine in [ExorcismEngine::Indexed, ExorcismEngine::Naive] {
            let options = ExorcismOptions {
                max_rounds: 0,
                engine,
                ..ExorcismOptions::default()
            };
            let c = Cube::minterm(3, 5);
            let d = Cube::minterm(3, 4); // distance 1 from c — must survive
            let mut esop = MultiEsop::from_cubes(3, 1, vec![(c, 1), (c, 1), (d, 1)]);
            minimize_esop(&mut esop, &options);
            assert_eq!(esop.len(), 1, "{engine:?}");
            assert_eq!(esop.cubes()[0], (d, 1));
        }
    }

    #[test]
    fn duplicate_masks_cancel_through_the_index() {
        // Same cube on the same output twice cancels to nothing; on two
        // different outputs the masks combine.
        let c = Cube::minterm(2, 3);
        let mut esop = MultiEsop::from_cubes(2, 2, vec![(c, 0b01), (c, 0b01)]);
        minimize_esop(&mut esop, &ExorcismOptions::default());
        assert!(esop.is_empty());
        let mut esop = MultiEsop::from_cubes(2, 2, vec![(c, 0b01), (c, 0b10)]);
        minimize_esop(&mut esop, &ExorcismOptions::default());
        assert_eq!(esop.len(), 1);
        assert_eq!(esop.cubes()[0].1, 0b11);
    }
}
