//! k-feasible cut enumeration on AIGs.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! the PIs to `n` passes through a leaf. k-feasible cuts (≤ k leaves) are
//! the unit of technology mapping; the XMG mapper uses `k = 4` to mirror
//! CirKit's `xmglut -k 4`.

use qda_logic::aig::Aig;
use std::collections::HashMap;

/// A cut: sorted leaf node indices.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cut {
    leaves: Vec<usize>,
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: usize) -> Self {
        Self { leaves: vec![node] }
    }

    /// The leaves, ascending.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two cuts if the union stays within `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// Whether this cut's leaves are a subset of `other`'s (then `other`
    /// is dominated and redundant).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.iter().all(|l| other.leaves.contains(l))
    }
}

/// Enumerates up to `max_cuts` k-feasible cuts per node (plus the trivial
/// cut). Returns one cut list per node index.
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for (i, c) in cuts.iter_mut().enumerate().take(aig.num_pis() + 1) {
        *c = vec![Cut::trivial(i)];
    }
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        let [a, b] = aig.fanins(n);
        let mut list: Vec<Cut> = Vec::new();
        for ca in &cuts[a.node()] {
            for cb in &cuts[b.node()] {
                if let Some(c) = ca.merge(cb, k) {
                    if !list.contains(&c) {
                        list.push(c);
                    }
                }
            }
        }
        // Remove dominated cuts.
        let mut filtered: Vec<Cut> = Vec::new();
        for c in &list {
            if !list
                .iter()
                .any(|d| d != c && d.size() < c.size() && d.dominates(c))
            {
                filtered.push(c.clone());
            }
        }
        filtered.sort_by_key(Cut::size);
        filtered.truncate(max_cuts);
        filtered.push(Cut::trivial(n));
        cuts[n] = filtered;
    }
    cuts
}

/// Computes the truth table of `root` as a function of the cut leaves
/// (≤ 4 leaves → `u16` table; leaf `i` is variable `i`).
///
/// # Panics
///
/// Panics if the cut has more than 4 leaves.
pub fn cut_truth_table(aig: &Aig, root: usize, cut: &Cut) -> u16 {
    assert!(cut.size() <= 4, "cut too large for u16 table");
    const VAR_PAT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];
    let mut memo: HashMap<usize, u16> = HashMap::new();
    memo.insert(0, 0); // constant false node
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        memo.insert(leaf, VAR_PAT[i]);
    }
    fn eval(aig: &Aig, node: usize, memo: &mut HashMap<usize, u16>) -> u16 {
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        assert!(aig.is_and(node), "node {node} unreachable from cut leaves");
        let [a, b] = aig.fanins(node);
        let va = eval(aig, a.node(), memo) ^ if a.is_complement() { 0xFFFF } else { 0 };
        let vb = eval(aig, b.node(), memo) ^ if b.is_complement() { 0xFFFF } else { 0 };
        let v = va & vb;
        memo.insert(node, v);
        v
    }
    eval(aig, root, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::aig::Lit;

    fn sample_aig() -> (Aig, Lit) {
        let mut aig = Aig::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| aig.pi(i)).collect();
        let x = aig.xor(pis[0], pis[1]);
        let y = aig.and(pis[2], pis[3]);
        let f = aig.or(x, y);
        aig.add_po(f);
        (aig, f)
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut {
            leaves: vec![1, 2, 3],
        };
        let b = Cut {
            leaves: vec![3, 4, 5],
        };
        assert!(a.merge(&b, 4).is_none());
        let m = a.merge(&b, 5).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_node_has_trivial_cut() {
        let (aig, _) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        for (n, node_cuts) in cuts.iter().enumerate().skip(1) {
            assert!(
                node_cuts.iter().any(|c| c.leaves() == [n]),
                "node {n} missing trivial cut"
            );
        }
    }

    #[test]
    fn root_has_pi_cut() {
        let (aig, f) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        let root_cuts = &cuts[f.node()];
        assert!(
            root_cuts.iter().any(|c| c.leaves() == [1, 2, 3, 4]),
            "expected the full-PI cut, got {root_cuts:?}"
        );
    }

    #[test]
    fn cut_function_matches_semantics() {
        let (aig, f) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        let cut = cuts[f.node()]
            .iter()
            .find(|c| c.leaves() == [1, 2, 3, 4])
            .unwrap()
            .clone();
        let tt = cut_truth_table(&aig, f.node(), &cut);
        for x in 0..16u64 {
            let expected = aig.eval(x) & 1 == 1;
            // f is not complemented at the PO in this construction;
            // evaluate the node itself.
            let got = (tt >> x) & 1 == 1;
            assert_eq!(got ^ f.is_complement(), expected, "x={x}");
        }
    }

    #[test]
    fn domination_filtering() {
        let small = Cut { leaves: vec![1] };
        let big = Cut { leaves: vec![1, 2] };
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
    }
}
