//! k-feasible cut enumeration on AIGs.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! the PIs to `n` passes through a leaf. k-feasible cuts (≤ k leaves) are
//! the unit of technology mapping; the XMG mapper uses `k = 4` to mirror
//! CirKit's `xmglut -k 4`.
//!
//! Cut merging — the inner loop of enumeration — works in an inline stack
//! buffer and allocates only when a candidate actually survives the size
//! bound, and every cut carries a 64-bit leaf signature (a Bloom-style
//! fingerprint) so dominance checks reject most pairs with two bit ops.

use qda_logic::aig::Aig;
use qda_logic::hash::{fx_map_with_capacity, FxHashMap};

/// Upper bound on `k` supported by the inline merge buffer.
pub const MAX_CUT_SIZE: usize = 16;

/// A cut: sorted leaf node indices plus a leaf-set signature.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cut {
    leaves: Vec<usize>,
    /// Bloom fingerprint: bit `l mod 64` set for every leaf `l`. A cut can
    /// only be a subset of another if its signature bits are.
    sig: u64,
}

fn signature(leaves: &[usize]) -> u64 {
    leaves.iter().fold(0u64, |s, &l| s | 1 << (l & 63))
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: usize) -> Self {
        Self::from_leaves(vec![node])
    }

    /// A cut from explicit leaves (sorted and deduplicated internally).
    pub fn from_leaves(mut leaves: Vec<usize>) -> Self {
        leaves.sort_unstable();
        leaves.dedup();
        let sig = signature(&leaves);
        Self { leaves, sig }
    }

    /// The leaves, ascending.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two cuts if the union stays within `k` leaves. The union is
    /// computed in an inline buffer; nothing is allocated unless the merge
    /// succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_CUT_SIZE`.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        assert!(k <= MAX_CUT_SIZE, "cut size {k} exceeds {MAX_CUT_SIZE}");
        // Early bounds: the union is at least as large as either operand,
        // and at least as large as the popcount of the combined signature.
        if self.leaves.len() > k || other.leaves.len() > k {
            return None;
        }
        let sig = self.sig | other.sig;
        if sig.count_ones() as usize > k {
            return None;
        }
        let mut buf = [0usize; MAX_CUT_SIZE];
        let mut len = 0;
        let (a, b) = (&self.leaves, &other.leaves);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!("loop condition"),
            };
            if len == k {
                return None;
            }
            buf[len] = next;
            len += 1;
        }
        Some(Cut {
            leaves: buf[..len].to_vec(),
            sig,
        })
    }

    /// Whether this cut's leaves are a subset of `other`'s (then `other`
    /// is dominated and redundant). Signature reject first, then a linear
    /// two-pointer subset test over the sorted leaves.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.sig & !other.sig != 0 || self.leaves.len() > other.leaves.len() {
            return false;
        }
        let mut j = 0;
        for &l in &self.leaves {
            while j < other.leaves.len() && other.leaves[j] < l {
                j += 1;
            }
            if j == other.leaves.len() || other.leaves[j] != l {
                return false;
            }
            j += 1;
        }
        true
    }
}

/// Enumerates up to `max_cuts` k-feasible cuts per node (plus the trivial
/// cut). Returns one cut list per node index. Dominated candidates are
/// filtered incrementally (a candidate dominated by a kept cut is dropped
/// on arrival; kept cuts dominated by a new candidate are evicted in
/// place), so the per-node list is never rebuilt.
///
/// # Panics
///
/// Panics if `k > MAX_CUT_SIZE` (the [`Cut::merge`] inline-buffer bound).
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for (i, c) in cuts.iter_mut().enumerate().take(aig.num_pis() + 1) {
        *c = vec![Cut::trivial(i)];
    }
    for n in (aig.num_pis() + 1)..aig.num_nodes() {
        let [a, b] = aig.fanins(n);
        let mut list: Vec<Cut> = Vec::new();
        for ca in &cuts[a.node()] {
            for cb in &cuts[b.node()] {
                let Some(c) = ca.merge(cb, k) else { continue };
                // Equal cuts dominate each other, so this also dedupes.
                if list.iter().any(|d| d.size() <= c.size() && d.dominates(&c)) {
                    continue;
                }
                list.retain(|d| !(c.size() <= d.size() && c.dominates(d)));
                list.push(c);
            }
        }
        list.sort_by_key(Cut::size);
        list.truncate(max_cuts);
        list.push(Cut::trivial(n));
        cuts[n] = list;
    }
    cuts
}

/// Computes the truth table of `root` as a function of the cut leaves
/// (≤ 4 leaves → `u16` table; leaf `i` is variable `i`).
///
/// # Panics
///
/// Panics if the cut has more than 4 leaves.
pub fn cut_truth_table(aig: &Aig, root: usize, cut: &Cut) -> u16 {
    assert!(cut.size() <= 4, "cut too large for u16 table");
    const VAR_PAT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];
    let mut memo: FxHashMap<usize, u16> = fx_map_with_capacity(16);
    memo.insert(0, 0); // constant false node
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        memo.insert(leaf, VAR_PAT[i]);
    }
    fn eval(aig: &Aig, node: usize, memo: &mut FxHashMap<usize, u16>) -> u16 {
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        assert!(aig.is_and(node), "node {node} unreachable from cut leaves");
        let [a, b] = aig.fanins(node);
        let va = eval(aig, a.node(), memo) ^ if a.is_complement() { 0xFFFF } else { 0 };
        let vb = eval(aig, b.node(), memo) ^ if b.is_complement() { 0xFFFF } else { 0 };
        let v = va & vb;
        memo.insert(node, v);
        v
    }
    eval(aig, root, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::aig::Lit;

    fn sample_aig() -> (Aig, Lit) {
        let mut aig = Aig::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| aig.pi(i)).collect();
        let x = aig.xor(pis[0], pis[1]);
        let y = aig.and(pis[2], pis[3]);
        let f = aig.or(x, y);
        aig.add_po(f);
        (aig, f)
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::from_leaves(vec![1, 2, 3]);
        let b = Cut::from_leaves(vec![3, 4, 5]);
        assert!(a.merge(&b, 4).is_none());
        let m = a.merge(&b, 5).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_handles_signature_collisions() {
        // Leaves 64 apart collide in the signature but must still merge
        // into distinct entries.
        let a = Cut::from_leaves(vec![1, 65]);
        let b = Cut::from_leaves(vec![129]);
        let m = a.merge(&b, 4).unwrap();
        assert_eq!(m.leaves(), &[1, 65, 129]);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn every_node_has_trivial_cut() {
        let (aig, _) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        for (n, node_cuts) in cuts.iter().enumerate().skip(1) {
            assert!(
                node_cuts.iter().any(|c| c.leaves() == [n]),
                "node {n} missing trivial cut"
            );
        }
    }

    #[test]
    fn root_has_pi_cut() {
        let (aig, f) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        let root_cuts = &cuts[f.node()];
        assert!(
            root_cuts.iter().any(|c| c.leaves() == [1, 2, 3, 4]),
            "expected the full-PI cut, got {root_cuts:?}"
        );
    }

    #[test]
    fn no_duplicate_or_dominated_cuts() {
        let (aig, _) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        for node_cuts in &cuts {
            for (i, c) in node_cuts.iter().enumerate() {
                for (j, d) in node_cuts.iter().enumerate() {
                    if i != j {
                        assert!(!c.dominates(d), "{c:?} dominates {d:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn cut_function_matches_semantics() {
        let (aig, f) = sample_aig();
        let cuts = enumerate_cuts(&aig, 4, 8);
        let cut = cuts[f.node()]
            .iter()
            .find(|c| c.leaves() == [1, 2, 3, 4])
            .unwrap()
            .clone();
        let tt = cut_truth_table(&aig, f.node(), &cut);
        for x in 0..16u64 {
            let expected = aig.eval(x) & 1 == 1;
            // f is not complemented at the PO in this construction;
            // evaluate the node itself.
            let got = (tt >> x) & 1 == 1;
            assert_eq!(got ^ f.is_complement(), expected, "x={x}");
        }
    }

    #[test]
    fn domination_filtering() {
        let small = Cut::from_leaves(vec![1]);
        let big = Cut::from_leaves(vec![1, 2]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        // Signature-colliding non-subset: 65 maps to the same bit as 1.
        let aliased = Cut::from_leaves(vec![65, 2]);
        assert!(!small.dominates(&aliased));
    }
}
