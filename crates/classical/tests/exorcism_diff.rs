//! Differential tests pinning the indexed exorcism engine against the
//! naive restart engine, plus regressions for the cube index itself
//! (wildcard-key collisions, output-mask separation, empty-cube
//! cancellation).

use proptest::prelude::*;
use qda_classical::exorcism::{minimize_esop, ExorcismEngine, ExorcismOptions};
use qda_logic::cube::Cube;
use qda_logic::esop::{Esop, MultiEsop};
use qda_logic::tt::TruthTable;

fn indexed() -> ExorcismOptions {
    ExorcismOptions::default()
}

fn naive() -> ExorcismOptions {
    ExorcismOptions {
        engine: ExorcismEngine::Naive,
        ..ExorcismOptions::default()
    }
}

fn literal_count(esop: &MultiEsop) -> usize {
    esop.cubes().iter().map(|(c, _)| c.num_literals()).sum()
}

/// Runs all three engines on copies of `esop` and checks the differential
/// contract: identical truth tables (all equal to the input's), the
/// index-accelerated replay bit-identical to the naive oracle, and the
/// indexed engine never worse in cubes or literals.
fn check_differential(esop: &MultiEsop, context: &str) {
    let reference = esop.to_truth_table();
    let mut by_indexed = esop.clone();
    minimize_esop(&mut by_indexed, &indexed());
    let mut by_naive = esop.clone();
    minimize_esop(&mut by_naive, &naive());
    let mut by_replay = esop.clone();
    minimize_esop(
        &mut by_replay,
        &ExorcismOptions {
            engine: ExorcismEngine::Replay,
            ..ExorcismOptions::default()
        },
    );
    assert_eq!(
        by_replay.cubes(),
        by_naive.cubes(),
        "{context}: replay diverged from the naive oracle"
    );
    assert_eq!(
        by_indexed.to_truth_table(),
        reference,
        "{context}: indexed engine changed the function"
    );
    assert_eq!(
        by_naive.to_truth_table(),
        reference,
        "{context}: naive engine changed the function"
    );
    assert!(
        by_indexed.len() <= by_naive.len(),
        "{context}: indexed kept {} cubes, naive {}",
        by_indexed.len(),
        by_naive.len()
    );
    // Literal count may only exceed the oracle's when it bought a strictly
    // smaller cube count (each cube is one Toffoli gate downstream, so
    // cubes dominate the quality order).
    assert!(
        by_indexed.len() < by_naive.len() || literal_count(&by_indexed) <= literal_count(&by_naive),
        "{context}: same cube count but indexed kept {} literals, naive {}",
        literal_count(&by_indexed),
        literal_count(&by_naive)
    );
}

/// A random multi-output ESOP: cubes restricted to `num_vars` variables,
/// masks restricted to `num_outputs` outputs.
fn arb_multi_esop(
    num_vars: usize,
    num_outputs: usize,
    max_cubes: usize,
) -> impl Strategy<Value = MultiEsop> {
    let var_mask = (1u64 << num_vars) - 1;
    let out_mask = if num_outputs == 64 {
        u64::MAX
    } else {
        (1u64 << num_outputs) - 1
    };
    prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..max_cubes).prop_map(
        move |raw| {
            let cubes = raw
                .into_iter()
                .map(|(care, pol, mask)| {
                    (
                        Cube::from_masks(care & var_mask, pol),
                        (mask & out_mask).max(1),
                    )
                })
                .collect();
            MultiEsop::from_cubes(num_vars, num_outputs, cubes)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn differential_random_multi_output(esop in arb_multi_esop(5, 3, 24)) {
        check_differential(&esop, "random 5-var 3-output");
    }

    #[test]
    fn differential_wide_cubes(esop in arb_multi_esop(8, 2, 16)) {
        check_differential(&esop, "random 8-var 2-output");
    }

    #[test]
    fn differential_minterm_seeded(words in prop::collection::vec(any::<u64>(), 2)) {
        // Dense minterm lists: the regime the index was built for.
        let t0 = TruthTable::from_words(6, vec![words[0]]);
        let t1 = TruthTable::from_words(6, vec![words[1]]);
        let esop = MultiEsop::from_single_outputs(&[
            Esop::from_truth_table(&t0),
            Esop::from_truth_table(&t1),
        ]);
        check_differential(&esop, &format!("minterm-seeded 6-var 2-output {:#x} {:#x}", words[0], words[1]));
    }
}

// ---------------------------------------------------------------------------
// Index regressions
// ---------------------------------------------------------------------------

/// Wildcard keys must separate "variable absent" from "variable present
/// with either phase" — three cubes pairwise at distance 1 through the
/// same wildcard position collapse to nothing (x ⊕ x̄ ⊕ ⊤ = 0), not to a
/// wrong single cube.
#[test]
fn wildcard_key_collisions_on_one_position() {
    let x = Cube::tautology().with_literal(0, true);
    let nx = Cube::tautology().with_literal(0, false);
    let top = Cube::tautology();
    let mut esop = MultiEsop::from_cubes(3, 1, vec![(x, 1), (nx, 1), (top, 1)]);
    let reference = esop.to_truth_table();
    minimize_esop(&mut esop, &indexed());
    assert_eq!(esop.to_truth_table(), reference);
    assert!(esop.is_empty(), "x ⊕ x̄ ⊕ ⊤ must cancel, got {esop:?}");
}

/// Cubes agreeing after wildcarding *different* variables must not be
/// treated as distance-1 partners: x0x1 and x̄0x̄1 are at distance 2.
#[test]
fn wildcard_keys_do_not_alias_across_positions() {
    let a = Cube::tautology()
        .with_literal(0, true)
        .with_literal(1, true);
    let b = Cube::tautology()
        .with_literal(0, false)
        .with_literal(1, false);
    let mut esop = MultiEsop::from_cubes(2, 1, vec![(a, 1), (b, 1)]);
    let reference = esop.to_truth_table();
    minimize_esop(&mut esop, &indexed());
    assert_eq!(esop.to_truth_table(), reference);
    assert_eq!(esop.len(), 2, "distance-2 pair must not merge directly");
}

/// Distance-1 cubes on different outputs share a wildcard position but
/// not a mask; the mask is part of the key, so they must not merge.
#[test]
fn output_mask_separation() {
    let a = Cube::minterm(3, 0b000);
    let b = Cube::minterm(3, 0b001);
    let mut esop = MultiEsop::from_cubes(3, 2, vec![(a, 0b01), (b, 0b10)]);
    let reference = esop.to_truth_table();
    minimize_esop(&mut esop, &indexed());
    assert_eq!(esop.to_truth_table(), reference);
    assert_eq!(esop.len(), 2);
    // Same cubes on the same output do merge.
    let mut esop = MultiEsop::from_cubes(3, 2, vec![(a, 0b01), (b, 0b01)]);
    minimize_esop(&mut esop, &indexed());
    assert_eq!(esop.len(), 1);
}

/// Identical cubes cancel through the exact index: masks XOR, and a cube
/// whose mask cancels to zero leaves the store entirely (no empty-mask
/// residue in the result).
#[test]
fn empty_cube_cancellation() {
    let c = Cube::minterm(4, 9);
    // Four copies on one output: pairwise cancellation to zero.
    let mut esop = MultiEsop::from_cubes(4, 1, vec![(c, 1); 4]);
    minimize_esop(&mut esop, &indexed());
    assert!(esop.is_empty());
    // Three copies: one survives.
    let mut esop = MultiEsop::from_cubes(4, 1, vec![(c, 1); 3]);
    minimize_esop(&mut esop, &indexed());
    assert_eq!(esop.len(), 1);
    assert_eq!(esop.cubes()[0], (c, 1));
    // Tautology cubes (no literals) cancel the same way.
    let top = Cube::tautology();
    let mut esop = MultiEsop::from_cubes(4, 2, vec![(top, 0b11), (top, 0b11)]);
    minimize_esop(&mut esop, &indexed());
    assert!(esop.is_empty());
}

/// A merge cascade: merging two cubes produces a cube identical to a
/// third (distance-0 through the exact map), which cancels, and the
/// survivor chain must stay consistent.
#[test]
fn merge_cascades_through_distance_zero() {
    let ab = Cube::tautology()
        .with_literal(0, true)
        .with_literal(1, true);
    let anb = Cube::tautology()
        .with_literal(0, true)
        .with_literal(1, false);
    let a = Cube::tautology().with_literal(0, true);
    // ab ⊕ ab̄ = a, which cancels the explicit a cube.
    let mut esop = MultiEsop::from_cubes(2, 1, vec![(ab, 1), (anb, 1), (a, 1)]);
    minimize_esop(&mut esop, &indexed());
    assert!(esop.is_empty(), "cascade must cancel, got {esop:?}");
}

/// The indexed engine must honour `exorlink2: false` (merge-only mode).
#[test]
fn exorlink_can_be_disabled() {
    let tt = TruthTable::from_fn(2, |x| x != 3);
    let esop = MultiEsop::from_single_outputs(&[Esop::from_truth_table(&tt)]);
    let mut merged_only = esop.clone();
    minimize_esop(
        &mut merged_only,
        &ExorcismOptions {
            exorlink2: false,
            ..ExorcismOptions::default()
        },
    );
    assert_eq!(merged_only.to_truth_table(), esop.to_truth_table());
}
