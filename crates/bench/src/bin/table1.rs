//! Regenerates **Table I**: baseline results with manual design —
//! RESDIV(n) and QNEWTON(n) qubit and T-counts for n ∈ {8, 16, 32, 64}.
//!
//! Default sweep: n ∈ {8, 16, 32}; `--full` adds n = 64.

use qda_arith::{qnewton_circuit, resdiv::resdiv_reciprocal};
use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args};
use qda_core::report::{group_digits, Table};

fn main() {
    let args = parse_args();
    let mut sizes = vec![8usize];
    if !args.quick {
        sizes.push(16);
        sizes.push(32);
        if args.full {
            sizes.push(64);
        }
    }
    let mut results = BenchResults::new("table1");
    let mut table = Table::new(
        "TABLE I — baseline results with manual design",
        vec![
            "n",
            "RESDIV qubits",
            "RESDIV T-count",
            "QNEWTON qubits",
            "QNEWTON T-count",
        ],
    );
    for n in sizes {
        let resdiv = resdiv_reciprocal(n).circuit.cost();
        let qnewton = qnewton_circuit(n).circuit.cost();
        results.push(BenchRow::from_cost("RESDIV", n, "manual baseline", &resdiv));
        results.push(BenchRow::from_cost(
            "QNEWTON",
            n,
            "manual baseline",
            &qnewton,
        ));
        table.add_row(vec![
            n.to_string(),
            resdiv.qubits.to_string(),
            group_digits(resdiv.t_count),
            qnewton.qubits.to_string(),
            group_digits(qnewton.t_count),
        ]);
        eprintln!("done n = {n}");
    }
    println!("{table}");
    emit_results(&results);
    println!("paper reference (RESDIV qubits/T, QNEWTON qubits/T):");
    println!("  n=8 : 48 / 8 512      111 / 14 632");
    println!("  n=16: 96 / 34 944     234 / 64 004");
    println!("  n=32: 192 / 141 568   615 / 352 440");
    println!("  n=64: 384 / 569 856   1226 / 1 405 284");
}
