//! `circuit_lint` — the static circuit analyzer (`qda_analyze`) across
//! every circuit family the workspace produces: TBS circuits of random
//! permutations (functional interface), the INTDIV/NEWTON hierarchical
//! flow outputs (Bennett interface: ancillae must end clean), and the
//! manual arithmetic generators RESDIV and QNEWTON (garbage-tolerant
//! hierarchical interfaces).
//!
//! Each workload reports the circuit size, the per-severity diagnostic
//! counts, the ASAP depth metrics, and the analysis time. Results go to
//! `BENCH_analyze.json`: the usual cost fields carry the analyzed
//! circuit's figures plus a `lint` object with `deny` / `warning` /
//! `note` / `logical_depth` / `t_depth`.
//!
//! Every workload must be **deny-clean**: a deny-level diagnostic on a
//! circuit this workspace produced is a bug in either the producer or
//! the analyzer, and the bench aborts on it.

use qda_analyze::{CircuitInterface, Report, Severity};
use qda_arith::qnewton_circuit;
use qda_arith::resdiv::resdiv_reciprocal;
use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, splitmix};
use qda_core::design::Design;
use qda_core::flow::{Flow, HierarchicalFlow};
use qda_core::report::Table;
use qda_rev::circuit::Circuit;
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};
use std::time::Instant;

/// One analyzer workload: a circuit plus the interface contract it is
/// linted against.
struct Workload {
    name: &'static str,
    n: usize,
    circuit: Circuit,
    interface: CircuitInterface,
}

/// A deterministic random permutation over `2^lines` values.
fn random_permutation(lines: usize, seed: &mut u64) -> Vec<u64> {
    let size = 1usize << lines;
    let mut perm: Vec<u64> = (0..size as u64).collect();
    for i in (1..size).rev() {
        let j = (splitmix(seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Runs a hierarchical flow and repackages its output as a workload
/// under the flow's own interface contract (Bennett cleanup: non-input
/// lines start at zero and ancillae must end clean).
fn flow_workload(name: &'static str, design: &Design) -> Workload {
    let outcome = HierarchicalFlow::default()
        .run(design)
        .expect("flow must succeed");
    let interface = CircuitInterface::hierarchical(
        outcome.circuit.num_lines(),
        outcome.input_lines.clone(),
        outcome.output_lines.clone(),
        true,
    );
    Workload {
        name,
        n: design.bits(),
        circuit: outcome.circuit,
        interface,
    }
}

fn main() {
    let args = parse_args();
    let mut seed = 0x11A7_0CA7;

    let tbs_ns: &[usize] = if args.quick {
        &[5]
    } else if args.full {
        &[5, 6, 7, 8]
    } else {
        &[5, 6, 7]
    };
    let flow_ns: &[usize] = if args.quick {
        &[5]
    } else if args.full {
        &[6, 7, 8]
    } else {
        &[6, 7]
    };
    let arith_ns: &[usize] = if args.quick {
        &[4]
    } else if args.full {
        &[6, 8, 12]
    } else {
        &[6, 8]
    };

    let mut workloads = Vec::new();
    for &n in tbs_ns {
        let perm = random_permutation(n, &mut seed);
        workloads.push(Workload {
            name: "TBS-RAND",
            n,
            circuit: transformation_based_synthesis(&perm, TbsDirection::Bidirectional),
            interface: CircuitInterface::functional(n),
        });
    }
    for &n in flow_ns {
        workloads.push(flow_workload("INTDIV-HIER", &Design::intdiv(n)));
        workloads.push(flow_workload("NEWTON-HIER", &Design::newton(n)));
    }
    for &n in arith_ns {
        let resdiv = resdiv_reciprocal(n);
        let mut inputs = resdiv.divisor_lines.clone();
        inputs.extend(&resdiv.dividend_lines);
        let mut outputs = resdiv.divisor_lines.clone();
        outputs.extend(&resdiv.quotient_lines);
        outputs.extend(&resdiv.remainder_lines);
        let interface =
            CircuitInterface::hierarchical(resdiv.circuit.num_lines(), inputs, outputs, false);
        workloads.push(Workload {
            name: "RESDIV",
            n,
            circuit: resdiv.circuit,
            interface,
        });
        let qnewton = qnewton_circuit(n);
        let interface = CircuitInterface::hierarchical(
            qnewton.circuit.num_lines(),
            qnewton.input_lines.clone(),
            qnewton.output_lines.clone(),
            false,
        );
        workloads.push(Workload {
            name: "QNEWTON",
            n,
            circuit: qnewton.circuit,
            interface,
        });
    }

    let mut results = BenchResults::new("analyze");
    let mut table = Table::new(
        "CIRCUIT LINT — static dataflow analysis of produced circuits",
        vec![
            "workload", "qubits", "gates", "T-count", "deny", "warn", "note", "depth", "T-depth",
            "time (s)",
        ],
    );
    for w in &workloads {
        let start = Instant::now();
        let report: Report = qda_analyze::analyze(&w.circuit, &w.interface);
        let secs = start.elapsed().as_secs_f64();
        assert!(
            report.is_clean(Severity::Deny),
            "{}({}): deny-level diagnostics on a workspace-produced circuit:\n{}",
            w.name,
            w.n,
            report.render_human()
        );
        results.push(BenchRow::from_lint(w.name, w.n, "lint", &report, secs));
        table.add_row(vec![
            format!("{}({})", w.name, w.n),
            report.metrics.num_lines.to_string(),
            report.metrics.num_gates.to_string(),
            report.metrics.t_count.to_string(),
            report.count(Severity::Deny).to_string(),
            report.count(Severity::Warning).to_string(),
            report.count(Severity::Note).to_string(),
            report.metrics.depth.logical_depth.to_string(),
            report.metrics.depth.t_depth.to_string(),
            format!("{secs:.3}"),
        ]);
        eprintln!("done {}({})", w.name, w.n);
    }
    println!("{table}");
    emit_results(&results);
    println!("every workload deny-clean under its interface contract");
}
