//! `resynth_bench` — the windowed resynthesis pass (`qda_rev::resynth`
//! driven by the `qda_revsynth` TBS/ESOP/linear back-ends) on top of the
//! peephole optimizer, across every circuit family the workspace
//! produces: TBS circuits of random permutations, the Bennett
//! hierarchical flow outputs, and the manual arithmetic generators
//! (RESDIV, QNEWTON).
//!
//! Every workload is first peephole-optimized (`qda_rev::opt`), so the
//! before → after figures here measure what resynthesis buys *beyond*
//! the local rewrite rules. Each run is machine-verified: every splice
//! is batch-simulated against its window and the whole circuit is
//! equivalence-checked against its input, and the bench asserts zero
//! unsound candidates ever reached a splice.
//!
//! The pass must never regress the lexicographic `(T-count, gates)`
//! cost (a splice may add a gate only when it strictly cuts T-count),
//! and must strictly reduce the gate count of at least one Bennett
//! hierarchical workload (the paper's scalable flow, whose
//! compute–copy–uncompute structure leaves windows the peephole rules
//! cannot see); both are asserted here.
//!
//! The second half races the flow portfolio
//! (`DesignSpaceExplorer::explore_portfolio`): every
//! {flow × post_opt × resynth} configuration per design, with losing
//! configurations cut off against the settled best raw cost. Results go
//! to `BENCH_resynth.json`: resynthesis rows carry `gates_in` /
//! `t_count_in` / `windows`, portfolio rows carry the configuration
//! name in `flow`.

use qda_arith::qnewton_circuit;
use qda_arith::resdiv::resdiv_reciprocal;
use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, splitmix};
use qda_core::design::Design;
use qda_core::dse::{configuration_name, default_workers, DesignSpaceExplorer};
use qda_core::flow::{EsopFlow, Flow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::Table;
use qda_rev::circuit::Circuit;
use qda_rev::opt::{optimize_checked, OptOptions};
use qda_rev::resynth::ResynthOptions;
use qda_revsynth::resynth::resynthesize_circuit_checked;
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};
use std::time::Instant;

/// One resynthesis workload: a peephole-optimized circuit plus the
/// expectations the bench enforces on it.
struct Workload {
    name: &'static str,
    n: usize,
    /// Already peephole-optimized input.
    circuit: Circuit,
    /// Whether this is a Bennett hierarchical output — the family the
    /// bench requires at least one strict gate reduction from.
    bennett: bool,
}

/// A deterministic random permutation over `2^lines` values.
fn random_permutation(lines: usize, seed: &mut u64) -> Vec<u64> {
    let size = 1usize << lines;
    let mut perm: Vec<u64> = (0..size as u64).collect();
    for i in (1..size).rev() {
        let j = (splitmix(seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Peephole-optimizes a raw circuit (sim-checked) so resynthesis is
/// measured beyond what the local rules already achieve.
fn peepholed(circuit: &Circuit) -> Circuit {
    optimize_checked(circuit, &OptOptions::default())
        .expect("peephole optimizer must be sound")
        .circuit
}

/// The post-peephole (but pre-resynthesis) circuit of a hierarchical
/// flow run.
fn hier_post_opt_circuit(design: &Design) -> Circuit {
    let flow = HierarchicalFlow {
        post_resynth: false,
        ..Default::default()
    };
    flow.run(design).expect("flow must succeed").circuit
}

fn main() {
    let args = parse_args();
    let mut seed = 0x5E5_EA7C8;

    let tbs_ns: &[usize] = if args.quick {
        &[5]
    } else if args.full {
        &[5, 6, 7]
    } else {
        &[5, 6]
    };
    let flow_ns: &[usize] = if args.quick {
        &[5]
    } else if args.full {
        &[5, 6, 7]
    } else {
        &[5, 6]
    };
    let arith_ns: &[usize] = if args.quick {
        &[4]
    } else if args.full {
        &[6, 8]
    } else {
        &[6]
    };

    let mut workloads = Vec::new();
    for &n in tbs_ns {
        let perm = random_permutation(n, &mut seed);
        let raw = transformation_based_synthesis(&perm, TbsDirection::Bidirectional);
        workloads.push(Workload {
            name: "TBS-RAND",
            n,
            circuit: peepholed(&raw),
            bennett: false,
        });
    }
    for &n in flow_ns {
        workloads.push(Workload {
            name: "INTDIV-HIER",
            n,
            circuit: hier_post_opt_circuit(&Design::intdiv(n)),
            bennett: true,
        });
        workloads.push(Workload {
            name: "NEWTON-HIER",
            n,
            circuit: hier_post_opt_circuit(&Design::newton(n)),
            bennett: true,
        });
    }
    for &n in arith_ns {
        workloads.push(Workload {
            name: "RESDIV",
            n,
            circuit: peepholed(&resdiv_reciprocal(n).circuit),
            bennett: false,
        });
        workloads.push(Workload {
            name: "QNEWTON",
            n,
            circuit: peepholed(&qnewton_circuit(n).circuit),
            bennett: false,
        });
    }

    let mut results = BenchResults::new("resynth");
    let mut table = Table::new(
        "RESYNTH BENCH — windowed resynthesis beyond the peephole pass (sim-checked)",
        vec![
            "workload", "qubits", "gates", "T-count", "windows", "accepted", "time (s)",
        ],
    );
    let mut bennett_reduced = false;
    for w in &workloads {
        let before = w.circuit.cost();
        let start = Instant::now();
        let out = resynthesize_circuit_checked(&w.circuit, &ResynthOptions::default())
            .unwrap_or_else(|m| {
                panic!(
                    "{}({}): resynthesis diverged from its input: {m}",
                    w.name, w.n
                )
            });
        let secs = start.elapsed().as_secs_f64();
        let after = out.circuit.cost();
        assert_eq!(
            out.stats.candidates_unsound, 0,
            "{}({}): an unsound candidate reached the splice stage",
            w.name, w.n
        );
        assert!(
            (after.t_count, after.gates) <= (before.t_count, before.gates),
            "{}({}): cost regressed {}g/{}T -> {}g/{}T",
            w.name,
            w.n,
            before.gates,
            before.t_count,
            after.gates,
            after.t_count
        );
        if w.bennett && after.gates < before.gates {
            bennett_reduced = true;
        }
        results.push(BenchRow::from_resynth(
            w.name,
            w.n,
            "resynth (TBS/ESOP/linear)",
            &before,
            &after,
            out.stats,
            secs,
        ));
        table.add_row(vec![
            format!("{}({})", w.name, w.n),
            before.qubits.to_string(),
            format!("{} -> {}", before.gates, after.gates),
            format!("{} -> {}", before.t_count, after.t_count),
            out.stats.windows_attempted.to_string(),
            out.stats.windows_accepted.to_string(),
            format!("{secs:.3}"),
        ]);
        eprintln!("done {}({})", w.name, w.n);
    }
    assert!(
        bennett_reduced,
        "no Bennett hierarchical workload was strictly reduced beyond the peephole pass"
    );
    println!("{table}");

    // Portfolio racing: every {flow × post_opt × resynth} configuration
    // per design, losing configurations cut off early against the
    // settled best raw cost.
    let n = args.sweep(4, 5, 6);
    let designs = [Design::intdiv(n), Design::newton(n)];
    let workers = default_workers();
    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(HierarchicalFlow::default()));
    let portfolio = dse.explore_portfolio(&designs, workers);

    let mut race = Table::new(
        "PORTFOLIO RACE — every configuration, losers cut off",
        vec![
            "design",
            "configuration",
            "qubits",
            "T-count",
            "gates",
            "status",
        ],
    );
    for o in &portfolio.outcomes {
        let label = configuration_name(&o.flow_name, o.post_opt, o.post_resynth);
        results.push(BenchRow::from_cost(&o.design.name(), n, &label, &o.cost));
        race.add_row(vec![
            o.design.name(),
            label,
            o.cost.qubits.to_string(),
            o.cost.t_count.to_string(),
            o.cost.gates.to_string(),
            if o.cut_off { "cut off" } else { "ran" }.to_string(),
        ]);
    }
    for (name, error) in &portfolio.failures {
        results.push(BenchRow::failure("PORTFOLIO", n, name, error));
    }
    println!("{race}");

    // Portfolio-vs-single-flow deltas: the winner against the default
    // hierarchical flow run in isolation.
    for design in &designs {
        let best = portfolio
            .best_for(design)
            .expect("every design has at least one surviving configuration");
        let single = HierarchicalFlow::default()
            .run(design)
            .expect("reference flow must succeed");
        assert!(
            best.cost.t_count <= single.cost.t_count,
            "{}: portfolio winner worse than the single default flow",
            design.name()
        );
        results.push(BenchRow::from_cost(
            &design.name(),
            n,
            "portfolio best",
            &best.cost,
        ));
        results.push(BenchRow::from_cost(
            &design.name(),
            n,
            "single default flow",
            &single.cost,
        ));
        println!(
            "{}: portfolio best {} — {} T / {} gates vs single default flow {} T / {} gates",
            design.name(),
            configuration_name(&best.flow_name, best.post_opt, best.post_resynth),
            best.cost.t_count,
            best.cost.gates,
            single.cost.t_count,
            single.cost.gates,
        );
    }

    emit_results(&results);
    println!(
        "every resynthesized circuit equivalence-checked against its original by batch simulation"
    );
}
