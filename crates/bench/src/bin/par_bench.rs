//! `par_bench` — worker-pool scaling across the three sharded hot paths:
//! exhaustive batch verification, EXORCISM's diversified restarts, and
//! the DSE configuration portfolio race.
//!
//! Every workload runs once per worker cap in {1, 2, 4} inside one
//! process, narrowed with `qda_logic::par::with_worker_cap` — the caps
//! are fixed, never derived from `QDA_WORKERS`, so the emitted rows are
//! byte-identical across environments once timing fields are stripped
//! (the CI worker matrix diffs exactly that). Within the process the
//! deterministic outputs (verification verdicts, minimized cube counts,
//! portfolio reports) are asserted identical across caps, and the pool is
//! warmed up front so the measured runs spawn zero threads — both halves
//! of the "one persistent budget" contract.
//!
//! Results go to `BENCH_par.json`: one row per (workload, `workers=N`)
//! with `runtime_s` plus `states_per_sec` for the verification sweep.
//!
//! Default sweep: 2^16-state verify / 10-var ESOP / INTDIV(5) portfolio;
//! `--quick` shrinks to 2^14 / 9 vars / INTDIV(4) (CI smoke), `--full`
//! extends to 2^18 / 12 vars / INTDIV(6).

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args};
use qda_classical::exorcism::{minimize_esop, ExorcismEngine, ExorcismOptions};
use qda_core::design::Design;
use qda_core::dse::DesignSpaceExplorer;
use qda_core::flow::{EsopFlow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::{portfolio_report, Table};
use qda_logic::esop::{Esop, MultiEsop};
use qda_logic::par;
use qda_logic::tt::TruthTable;
use qda_rev::blocks::less_than;
use qda_rev::circuit::Circuit;
use qda_rev::equiv::{verify_computes, VerifyOptions, VerifyOutcome};
use std::time::Instant;

/// The fixed worker-cap sweep. Caps above the machine's `QDA_WORKERS`
/// budget are harmless upper bounds, so the row set never depends on the
/// environment.
const CAPS: [usize; 3] = [1, 2, 4];

/// `target ^= (b < a)` comparator: `2w` input lines, known oracle, and an
/// exhaustive `2^(2w)`-state space for the verification sweep.
fn comparator(w: usize) -> Circuit {
    let a: Vec<usize> = (0..w).collect();
    let b: Vec<usize> = (w..2 * w).collect();
    let mut circuit = Circuit::new(2 * w + 2);
    less_than(&mut circuit, &a, &b, 2 * w, 2 * w + 1);
    circuit
}

/// Dense pseudo-random multi-output ESOP seeded as raw minterm lists —
/// the regime where EXORCISM's diversified restarts dominate.
fn minterm_workload(num_vars: usize, num_outputs: usize) -> MultiEsop {
    let esops: Vec<Esop> = (0..num_outputs as u64)
        .map(|o| {
            let tt = TruthTable::from_fn(num_vars, |x| {
                let mut s = (x << 8) ^ o ^ 0xABCD;
                qda_bench::runner::splitmix(&mut s).is_multiple_of(2)
            });
            Esop::from_truth_table(&tt)
        })
        .collect();
    MultiEsop::from_single_outputs(&esops)
}

fn portfolio_explorer() -> DesignSpaceExplorer {
    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(HierarchicalFlow::default()));
    dse
}

fn main() {
    let args = parse_args();
    let verify_w = args.sweep(7, 8, 9); // 2^(2w) states swept
    let esop_vars = args.sweep(9, 10, 12);
    let portfolio_n = args.sweep(4, 5, 6);

    // Warm the pool before any measurement: every later row must run on
    // reused threads.
    let _ = par::run_indexed(CAPS.len() * 4, |i| i);
    let spawned_before = par::spawned_threads();

    let mut results = BenchResults::new("par");
    let mut table = Table::new(
        "PAR BENCH — worker-pool scaling (one process, fixed caps)",
        vec!["workload", "workers", "runtime s", "states/s"],
    );

    // 1. Exhaustive batch verification (equiv sweep sharded over spans).
    let circuit = comparator(verify_w);
    let inputs: Vec<usize> = (0..2 * verify_w).collect();
    let states = 1u64 << (2 * verify_w);
    let options = VerifyOptions {
        exhaustive_limit: 2 * verify_w,
        ..VerifyOptions::default()
    };
    let mut verdicts = Vec::new();
    for cap in CAPS {
        let start = Instant::now();
        let outcome = par::with_worker_cap(cap, || {
            verify_computes(
                &circuit,
                &inputs,
                &[2 * verify_w + 1],
                |x| u64::from((x >> verify_w) < (x & ((1 << verify_w) - 1))),
                &options,
            )
        });
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(outcome, VerifyOutcome::Verified, "workers={cap}");
        verdicts.push(outcome);
        results.push(BenchRow::from_throughput(
            "LESS-THAN",
            verify_w,
            &format!("verify workers={cap}"),
            circuit.num_lines(),
            circuit.num_gates(),
            states,
            secs,
        ));
        table.add_row(vec![
            format!("verify LESS-THAN({verify_w})"),
            cap.to_string(),
            format!("{secs:.3}"),
            format!("{:.3e}", states as f64 / secs.max(f64::EPSILON)),
        ]);
    }
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]));

    // 2. EXORCISM diversified restarts (indexed engine, restart jobs
    // sharded over the pool).
    let esop = minterm_workload(esop_vars, 3);
    let exorcism = ExorcismOptions {
        engine: ExorcismEngine::Indexed,
        ..ExorcismOptions::default()
    };
    let mut cube_counts = Vec::new();
    for cap in CAPS {
        let mut minimized = esop.clone();
        let start = Instant::now();
        par::with_worker_cap(cap, || minimize_esop(&mut minimized, &exorcism));
        let secs = start.elapsed().as_secs_f64();
        cube_counts.push(minimized.len());
        results.push(BenchRow::from_minimization(
            "MINTERM",
            esop_vars,
            &format!("exorcism workers={cap}"),
            esop_vars,
            esop.len(),
            minimized.len(),
            minimized
                .cubes()
                .iter()
                .map(|(c, _)| c.num_literals())
                .sum(),
            secs,
        ));
        table.add_row(vec![
            format!("exorcism MINTERM({esop_vars})"),
            cap.to_string(),
            format!("{secs:.3}"),
            "-".to_string(),
        ]);
    }
    assert!(
        cube_counts.windows(2).all(|w| w[0] == w[1]),
        "EXORCISM result must not depend on the worker cap: {cube_counts:?}"
    );

    // 3. DSE portfolio race (flows, refinement combos, and their nested
    // optimizer/resynthesis shards all on the one pool).
    let design = Design::intdiv(portfolio_n);
    let mut reports = Vec::new();
    for cap in CAPS {
        let dse = portfolio_explorer();
        let start = Instant::now();
        let portfolio = dse.explore_portfolio(std::slice::from_ref(&design), cap);
        let secs = start.elapsed().as_secs_f64();
        assert!(!portfolio.outcomes.is_empty());
        reports.push(portfolio_report(&portfolio.outcomes));
        let best = portfolio.best_for(&design).expect("a configuration won");
        results.push(BenchRow::from_throughput(
            &design.name(),
            portfolio_n,
            &format!("portfolio workers={cap}"),
            best.cost.qubits,
            best.cost.gates as usize,
            portfolio.outcomes.len() as u64,
            secs,
        ));
        table.add_row(vec![
            format!("portfolio {}", design.name()),
            cap.to_string(),
            format!("{secs:.3}"),
            "-".to_string(),
        ]);
    }
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "portfolio report must not depend on the worker cap"
    );

    assert_eq!(
        par::spawned_threads(),
        spawned_before,
        "steady-state benchmark runs must not spawn threads"
    );

    println!("{table}");
    emit_results(&results);
    println!(
        "caps are fixed at {CAPS:?} and clamped by the pool's QDA_WORKERS budget; \
         all deterministic outputs verified identical across caps; \
         0 threads spawned after warm-up"
    );
}
