//! Regenerates **Fig. 1** (the design-flow graph) and demonstrates the
//! design space exploration the flows enable: all three flows on one
//! design, ranked by each objective, plus the Pareto front in the
//! (qubits, T-count) plane.

use qda_core::design::Design;
use qda_core::dse::{DesignSpaceExplorer, Objective};
use qda_core::flow::{EsopFlow, FlowGraph, FunctionalFlow, HierarchicalFlow};
use qda_core::report::{group_digits, Table};

fn main() {
    println!("FIG. 1 — design flows\n");
    println!("{}", FlowGraph);

    let design = Design::intdiv(6);
    println!("\nlive design space exploration on {design}:\n");
    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(EsopFlow::with_factoring(1)));
    dse.add_flow(Box::new(HierarchicalFlow::default()));
    dse.explore(&design);

    let mut table = Table::new(
        "flow outcomes",
        vec!["flow", "qubits", "T-count", "runtime (s)"],
    );
    for o in dse.outcomes() {
        table.add_row(vec![
            o.flow_name.clone(),
            o.cost.qubits.to_string(),
            group_digits(o.cost.t_count),
            format!("{:.3}", o.runtime.as_secs_f64()),
        ]);
    }
    println!("{table}");

    for objective in [Objective::Qubits, Objective::TCount, Objective::Runtime] {
        if let Some(best) = dse.best(objective) {
            println!(
                "best by {objective:?}: {} ({} qubits, {} T)",
                best.flow_name,
                best.cost.qubits,
                group_digits(best.cost.t_count)
            );
        }
    }
    println!("\nPareto front (qubits vs T-count):");
    for o in dse.pareto_front() {
        println!(
            "  {:>6} qubits, {:>10} T — {}",
            o.cost.qubits,
            group_digits(o.cost.t_count),
            o.flow_name
        );
    }
}
