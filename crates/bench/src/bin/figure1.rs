//! Regenerates **Fig. 1** (the design-flow graph) and demonstrates the
//! design space exploration the flows enable: all three flows on one
//! design — dispatched in parallel over a shared front-end cache — ranked
//! by each objective, plus the Pareto front in the (qubits, T-count)
//! plane.

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args};
use qda_core::design::Design;
use qda_core::dse::{default_workers, DesignSpaceExplorer, Objective};
use qda_core::flow::{EsopFlow, FlowGraph, FunctionalFlow, HierarchicalFlow};
use qda_core::report::{group_digits, Table};

fn main() {
    let args = parse_args();
    println!("FIG. 1 — design flows\n");
    println!("{}", FlowGraph);

    let n = args.sweep(5, 6, 6);
    let design = Design::intdiv(n);
    let workers = default_workers();
    println!("\nlive design space exploration on {design} ({workers} workers):\n");
    let mut dse = DesignSpaceExplorer::new();
    dse.add_flow(Box::new(FunctionalFlow::default()));
    dse.add_flow(Box::new(EsopFlow::with_factoring(0)));
    dse.add_flow(Box::new(EsopFlow::with_factoring(1)));
    dse.add_flow(Box::new(HierarchicalFlow::default()));
    dse.explore_matrix(&[design], workers);

    let mut results = BenchResults::new("figure1");
    let mut table = Table::new(
        "flow outcomes",
        vec!["flow", "qubits", "T-count", "runtime (s)"],
    );
    for o in dse.outcomes() {
        results.push(BenchRow::from_outcome("INTDIV", n, o));
        table.add_row(vec![
            o.flow_name.clone(),
            o.cost.qubits.to_string(),
            group_digits(o.cost.t_count),
            format!("{:.3}", o.runtime.as_secs_f64()),
        ]);
    }
    for (flow_name, error) in dse.failures() {
        results.push(BenchRow::failure("INTDIV", n, flow_name, error));
        table.add_row(vec![
            flow_name.clone(),
            "-".into(),
            format!("failed: {error}"),
            "-".into(),
        ]);
    }
    println!("{table}");

    let mut stages = Table::new(
        "per-stage timings (s)",
        vec![
            "flow",
            "parse+elab",
            "optimize",
            "synthesis",
            "post-opt",
            "resynth",
            "analyze",
            "verify",
            "total",
        ],
    );
    for o in dse.outcomes() {
        stages.add_row(Table::stage_row(o));
    }
    println!("{stages}");

    for objective in [Objective::Qubits, Objective::TCount, Objective::Runtime] {
        if let Some(best) = dse.best(objective) {
            println!(
                "best by {objective:?}: {} ({} qubits, {} T)",
                best.flow_name,
                best.cost.qubits,
                group_digits(best.cost.t_count)
            );
        }
    }
    println!("\nPareto front (qubits vs T-count):");
    for o in dse.pareto_front() {
        println!(
            "  {:>6} qubits, {:>10} T — {}",
            o.cost.qubits,
            group_digits(o.cost.t_count),
            o.flow_name
        );
    }
    emit_results(&results);
}
