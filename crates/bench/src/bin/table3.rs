//! Regenerates **Table III**: results with REVS ESOP-based synthesis at
//! p = 0 and p = 1 for INTDIV(n) and NEWTON(n).
//!
//! Default sweep: n = 5…9; `--full` extends to n = 12 (the paper sweeps
//! to n = 25 with multi-day runtimes; the ESOP of the reciprocal grows
//! exponentially either way, which is the trend this table documents).

use qda_bench::runner::{parse_args, secs};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow};
use qda_core::report::{group_digits, Table};

fn main() {
    let args = parse_args();
    let max_n = if args.full { 12 } else { 9 };
    let p0 = EsopFlow::with_factoring(0);
    let p1 = EsopFlow::with_factoring(1);
    let mut table = Table::new(
        "TABLE III — REVS ESOP-based synthesis",
        vec!["design", "n", "p", "qubits", "T-count", "runtime"],
    );
    for n in 5..=max_n {
        for (design, label) in [(Design::intdiv(n), "INTDIV"), (Design::newton(n), "NEWTON")] {
            for (flow, p) in [(&p0, 0usize), (&p1, 1)] {
                match flow.run(&design) {
                    Ok(o) => table.add_row(vec![
                        label.into(),
                        n.to_string(),
                        p.to_string(),
                        o.cost.qubits.to_string(),
                        group_digits(o.cost.t_count),
                        secs(o.runtime),
                    ]),
                    Err(e) => table.add_row(vec![
                        label.into(),
                        n.to_string(),
                        p.to_string(),
                        "-".into(),
                        format!("failed: {e}"),
                        "-".into(),
                    ]),
                }
            }
        }
        eprintln!("done n = {n}");
    }
    println!("{table}");
    println!("paper reference (INTDIV p=0 qubits/T): n=5: 10/232  n=8: 16/1 342");
    println!("expected shape: p=0 uses exactly 2n qubits; p=1 more qubits, fewer T");
}
