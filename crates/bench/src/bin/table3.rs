//! Regenerates **Table III**: results with REVS ESOP-based synthesis at
//! p = 0 and p = 1 for INTDIV(n) and NEWTON(n).
//!
//! Default sweep: n = 5…9; `--full` extends to n = 12 (the paper sweeps
//! to n = 25 with multi-day runtimes; the ESOP of the reciprocal grows
//! exponentially either way, which is the trend this table documents).

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, secs};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow, FrontendCache};
use qda_core::report::{group_digits, Table};

fn main() {
    let args = parse_args();
    let max_n = args.sweep(5, 9, 12);
    let p0 = EsopFlow::with_factoring(0);
    let p1 = EsopFlow::with_factoring(1);
    let mut results = BenchResults::new("table3");
    let mut table = Table::new(
        "TABLE III — REVS ESOP-based synthesis",
        vec!["design", "n", "p", "qubits", "T-count", "runtime"],
    );
    // Both factoring settings ask for the same optimization, so the
    // cache computes one front end per design.
    let cache = FrontendCache::new();
    for n in 5..=max_n {
        for (design, label) in [(Design::intdiv(n), "INTDIV"), (Design::newton(n), "NEWTON")] {
            for (flow, p) in [(&p0, 0usize), (&p1, 1)] {
                let frontend = cache
                    .get_or_compute(&design, &flow.frontend_options())
                    .expect("frontend");
                match flow.run_with_frontend(&design, &frontend) {
                    Ok(o) => {
                        results.push(BenchRow::from_outcome(label, n, &o));
                        table.add_row(vec![
                            label.into(),
                            n.to_string(),
                            p.to_string(),
                            o.cost.qubits.to_string(),
                            group_digits(o.cost.t_count),
                            secs(o.runtime),
                        ]);
                    }
                    Err(e) => {
                        results.push(BenchRow::failure(label, n, &flow.name(), &e));
                        table.add_row(vec![
                            label.into(),
                            n.to_string(),
                            p.to_string(),
                            "-".into(),
                            format!("failed: {e}"),
                            "-".into(),
                        ]);
                    }
                }
            }
        }
        eprintln!("done n = {n}");
    }
    println!("{table}");
    emit_results(&results);
    println!("paper reference (INTDIV p=0 qubits/T): n=5: 10/232  n=8: 16/1 342");
    println!("expected shape: p=0 uses exactly 2n qubits; p=1 more qubits, fewer T");
}
