//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. exorcism minimization on/off (ESOP flow),
//! 2. factoring depth p = 0, 1, 2 (ESOP flow),
//! 3. in-place XOR application on/off (hierarchical flow),
//! 4. cleanup strategy Bennett vs per-output vs keep-garbage,
//! 5. bidirectional vs unidirectional TBS,
//! 6. relative-phase vs plain-Toffoli cost model.
//!
//! Run with: `cargo run --release -p qda-bench --bin ablation`

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow, FunctionalFlow, HierarchicalFlow};
use qda_core::report::{group_digits, Table};
use qda_rev::decompose::plain_toffoli_t_count;
use qda_revsynth::hierarchical::CleanupStrategy;
use qda_revsynth::tbs::TbsDirection;

fn main() {
    let args = parse_args();
    let n = args.sweep(5, 7, 7);
    let design = Design::intdiv(n);
    let mut results = BenchResults::new("ablation");
    println!("ablations on {design}\n");

    // 1 + 2: exorcism and factoring depth.
    let mut t = Table::new(
        "ESOP flow: exorcism / factoring ablation",
        vec!["exorcism", "p", "qubits", "T-count"],
    );
    for exorcism in [true, false] {
        for p in [0usize, 1, 2] {
            let mut flow = EsopFlow::with_factoring(p);
            if !exorcism {
                flow.exorcism.max_rounds = 0;
            }
            let o = flow.run(&design).expect("esop flow");
            let label = format!("ESOP p = {p}, exorcism = {exorcism}");
            let mut row = BenchRow::from_outcome("INTDIV", n, &o);
            row.flow = label;
            results.push(row);
            t.add_row(vec![
                exorcism.to_string(),
                p.to_string(),
                o.cost.qubits.to_string(),
                group_digits(o.cost.t_count),
            ]);
        }
    }
    println!("{t}");

    // 3 + 4: hierarchical knobs.
    let mut t = Table::new(
        "hierarchical flow: cleanup / in-place-XOR ablation",
        vec!["strategy", "inplace XOR", "qubits", "gates", "T-count"],
    );
    for strategy in [
        CleanupStrategy::Bennett,
        CleanupStrategy::PerOutput,
        CleanupStrategy::KeepGarbage,
    ] {
        for inplace in [true, false] {
            let mut flow = HierarchicalFlow::with_strategy(strategy);
            flow.synth.inplace_xor = inplace && strategy == CleanupStrategy::Bennett;
            let o = flow.run(&design).expect("hierarchical flow");
            let mut row = BenchRow::from_outcome("INTDIV", n, &o);
            row.flow = format!(
                "hierarchical {strategy:?}, inplace_xor = {}",
                flow.synth.inplace_xor
            );
            results.push(row);
            t.add_row(vec![
                format!("{strategy:?}"),
                flow.synth.inplace_xor.to_string(),
                o.cost.qubits.to_string(),
                o.cost.gates.to_string(),
                group_digits(o.cost.t_count),
            ]);
        }
    }
    println!("{t}");

    // 5: TBS direction.
    let mut t = Table::new(
        "functional flow: TBS direction ablation",
        vec!["direction", "gates", "T-count"],
    );
    for direction in [TbsDirection::Unidirectional, TbsDirection::Bidirectional] {
        let flow = FunctionalFlow {
            direction,
            ..Default::default()
        };
        let o = flow.run(&design).expect("functional flow");
        let mut row = BenchRow::from_outcome("INTDIV", n, &o);
        row.flow = format!("functional TBS {direction:?}");
        results.push(row);
        t.add_row(vec![
            format!("{direction:?}"),
            o.cost.gates.to_string(),
            group_digits(o.cost.t_count),
        ]);
    }
    println!("{t}");

    // 6: cost model gap (relative-phase vs plain Toffoli expansion).
    let mut t = Table::new(
        "cost model: relative-phase (paper) vs plain-Toffoli expansion",
        vec!["flow", "T (relative-phase)", "T (plain Toffoli)"],
    );
    for (name, outcome) in [
        (
            "functional",
            FunctionalFlow::default().run(&design).expect("flow"),
        ),
        (
            "ESOP p=0",
            EsopFlow::with_factoring(0).run(&design).expect("flow"),
        ),
        (
            "hierarchical",
            HierarchicalFlow::default().run(&design).expect("flow"),
        ),
    ] {
        let mut row = BenchRow::from_outcome("INTDIV", n, &outcome);
        row.flow = format!("cost model: {name}");
        results.push(row);
        t.add_row(vec![
            name.into(),
            group_digits(outcome.cost.t_count),
            group_digits(plain_toffoli_t_count(&outcome.circuit)),
        ]);
    }
    println!("{t}");
    emit_results(&results);
}
