//! `esop_bench` — naive vs. indexed EXORCISM engine on the paper's ESOP
//! minimization path.
//!
//! Three workload families, each minimized by both engines with identical
//! resulting truth tables (asserted) and the indexed engine never keeping
//! more cubes (asserted):
//!
//! * `MINTERM(v)` — dense random `v`-variable 3-output functions seeded as
//!   raw minterm lists (`Esop::from_truth_table`), the regime where the
//!   naive engine's quadratic restarts blow up;
//! * `PSDKRO(v)` — arithmetic-style functions (`x·y` product bits)
//!   collapsed to BDDs and extracted via PSDKRO expansion, the seed shape
//!   the `EsopFlow` actually feeds exorcism;
//! * `FLOW INTDIV(n)` — the end-to-end `EsopFlow` with its per-stage split
//!   (parse+elab / optimize / synthesis / post-opt / verification), naive
//!   vs indexed
//!   exorcism inside.
//!
//! Results go to `BENCH_esop.json`: one row per (workload, engine) with
//! `cubes_in`, the minimized cube count in `gates`, the minimized literal
//! count in `t_count`, and `runtime_s` (see `qda_bench::results`).
//!
//! Default sweep: minterm v ∈ {10, 12}; `--quick` shrinks to v = 10 (CI
//! smoke), `--full` extends to v = 14 (the naive engine needs minutes
//! there).

use qda_bdd::BddManager;
use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, splitmix};
use qda_classical::esop_extract::extract_multi_esop;
use qda_classical::exorcism::{minimize_esop, ExorcismEngine, ExorcismOptions};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow};
use qda_core::report::Table;
use qda_logic::esop::{Esop, MultiEsop};
use qda_logic::tt::TruthTable;
use std::time::Instant;

/// A dense random multi-output function seeded as a raw minterm list.
fn minterm_workload(num_vars: usize, num_outputs: usize) -> MultiEsop {
    let esops: Vec<Esop> = (0..num_outputs as u64)
        .map(|o| {
            let tt = TruthTable::from_fn(num_vars, |x| {
                let mut s = (x << 8) ^ o ^ 0xABCD;
                splitmix(&mut s).is_multiple_of(2)
            });
            Esop::from_truth_table(&tt)
        })
        .collect();
    MultiEsop::from_single_outputs(&esops)
}

/// Middle product bits of `a × b` (split input word) through BDD +
/// PSDKRO — the seed shape `EsopFlow` hands to exorcism. The middle bits
/// carry the multiplier's full carry structure, so their PSDKRO covers
/// are the hard case (the low bits are near-trivial).
fn psdkro_workload(num_vars: usize, num_outputs: usize) -> MultiEsop {
    let half = num_vars / 2;
    let tts: Vec<TruthTable> = (0..num_outputs)
        .map(|i| {
            let bit = half - 1 + i;
            TruthTable::from_fn(num_vars, |x| {
                let a = x & ((1 << half) - 1);
                let b = x >> half;
                (a.wrapping_mul(b) >> bit) & 1 == 1
            })
        })
        .collect();
    let mut mgr = BddManager::new(num_vars);
    let bdds: Vec<_> = tts.iter().map(|tt| mgr.from_truth_table(tt)).collect();
    extract_multi_esop(&mut mgr, &bdds)
}

fn literal_count(esop: &MultiEsop) -> usize {
    esop.cubes().iter().map(|(c, _)| c.num_literals()).sum()
}

struct EngineRun {
    label: &'static str,
    cubes: usize,
    literals: usize,
    seconds: f64,
}

/// Minimizes a copy of `esop` with `engine`, checking function
/// preservation against `esop` itself.
fn run_engine(esop: &MultiEsop, engine: ExorcismEngine, label: &'static str) -> EngineRun {
    let options = ExorcismOptions {
        engine,
        ..ExorcismOptions::default()
    };
    let mut minimized = esop.clone();
    let start = Instant::now();
    minimize_esop(&mut minimized, &options);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        minimized.to_truth_table(),
        esop.to_truth_table(),
        "{label}: minimization changed the function"
    );
    EngineRun {
        label,
        cubes: minimized.len(),
        literals: literal_count(&minimized),
        seconds,
    }
}

fn main() {
    let args = parse_args();
    let max_minterm_vars = args.sweep(10, 12, 14);
    let outputs = 3;

    let mut results = BenchResults::new("esop");
    let mut table = Table::new(
        "ESOP BENCH — naive vs indexed EXORCISM engines",
        vec![
            "workload",
            "vars",
            "cubes in",
            "naive cubes",
            "indexed cubes",
            "naive s",
            "indexed s",
            "speedup",
        ],
    );

    let mut workloads: Vec<(&'static str, usize, MultiEsop)> = Vec::new();
    for v in (10..=max_minterm_vars).step_by(2) {
        workloads.push(("MINTERM", v, minterm_workload(v, outputs)));
    }
    workloads.push(("PSDKRO", 10, psdkro_workload(10, outputs)));
    if !args.quick {
        workloads.push(("PSDKRO", 12, psdkro_workload(12, outputs)));
    }

    for (name, vars, esop) in &workloads {
        let naive = run_engine(esop, ExorcismEngine::Naive, "naive");
        let indexed = run_engine(esop, ExorcismEngine::Indexed, "indexed");
        // Acceptance contract for every emitted row. On covers within
        // `restart_cube_limit` the replay start makes this hold by
        // construction; above it the diversified single start has beaten
        // the naive path on every workload here — a future heuristic
        // change that regresses it should fail this bench loudly.
        assert!(
            indexed.cubes <= naive.cubes,
            "{name}({vars}): indexed kept {} cubes, naive {}",
            indexed.cubes,
            naive.cubes
        );
        for run in [&naive, &indexed] {
            results.push(BenchRow::from_minimization(
                name,
                *vars,
                run.label,
                *vars,
                esop.len(),
                run.cubes,
                run.literals,
                run.seconds,
            ));
        }
        table.add_row(vec![
            name.to_string(),
            vars.to_string(),
            esop.len().to_string(),
            naive.cubes.to_string(),
            indexed.cubes.to_string(),
            format!("{:.3}", naive.seconds),
            format!("{:.3}", indexed.seconds),
            format!("{:.1}x", naive.seconds / indexed.seconds.max(f64::EPSILON)),
        ]);
        eprintln!("done {name}({vars})");
    }

    // End-to-end EsopFlow: same design, naive vs indexed exorcism inside,
    // with the per-stage split captured in the JSON rows.
    let flow_n = if args.quick { 4 } else { 6 };
    let design = Design::intdiv(flow_n);
    for (label, engine) in [
        ("EsopFlow/naive", ExorcismEngine::Naive),
        ("EsopFlow/indexed", ExorcismEngine::Indexed),
    ] {
        let mut flow = EsopFlow::with_factoring(0);
        flow.exorcism.engine = engine;
        match flow.run(&design) {
            Ok(outcome) => {
                let mut row = BenchRow::from_outcome("INTDIV", flow_n, &outcome);
                row.flow = label.to_string();
                table.add_row(vec![
                    format!("FLOW {}", design.name()),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    if engine == ExorcismEngine::Naive {
                        format!("{:.3}", outcome.runtime.as_secs_f64())
                    } else {
                        "-".to_string()
                    },
                    if engine == ExorcismEngine::Indexed {
                        format!("{:.3}", outcome.runtime.as_secs_f64())
                    } else {
                        "-".to_string()
                    },
                    "-".to_string(),
                ]);
                results.push(row);
            }
            Err(e) => results.push(BenchRow::failure("INTDIV", flow_n, label, &e)),
        }
        eprintln!("done {label}");
    }

    println!("{table}");
    emit_results(&results);
    println!("gates = minimized cubes (one Toffoli each), t_count = minimized literals");
}
