//! Regenerates **Table II**: results with symbolic functional reversible
//! synthesis (optimum embedding + transformation-based synthesis) for
//! INTDIV(n) and NEWTON(n).
//!
//! Default sweep: n = 4…8; `--full` extends to n = 10. The paper's
//! SAT-based symbolic variant reached n = 16 after 3.2 days on a server;
//! this explicit-permutation implementation reproduces the same qubit
//! optimality (2n − 1) and the same exponential T-count/runtime growth on
//! the reachable prefix.

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, secs};
use qda_core::design::Design;
use qda_core::flow::{Flow, FunctionalFlow};
use qda_core::report::{group_digits, Table};

fn main() {
    let args = parse_args();
    let max_n = args.sweep(4, 8, 10);
    let flow = FunctionalFlow::default();
    let mut results = BenchResults::new("table2");
    let mut table = Table::new(
        "TABLE II — symbolic functional reversible synthesis",
        vec![
            "n",
            "INTDIV qubits",
            "INTDIV T-count",
            "INTDIV runtime",
            "NEWTON qubits",
            "NEWTON T-count",
            "NEWTON runtime",
        ],
    );
    for n in 4..=max_n {
        let intdiv = flow.run(&Design::intdiv(n)).expect("INTDIV flow");
        let newton = flow.run(&Design::newton(n)).expect("NEWTON flow");
        results.push(BenchRow::from_outcome("INTDIV", n, &intdiv));
        results.push(BenchRow::from_outcome("NEWTON", n, &newton));
        table.add_row(vec![
            n.to_string(),
            intdiv.cost.qubits.to_string(),
            group_digits(intdiv.cost.t_count),
            secs(intdiv.runtime),
            newton.cost.qubits.to_string(),
            group_digits(newton.cost.t_count),
            secs(newton.runtime),
        ]);
        eprintln!("done n = {n}");
    }
    println!("{table}");
    emit_results(&results);
    println!("paper reference (INTDIV qubits/T-count): n=4: 7/597  n=8: 15/51 386");
    println!("expected shape: qubits = 2n−1 (optimum embedding), T-count ×~3-5 per bit");
}
