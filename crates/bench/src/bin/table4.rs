//! Regenerates **Table IV**: results with hierarchical synthesis
//! (AIG → XMG → REVS hierarchical) for INTDIV(n) and NEWTON(n).
//!
//! Default sweep: n ∈ {16, 32}; `--full` adds n = 64 and n = 128 (INTDIV)
//! like the paper.

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, secs};
use qda_core::design::Design;
use qda_core::flow::{Flow, HierarchicalFlow};
use qda_core::report::{group_digits, Table};

fn main() {
    let args = parse_args();
    let mut sizes = vec![16usize];
    if !args.quick {
        sizes.push(32);
        if args.full {
            sizes.push(64);
            sizes.push(128);
        }
    }
    let flow = HierarchicalFlow::default();
    let mut results = BenchResults::new("table4");
    let mut table = Table::new(
        "TABLE IV — hierarchical synthesis",
        vec!["design", "n", "qubits", "T-count", "runtime"],
    );
    for &n in &sizes {
        let designs: Vec<(Design, &str)> = if n <= 64 {
            vec![(Design::intdiv(n), "INTDIV"), (Design::newton(n), "NEWTON")]
        } else {
            // NEWTON(128) mirrors the paper's largest instance but takes
            // very long; keep INTDIV only at n = 128.
            vec![(Design::intdiv(n), "INTDIV")]
        };
        for (design, label) in designs {
            match flow.run(&design) {
                Ok(o) => {
                    results.push(BenchRow::from_outcome(label, n, &o));
                    table.add_row(vec![
                        label.into(),
                        n.to_string(),
                        o.cost.qubits.to_string(),
                        group_digits(o.cost.t_count),
                        secs(o.runtime),
                    ]);
                }
                Err(e) => {
                    results.push(BenchRow::failure(label, n, &flow.name(), &e));
                    table.add_row(vec![
                        label.into(),
                        n.to_string(),
                        "-".into(),
                        format!("failed: {e}"),
                        "-".into(),
                    ]);
                }
            }
            eprintln!("done {label}({n})");
        }
    }
    println!("{table}");
    emit_results(&results);
    println!("paper reference (INTDIV qubits/T): n=16: 892/5 607  n=32: 3 501/21 455");
    println!("expected shape: qubits ≫ baseline, T-count ≪ baseline; INTDIV ≪ NEWTON");
}
