//! `opt_bench` — the post-synthesis peephole optimizer (`qda_rev::opt`)
//! across every circuit family the workspace produces: TBS circuits of
//! random permutations, the raw ESOP-flow and hierarchical-flow outputs
//! (run with `post_opt` off so the bench optimizes them itself), and the
//! manual arithmetic generators (RESDIV, QNEWTON).
//!
//! Each workload reports gates and T-count before → after, the accepted
//! rewrites per rule, and the optimization time (which includes the
//! batch-simulation equivalence check — every rewritten circuit is
//! machine-verified against its original before being reported).
//! Results go to `BENCH_opt.json`: the usual cost fields carry the
//! *optimized* figures plus `gates_in` / `t_count_in` / `rewrites`.
//!
//! The optimizer must never increase the T-count of any workload, and
//! must strictly reduce the gate count of the Bennett hierarchical
//! outputs (the paper's scalable flow, whose compute–copy–uncompute
//! structure leaves the most local redundancy); both are asserted here.

use qda_arith::qnewton_circuit;
use qda_arith::resdiv::resdiv_reciprocal;
use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, splitmix};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow, HierarchicalFlow};
use qda_core::report::Table;
use qda_rev::circuit::Circuit;
use qda_rev::opt::{optimize_checked, OptOptions};
use qda_revsynth::tbs::{transformation_based_synthesis, TbsDirection};
use std::time::Instant;

/// One optimizer workload: a raw synthesized circuit plus the hard
/// expectations the bench enforces on it.
struct Workload {
    name: &'static str,
    n: usize,
    circuit: Circuit,
    /// The acceptance bar for Bennett hierarchical outputs: the pass
    /// must strictly reduce the gate count.
    must_reduce_gates: bool,
}

/// A deterministic random permutation over `2^lines` values.
fn random_permutation(lines: usize, seed: &mut u64) -> Vec<u64> {
    let size = 1usize << lines;
    let mut perm: Vec<u64> = (0..size as u64).collect();
    for i in (1..size).rev() {
        let j = (splitmix(seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// The raw (pre-optimizer) circuit of a flow run.
fn raw_flow_circuit(flow: &dyn Flow, design: &Design) -> Circuit {
    flow.run(design).expect("flow must succeed").circuit
}

fn main() {
    let args = parse_args();
    let mut seed = 0x0B7_BE4C;

    let tbs_ns: &[usize] = if args.quick {
        &[5]
    } else if args.full {
        &[5, 6, 7, 8]
    } else {
        &[5, 6, 7]
    };
    let flow_ns: &[usize] = if args.quick {
        &[5]
    } else if args.full {
        &[6, 7, 8]
    } else {
        &[6, 7]
    };
    let arith_ns: &[usize] = if args.quick {
        &[4]
    } else if args.full {
        &[6, 8, 12]
    } else {
        &[6, 8]
    };

    let mut workloads = Vec::new();
    for &n in tbs_ns {
        let perm = random_permutation(n, &mut seed);
        workloads.push(Workload {
            name: "TBS-RAND",
            n,
            circuit: transformation_based_synthesis(&perm, TbsDirection::Bidirectional),
            must_reduce_gates: false,
        });
    }
    for &n in flow_ns {
        let esop = EsopFlow {
            post_opt: false,
            ..EsopFlow::with_factoring(0)
        };
        workloads.push(Workload {
            name: "INTDIV-ESOP",
            n,
            circuit: raw_flow_circuit(&esop, &Design::intdiv(n)),
            must_reduce_gates: false,
        });
        let hier = HierarchicalFlow {
            post_opt: false,
            ..Default::default()
        };
        workloads.push(Workload {
            name: "INTDIV-HIER",
            n,
            circuit: raw_flow_circuit(&hier, &Design::intdiv(n)),
            must_reduce_gates: true,
        });
        workloads.push(Workload {
            name: "NEWTON-HIER",
            n,
            circuit: raw_flow_circuit(&hier, &Design::newton(n)),
            must_reduce_gates: true,
        });
    }
    for &n in arith_ns {
        workloads.push(Workload {
            name: "RESDIV",
            n,
            circuit: resdiv_reciprocal(n).circuit,
            must_reduce_gates: false,
        });
        workloads.push(Workload {
            name: "QNEWTON",
            n,
            circuit: qnewton_circuit(n).circuit,
            must_reduce_gates: false,
        });
    }

    let mut results = BenchResults::new("opt");
    let mut table = Table::new(
        "OPT BENCH — post-synthesis peephole optimization (sim-checked)",
        vec![
            "workload", "qubits", "gates", "T-count", "cancel", "merge", "not-abs", "time (s)",
        ],
    );
    for w in &workloads {
        let before = w.circuit.cost();
        let start = Instant::now();
        let out = optimize_checked(&w.circuit, &OptOptions::default()).unwrap_or_else(|m| {
            panic!(
                "{}({}): optimizer diverged from its input: {m}",
                w.name, w.n
            )
        });
        let secs = start.elapsed().as_secs_f64();
        let after = out.circuit.cost();
        assert!(
            after.t_count <= before.t_count,
            "{}({}): T-count regressed {} -> {}",
            w.name,
            w.n,
            before.t_count,
            after.t_count
        );
        assert!(
            !w.must_reduce_gates || after.gates < before.gates,
            "{}({}): Bennett output not strictly reduced ({} gates)",
            w.name,
            w.n,
            before.gates
        );
        results.push(BenchRow::from_opt(
            w.name, w.n, &before, &after, out.stats, secs,
        ));
        table.add_row(vec![
            format!("{}({})", w.name, w.n),
            before.qubits.to_string(),
            format!("{} -> {}", before.gates, after.gates),
            format!("{} -> {}", before.t_count, after.t_count),
            out.stats.cancellations.to_string(),
            (out.stats.polarity_merges + out.stats.subset_merges).to_string(),
            out.stats.not_absorptions.to_string(),
            format!("{secs:.3}"),
        ]);
        eprintln!("done {}({})", w.name, w.n);
    }
    println!("{table}");
    emit_results(&results);
    println!(
        "every rewritten circuit equivalence-checked against its original by batch simulation"
    );
}
