//! `verify_bench` — scalar replay vs. bit-parallel batch simulation
//! throughput on the reversible arithmetic blocks, i.e. the two engines
//! behind `qda_rev::equiv::verify_computes`.
//!
//! Each workload replays the same random input set through the same
//! circuit with both engines (folding every line's final value — results
//! and ancillae included — into a checksum that must agree bit-exactly)
//! and reports states/sec and gates·states/sec.
//! Results go to `BENCH_verify.json`: one row per (block, engine) with
//! the usual cost fields plus `states_per_sec`.
//!
//! Default sweep: three blocks × 2^16 states; `--quick` shrinks to one
//! block × 2^13 (CI smoke), `--full` extends to five blocks × 2^19.

use qda_bench::results::{BenchResults, BenchRow};
use qda_bench::runner::{emit_results, parse_args, splitmix};
use qda_core::report::Table;
use qda_rev::batchsim::{BatchState, BATCH_STATES};
use qda_rev::blocks::{cuccaro_add, less_than, multiply_add};
use qda_rev::circuit::Circuit;
use qda_rev::state::BitState;
use std::time::Instant;

/// One throughput workload: a circuit plus its input registers.
struct Workload {
    name: &'static str,
    n: usize,
    circuit: Circuit,
    regs: Vec<Vec<usize>>,
}

impl Workload {
    /// Every circuit line, chunked into ≤64-line read registers: the
    /// checksums cover result and ancilla lines too, not just the input
    /// registers, so any engine divergence is visible.
    fn checksum_regs(&self) -> Vec<Vec<usize>> {
        let all: Vec<usize> = (0..self.circuit.num_lines()).collect();
        all.chunks(64).map(<[usize]>::to_vec).collect()
    }
}

fn adder(w: usize) -> Workload {
    let a: Vec<usize> = (0..w).collect();
    let b: Vec<usize> = (w..2 * w).collect();
    let mut circuit = Circuit::new(2 * w + 2);
    cuccaro_add(&mut circuit, &a, &b, 2 * w, Some(2 * w + 1), None);
    Workload {
        name: "CUCCARO-ADD",
        n: w,
        circuit,
        regs: vec![a, b],
    }
}

fn comparator(w: usize) -> Workload {
    let a: Vec<usize> = (0..w).collect();
    let b: Vec<usize> = (w..2 * w).collect();
    let mut circuit = Circuit::new(2 * w + 2);
    less_than(&mut circuit, &a, &b, 2 * w, 2 * w + 1);
    Workload {
        name: "LESS-THAN",
        n: w,
        circuit,
        regs: vec![a, b],
    }
}

fn multiplier(w: usize) -> Workload {
    let a: Vec<usize> = (0..w).collect();
    let b: Vec<usize> = (w..2 * w).collect();
    let out: Vec<usize> = (2 * w..4 * w).collect();
    let mut circuit = Circuit::new(4 * w + 1);
    multiply_add(&mut circuit, &a, &b, &out, 4 * w);
    Workload {
        name: "MULT",
        n: w,
        circuit,
        regs: vec![a, b],
    }
}

/// Folds one state's register outputs into a running checksum (same
/// order for both engines, so the sums must agree bit-exactly).
fn fold(checksum: u64, value: u64) -> u64 {
    checksum.rotate_left(7) ^ value
}

/// Replays `inputs` (one value stream per register) one state and one
/// gate at a time. Returns (checksum, seconds).
fn run_scalar(w: &Workload, inputs: &[Vec<u64>]) -> (u64, f64) {
    let states = inputs[0].len();
    let out_regs = w.checksum_regs();
    let start = Instant::now();
    let mut checksum = 0u64;
    for k in 0..states {
        let mut s = BitState::zeros(w.circuit.num_lines());
        for (reg, vals) in w.regs.iter().zip(inputs) {
            s.write_register(reg, vals[k]);
        }
        w.circuit.apply(&mut s);
        for reg in &out_regs {
            checksum = fold(checksum, s.read_register(reg));
        }
    }
    (checksum, start.elapsed().as_secs_f64())
}

/// Replays the same inputs through the transposed bit-parallel engine in
/// [`BATCH_STATES`]-state batches. Returns (checksum, seconds).
fn run_batch(w: &Workload, inputs: &[Vec<u64>]) -> (u64, f64) {
    let states = inputs[0].len();
    let out_regs = w.checksum_regs();
    let start = Instant::now();
    let mut checksum = 0u64;
    let mut base = 0;
    while base < states {
        let end = (base + BATCH_STATES).min(states);
        let mut s = BatchState::zeros(w.circuit.num_lines(), end - base);
        for (reg, vals) in w.regs.iter().zip(inputs) {
            s.load_register(reg, &vals[base..end]);
        }
        w.circuit.apply_batch(&mut s);
        let outs: Vec<Vec<u64>> = out_regs.iter().map(|reg| s.read_register(reg)).collect();
        for k in 0..end - base {
            for out in &outs {
                checksum = fold(checksum, out[k]);
            }
        }
        base = end;
    }
    (checksum, start.elapsed().as_secs_f64())
}

fn main() {
    let args = parse_args();
    let states = args.sweep(1 << 13, 1 << 16, 1 << 19) as u64;
    let mut workloads = vec![adder(24)];
    if !args.quick {
        workloads.push(comparator(24));
        workloads.push(multiplier(8));
    }
    if args.full {
        workloads.push(adder(48));
        workloads.push(multiplier(12));
    }

    let mut results = BenchResults::new("verify");
    let mut table = Table::new(
        "VERIFY BENCH — scalar replay vs bit-parallel batch simulation",
        vec![
            "block",
            "qubits",
            "gates",
            "states",
            "scalar states/s",
            "batch states/s",
            "speedup",
        ],
    );
    let mut seed = 0xC0FFEE;
    for w in &workloads {
        let inputs: Vec<Vec<u64>> = w
            .regs
            .iter()
            .map(|reg| {
                let mask = if reg.len() == 64 {
                    u64::MAX
                } else {
                    (1u64 << reg.len()) - 1
                };
                (0..states).map(|_| splitmix(&mut seed) & mask).collect()
            })
            .collect();
        let (scalar_sum, scalar_s) = run_scalar(w, &inputs);
        let (batch_sum, batch_s) = run_batch(w, &inputs);
        assert_eq!(
            scalar_sum, batch_sum,
            "{}({}): batch simulation diverged from scalar replay",
            w.name, w.n
        );
        let qubits = w.circuit.num_lines();
        let gates = w.circuit.num_gates();
        let scalar_rate = states as f64 / scalar_s.max(f64::EPSILON);
        let batch_rate = states as f64 / batch_s.max(f64::EPSILON);
        results.push(BenchRow::from_throughput(
            w.name,
            w.n,
            "scalar replay",
            qubits,
            gates,
            states,
            scalar_s,
        ));
        results.push(BenchRow::from_throughput(
            w.name,
            w.n,
            "batch (64-way)",
            qubits,
            gates,
            states,
            batch_s,
        ));
        table.add_row(vec![
            format!("{}({})", w.name, w.n),
            qubits.to_string(),
            gates.to_string(),
            states.to_string(),
            format!("{:.3e}", scalar_rate),
            format!("{:.3e}", batch_rate),
            format!("{:.1}x", batch_rate / scalar_rate),
        ]);
        eprintln!("done {}({})", w.name, w.n);
    }
    println!("{table}");
    emit_results(&results);
    println!("gates·states/sec = states/sec × gates; both engines fold identical checksums");
}
