//! Shared command-line handling for the table binaries.

/// Parsed command-line options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Args {
    /// Extend the sweep toward the paper's largest instances.
    pub full: bool,
}

/// Parses `--full` from the process arguments.
pub fn parse_args() -> Args {
    let full = std::env::args().any(|a| a == "--full");
    Args { full }
}

/// Formats a `Duration` in seconds with two decimals (the paper's unit).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}
