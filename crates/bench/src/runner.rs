//! Shared command-line handling for the table binaries.

use crate::results::BenchResults;

/// Parsed command-line options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Args {
    /// Extend the sweep toward the paper's largest instances.
    pub full: bool,
    /// Shrink the sweep to the smallest width (CI smoke runs).
    pub quick: bool,
}

/// Parses `--full` / `--quick` from the process arguments.
pub fn parse_args() -> Args {
    let mut args = Args::default();
    for a in std::env::args() {
        match a.as_str() {
            "--full" => args.full = true,
            "--quick" => args.quick = true,
            _ => {}
        }
    }
    args
}

impl Args {
    /// Picks the sweep ceiling: `quick` when `--quick`, `full` when
    /// `--full`, `default` otherwise (`--quick` wins if both are given).
    pub fn sweep(&self, quick: usize, default: usize, full: usize) -> usize {
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }
}

/// SplitMix64 step: deterministic workload/input streams for the bench
/// binaries without extra dependencies.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Formats a `Duration` in seconds with two decimals (the paper's unit).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Writes the structured results file and reports where it went (or why
/// it could not be written) on stderr.
pub fn emit_results(results: &BenchResults) {
    match results.write() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
