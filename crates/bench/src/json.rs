//! A minimal JSON writer — just enough to serialize bench results.
//!
//! The container this workspace builds in has no crates.io access, so the
//! structured results layer ships its own writer instead of pulling in
//! `serde_json`. Output is deterministic: object keys render in insertion
//! order, floats with fixed precision via [`Json::fixed`].

use std::fmt::Write as _;

/// A JSON value.
///
/// # Example
///
/// ```
/// use qda_bench::json::Json;
///
/// let v = Json::object([
///     ("n", Json::Int(4)),
///     ("flow", Json::from("ESOP")),
///     ("ok", Json::Bool(true)),
/// ]);
/// assert_eq!(v.render(), r#"{"n": 4, "flow": "ESOP", "ok": true}"#);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counts: gates, qubits, T).
    Int(u64),
    /// A pre-formatted decimal number (see [`Json::fixed`]).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl Json {
    /// A number with fixed decimal precision (`Json::fixed(1.5, 3)` →
    /// `1.500`). Fixed formatting keeps output byte-stable across runs of
    /// equal measurements.
    pub fn fixed(value: f64, decimals: usize) -> Self {
        assert!(value.is_finite(), "JSON has no NaN/Inf");
        Json::Num(format!("{value:.decimals$}"))
    }

    /// An object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as a JSON document (single line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::Int(51386).render(), "51386");
        assert_eq!(Json::fixed(0.5, 3).render(), "0.500");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render_in_order() {
        let v = Json::object([
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name", Json::from("table2")),
        ]);
        assert_eq!(v.render(), r#"{"rows": [1, 2], "name": "table2"}"#);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_non_finite() {
        let _ = Json::fixed(f64::NAN, 2);
    }
}
