//! A minimal JSON value layer — just enough to serialize bench results
//! and to decode `qda-server` requests.
//!
//! The container this workspace builds in has no crates.io access, so the
//! structured results layer ships its own writer instead of pulling in
//! `serde_json`. Output is deterministic: object keys render in insertion
//! order, floats with fixed precision via [`Json::fixed`]. The layer is
//! panic-free: non-finite floats render as `null` (JSON has no NaN/Inf)
//! instead of aborting the emitting process, and [`Json::parse`] rejects
//! malformed or hostile input (unbounded nesting) with a typed error
//! rather than recursing into a stack overflow.

use std::fmt::Write as _;

/// Maximum container nesting [`Json::parse`] accepts. Deeper documents
/// are rejected with a [`JsonParseError`] instead of risking unbounded
/// recursion on hostile input.
pub const MAX_PARSE_DEPTH: usize = 64;

/// A JSON value.
///
/// # Example
///
/// ```
/// use qda_bench::json::Json;
///
/// let v = Json::object([
///     ("n", Json::Int(4)),
///     ("flow", Json::from("ESOP")),
///     ("ok", Json::Bool(true)),
/// ]);
/// assert_eq!(v.render(), r#"{"n": 4, "flow": "ESOP", "ok": true}"#);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counts: gates, qubits, T).
    Int(u64),
    /// A pre-formatted decimal number (see [`Json::fixed`]).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl Json {
    /// A number with fixed decimal precision (`Json::fixed(1.5, 3)` →
    /// `1.500`). Fixed formatting keeps output byte-stable across runs of
    /// equal measurements.
    ///
    /// JSON has no NaN/Inf, so non-finite values render as `null` — a
    /// degenerate measurement (e.g. an average over zero samples) must
    /// never abort the emitting process.
    pub fn fixed(value: f64, decimals: usize) -> Self {
        if !value.is_finite() {
            return Json::Null;
        }
        Json::Num(format!("{value:.decimals$}"))
    }

    /// An object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as a JSON document (single line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document (objects, arrays, strings with escapes,
    /// numbers, booleans, `null`).
    ///
    /// Integral non-negative numbers that fit `u64` become [`Json::Int`];
    /// every other number keeps its source spelling as [`Json::Num`]
    /// (read it back with [`Json::as_f64`]). Nesting beyond
    /// [`MAX_PARSE_DEPTH`] is rejected.
    ///
    /// # Example
    ///
    /// ```
    /// use qda_bench::json::Json;
    ///
    /// let v = Json::parse(r#"{"op": "synth", "n": 6}"#).unwrap();
    /// assert_eq!(v.get("op").and_then(Json::as_str), Some("synth"));
    /// assert_eq!(v.get("n").and_then(Json::as_u64), Some(6));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] naming the byte offset of the first
    /// malformed construct (including trailing garbage after the value).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer ([`Json::Int`], or a
    /// [`Json::Num`] with an exact non-negative integral value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) => {
                let f: f64 = n.parse().ok()?;
                // Reject floats whose u64 round-trip loses information.
                (f.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&f)).then_some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as a float ([`Json::Int`] or [`Json::Num`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Error from [`Json::parse`]: the byte offset and nature of the first
/// malformed construct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// 0-based byte offset into the input.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        if integral {
            if let Ok(i) = raw.parse::<u64>() {
                return Ok(Json::Int(i));
            }
        }
        // Everything else (negative, fractional, exponent, > u64) keeps
        // its source spelling; validate it is a real number now so later
        // `as_f64` reads cannot fail.
        let parsed: f64 = raw.parse().map_err(|_| JsonParseError {
            offset: start,
            message: format!("malformed number {raw:?}"),
        })?;
        if !parsed.is_finite() {
            return Err(JsonParseError {
                offset: start,
                message: format!("number {raw:?} overflows f64"),
            });
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8: copy the whole character. The
                    // input came from a `&str`, so the leading byte gives
                    // the sequence length — validate only that window,
                    // never the whole remaining input (O(n²) otherwise).
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start
                        .checked_add(len)
                        .filter(|&e| e <= self.bytes.len())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated unicode escape"));
        };
        // from_str_radix alone would accept a leading '+'; require four
        // literal hex digits.
        let digits = &self.bytes[self.pos..end];
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("malformed unicode escape"));
        }
        let s = std::str::from_utf8(digits).expect("hex digits are ascii");
        let hex = u32::from_str_radix(s, 16).expect("validated hex digits");
        self.pos = end;
        Ok(hex)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::Int(51386).render(), "51386");
        assert_eq!(Json::fixed(0.5, 3).render(), "0.500");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render_in_order() {
        let v = Json::object([
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name", Json::from("table2")),
        ]);
        assert_eq!(v.render(), r#"{"rows": [1, 2], "name": "table2"}"#);
    }

    #[test]
    fn non_finite_renders_as_null() {
        // A NaN/Inf measurement must never abort the emitting process
        // (a long-running server emits telemetry for every request); the
        // value degrades to JSON null instead.
        assert_eq!(Json::fixed(f64::NAN, 2), Json::Null);
        assert_eq!(Json::fixed(f64::INFINITY, 2).render(), "null");
        assert_eq!(Json::fixed(f64::NEG_INFINITY, 6).render(), "null");
        assert_eq!(Json::fixed(1.25, 2).render(), "1.25");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::object([
            ("n", Json::Int(4)),
            ("flow", Json::from("ESOP")),
            ("ok", Json::Bool(true)),
            ("t", Json::fixed(0.125, 3)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_scalars_and_numbers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("1.5e2").unwrap().as_f64(), Some(150.0));
        assert_eq!(Json::parse("2.0").unwrap().as_u64(), Some(2));
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        // .numvars-bomb-sized integers survive as exact u64s.
        assert_eq!(
            Json::parse("999999999").unwrap().as_u64(),
            Some(999_999_999)
        );
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        for bad in [r#""\u+0bc""#, r#""\u00g1""#, r#""\u-123""#] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_long_nonascii_string_is_linear() {
        // Regression: each multi-byte char used to re-validate the whole
        // remaining input, making this O(n²) — slow enough to be a DoS.
        let body = "é".repeat(200_000);
        let v = Json::parse(&format!("\"{body}\"")).unwrap();
        assert_eq!(v.as_str().map(str::len), Some(body.len()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1e999",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let e = Json::parse("[1, 2, !]").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.to_string().contains("byte 7"), "{e}");
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(MAX_PARSE_DEPTH + 8) + &"]".repeat(MAX_PARSE_DEPTH + 8);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let ok = "[".repeat(MAX_PARSE_DEPTH - 1) + &"]".repeat(MAX_PARSE_DEPTH - 1);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"design": {"generator": "INTDIV(6)"}, "ids": [7]}"#).unwrap();
        let gen = v.get("design").and_then(|d| d.get("generator"));
        assert_eq!(gen.and_then(Json::as_str), Some("INTDIV(6)"));
        assert_eq!(
            v.get("ids").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Null.is_null());
    }
}
