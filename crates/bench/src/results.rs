//! Structured bench results: every table binary serializes its rows to a
//! `BENCH_<name>.json` file next to the human-readable table, so the
//! performance trajectory is machine-readable PR-over-PR.
//!
//! File format (one object per file):
//!
//! ```json
//! {
//!   "bench": "table2",
//!   "rows": [
//!     {"design": "INTDIV", "n": 4, "flow": "functional (embedding + TBS)",
//!      "qubits": 7, "t_count": 597, "gates": 42, "runtime_s": 0.012,
//!      "stages": {"parse_elaborate_s": 0.001, "optimize_s": 0.002,
//!                 "synthesis_s": 0.008, "post_opt_s": 0.001,
//!                 "resynth_s": 0.0, "analyze_s": 0.001,
//!                 "verification_s": 0.001},
//!      "lint": {"deny": 0, "warning": 2, "note": 0,
//!               "logical_depth": 30, "t_depth": 12}},
//!     {"design": "INTDIV", "n": 16, "flow": "functional (embedding + TBS)",
//!      "error": "instance too large: ..."}
//!   ]
//! }
//! ```
//!
//! Counts are integers, durations are seconds with microsecond precision,
//! and a failed run carries an `error` string instead of the cost fields.
//!
//! Throughput benches (`verify_bench`) reuse the same row shape with the
//! engine name in `flow` and an extra `states_per_sec` field
//! (gates·states/sec is `states_per_sec × gates`):
//!
//! ```json
//! {"design": "CUCCARO-ADD", "n": 24, "flow": "batch (64-way)",
//!  "qubits": 50, "t_count": 0, "gates": 145, "runtime_s": 0.004,
//!  "states_per_sec": 16384000.0}
//! ```
//!
//! ESOP-minimization benches (`esop_bench`) also reuse the shape, with the
//! engine name in `flow`, the variable count in `qubits`, the minimized
//! cube count in `gates` (each cube becomes one Toffoli gate), the
//! minimized literal count in `t_count`, and an extra `cubes_in` field
//! (seed cubes before minimization):
//!
//! ```json
//! {"design": "MINTERM", "n": 12, "flow": "indexed",
//!  "qubits": 12, "t_count": 18101, "gates": 2048, "runtime_s": 0.0891,
//!  "cubes_in": 3560}
//! ```
//!
//! Circuit-optimizer benches (`opt_bench`) reuse the shape once more:
//! `gates`/`t_count` are the **post-optimization** figures, `gates_in` /
//! `t_count_in` the raw synthesis output, and `rewrites` counts the
//! accepted applications per rule:
//!
//! ```json
//! {"design": "INTDIV-HIER", "n": 6, "flow": "peephole",
//!  "qubits": 56, "t_count": 322, "gates": 306, "runtime_s": 0.004,
//!  "gates_in": 380, "t_count_in": 322,
//!  "rewrites": {"cancel": 30, "merge_polarity": 2, "merge_subset": 1,
//!               "not_absorb": 4, "const_dead": 0, "const_drop": 0}}
//! ```
//!
//! Static-analysis benches (`circuit_lint`) reuse the shape with the
//! analyzed workload in `flow`, the circuit size in `qubits`/`gates`/
//! `t_count`, and a `lint` object carrying the per-severity diagnostic
//! counts and ASAP depth metrics:
//!
//! ```json
//! {"design": "INTDIV-HIER", "n": 6, "flow": "hierarchical (XMG, Bennett)",
//!  "qubits": 56, "t_count": 322, "gates": 290, "runtime_s": 0.002,
//!  "lint": {"deny": 0, "warning": 0, "note": 0,
//!           "logical_depth": 118, "t_depth": 44}}
//! ```
//!
//! Windowed-resynthesis benches (`resynth_bench`) follow the same
//! before/after convention: `gates`/`t_count` are the **post-resynthesis**
//! figures, `gates_in` / `t_count_in` the input (already peephole-
//! optimized) circuit, and `windows` accounts for every window the pass
//! looked at:
//!
//! ```json
//! {"design": "INTDIV-HIER", "n": 6, "flow": "resynth (TBS/ESOP/linear)",
//!  "qubits": 56, "t_count": 322, "gates": 290, "runtime_s": 0.110,
//!  "gates_in": 306, "t_count_in": 322,
//!  "windows": {"attempted": 84, "accepted": 9, "rejected": 75,
//!              "unsound": 0, "passes": 2}}
//! ```
//!
//! Portfolio rows (also `resynth_bench`) reuse the plain cost shape with
//! the racing configuration name in `flow` (e.g.
//! `"hierarchical (Bennett) [+opt+resynth]"`).

use crate::json::Json;
use qda_core::flow::{FlowOutcome, StageTimings};
use std::path::PathBuf;

/// One result row: a (design, flow) data point or its failure.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Design family, e.g. `INTDIV`.
    pub design: String,
    /// Bitwidth `n`.
    pub n: usize,
    /// Flow (or configuration) label.
    pub flow: String,
    /// Cost + timing payload, or the failure message.
    pub data: Result<BenchData, String>,
}

/// The successful-run payload of a [`BenchRow`].
#[derive(Clone, Copy, Debug)]
pub struct BenchData {
    /// Circuit lines.
    pub qubits: usize,
    /// T-count.
    pub t_count: u64,
    /// Gate count.
    pub gates: usize,
    /// Total runtime in seconds.
    pub runtime_s: f64,
    /// Per-stage breakdown, when the producer tracks stages.
    pub stages: Option<StageTimings>,
    /// Simulation throughput in states/second, for throughput benches
    /// (`verify_bench`); gates·states/sec is `states_per_sec × gates`.
    pub states_per_sec: Option<f64>,
    /// Seed cube count before minimization, for ESOP-minimization benches
    /// (`esop_bench`); those rows reuse `qubits` for the variable count,
    /// `gates` for the minimized cube count (one Toffoli per cube) and
    /// `t_count` for the minimized literal count.
    pub cubes_in: Option<u64>,
    /// Pre-optimization cost and per-rule rewrite counts, for circuit-
    /// optimizer benches (`opt_bench`); those rows carry the optimized
    /// cost in `gates`/`t_count`.
    pub opt: Option<OptRowData>,
    /// Pre-resynthesis cost and window accounting, for windowed-
    /// resynthesis benches (`resynth_bench`); those rows carry the
    /// resynthesized cost in `gates`/`t_count`.
    pub resynth: Option<ResynthRowData>,
    /// Static-analysis summary: diagnostic counts per severity plus the
    /// ASAP depth metrics. Attached by [`BenchRow::from_outcome`] when
    /// the flow's analyze stage ran, and by [`BenchRow::from_lint`] for
    /// `circuit_lint` rows.
    pub lint: Option<LintRowData>,
}

/// The before-figures and rewrite counters of an `opt_bench` row.
#[derive(Clone, Copy, Debug)]
pub struct OptRowData {
    /// Gate count of the raw synthesis output.
    pub gates_in: usize,
    /// T-count of the raw synthesis output.
    pub t_count_in: u64,
    /// Accepted rewrites per rule.
    pub stats: qda_rev::opt::OptStats,
}

/// The static-analysis summary of a row: per-severity diagnostic counts
/// and ASAP depth metrics, as reported by `qda_analyze`.
#[derive(Clone, Copy, Debug)]
pub struct LintRowData {
    /// Deny-level diagnostics (always 0 for flow rows — flows abort on
    /// denials before producing an outcome).
    pub deny: usize,
    /// Warning-level diagnostics.
    pub warning: usize,
    /// Note-level diagnostics.
    pub note: usize,
    /// ASAP logical depth of the analyzed circuit.
    pub logical_depth: usize,
    /// ASAP T-depth (layers containing a T-stage gate).
    pub t_depth: usize,
}

impl LintRowData {
    /// Summarizes an analysis report.
    pub fn from_report(report: &qda_analyze::Report) -> Self {
        use qda_analyze::Severity;
        Self {
            deny: report.count(Severity::Deny),
            warning: report.count(Severity::Warning),
            note: report.count(Severity::Note),
            logical_depth: report.metrics.depth.logical_depth,
            t_depth: report.metrics.depth.t_depth,
        }
    }
}

/// The before-figures and window accounting of a `resynth_bench` row.
#[derive(Clone, Copy, Debug)]
pub struct ResynthRowData {
    /// Gate count of the input circuit.
    pub gates_in: usize,
    /// T-count of the input circuit.
    pub t_count_in: u64,
    /// Window accounting of the resynthesis pass.
    pub stats: qda_rev::resynth::ResynthStats,
}

impl BenchRow {
    /// A row from a flow outcome (carries the full stage breakdown).
    pub fn from_outcome(design: &str, n: usize, outcome: &FlowOutcome) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: outcome.flow_name.clone(),
            data: Ok(BenchData {
                qubits: outcome.cost.qubits,
                t_count: outcome.cost.t_count,
                gates: outcome.cost.gates,
                runtime_s: outcome.runtime.as_secs_f64(),
                stages: Some(outcome.stages),
                states_per_sec: None,
                cubes_in: None,
                opt: None,
                resynth: None,
                lint: outcome.analysis.as_ref().map(LintRowData::from_report),
            }),
        }
    }

    /// A row for a cost measured outside the flow engine (no timings),
    /// e.g. the Table I manual baselines.
    pub fn from_cost(
        design: &str,
        n: usize,
        flow: &str,
        cost: &qda_rev::cost::CircuitCost,
    ) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: flow.to_string(),
            data: Ok(BenchData {
                qubits: cost.qubits,
                t_count: cost.t_count,
                gates: cost.gates,
                runtime_s: 0.0,
                stages: None,
                states_per_sec: None,
                cubes_in: None,
                opt: None,
                resynth: None,
                lint: None,
            }),
        }
    }

    /// A row for a simulation-throughput measurement (`verify_bench`):
    /// `states` inputs replayed through a `gates`-gate circuit on
    /// `qubits` lines in `runtime_s` seconds by `engine`.
    pub fn from_throughput(
        design: &str,
        n: usize,
        engine: &str,
        qubits: usize,
        gates: usize,
        states: u64,
        runtime_s: f64,
    ) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: engine.to_string(),
            data: Ok(BenchData {
                qubits,
                t_count: 0,
                gates,
                runtime_s,
                stages: None,
                states_per_sec: Some(states as f64 / runtime_s.max(f64::EPSILON)),
                cubes_in: None,
                opt: None,
                resynth: None,
                lint: None,
            }),
        }
    }

    /// A row for an ESOP-minimization measurement (`esop_bench`): `engine`
    /// minimized a `num_vars`-variable ESOP from `cubes_in` seed cubes
    /// down to `cubes_out` cubes / `literals_out` literals in `runtime_s`
    /// seconds.
    #[allow(clippy::too_many_arguments)]
    pub fn from_minimization(
        design: &str,
        n: usize,
        engine: &str,
        num_vars: usize,
        cubes_in: usize,
        cubes_out: usize,
        literals_out: usize,
        runtime_s: f64,
    ) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: engine.to_string(),
            data: Ok(BenchData {
                qubits: num_vars,
                t_count: literals_out as u64,
                gates: cubes_out,
                runtime_s,
                stages: None,
                states_per_sec: None,
                cubes_in: Some(cubes_in as u64),
                opt: None,
                resynth: None,
                lint: None,
            }),
        }
    }

    /// A row for a circuit-optimization measurement (`opt_bench`): the
    /// peephole pass took a `qubits`-line circuit from `before` to
    /// `after` in `runtime_s` seconds, applying the rewrites in `stats`.
    pub fn from_opt(
        design: &str,
        n: usize,
        before: &qda_rev::cost::CircuitCost,
        after: &qda_rev::cost::CircuitCost,
        stats: qda_rev::opt::OptStats,
        runtime_s: f64,
    ) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: "peephole".to_string(),
            data: Ok(BenchData {
                qubits: after.qubits,
                t_count: after.t_count,
                gates: after.gates,
                runtime_s,
                stages: None,
                states_per_sec: None,
                cubes_in: None,
                opt: Some(OptRowData {
                    gates_in: before.gates,
                    t_count_in: before.t_count,
                    stats,
                }),
                resynth: None,
                lint: None,
            }),
        }
    }

    /// A row for a windowed-resynthesis measurement (`resynth_bench`):
    /// the resynthesis pass took a `qubits`-line circuit from `before`
    /// to `after` in `runtime_s` seconds, with `stats` accounting for
    /// every window it attempted.
    #[allow(clippy::too_many_arguments)]
    pub fn from_resynth(
        design: &str,
        n: usize,
        flow: &str,
        before: &qda_rev::cost::CircuitCost,
        after: &qda_rev::cost::CircuitCost,
        stats: qda_rev::resynth::ResynthStats,
        runtime_s: f64,
    ) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: flow.to_string(),
            data: Ok(BenchData {
                qubits: after.qubits,
                t_count: after.t_count,
                gates: after.gates,
                runtime_s,
                stages: None,
                states_per_sec: None,
                cubes_in: None,
                opt: None,
                resynth: Some(ResynthRowData {
                    gates_in: before.gates,
                    t_count_in: before.t_count,
                    stats,
                }),
                lint: None,
            }),
        }
    }

    /// A row for a static-analysis measurement (`circuit_lint`): the
    /// analyzer inspected the circuit summarized by `report.metrics` in
    /// `runtime_s` seconds and produced the diagnostics counted in the
    /// `lint` object.
    pub fn from_lint(
        design: &str,
        n: usize,
        flow: &str,
        report: &qda_analyze::Report,
        runtime_s: f64,
    ) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: flow.to_string(),
            data: Ok(BenchData {
                qubits: report.metrics.num_lines,
                t_count: report.metrics.t_count,
                gates: report.metrics.num_gates,
                runtime_s,
                stages: None,
                states_per_sec: None,
                cubes_in: None,
                opt: None,
                resynth: None,
                lint: Some(LintRowData::from_report(report)),
            }),
        }
    }

    /// A row recording a failed run.
    pub fn failure(design: &str, n: usize, flow: &str, error: &impl std::fmt::Display) -> Self {
        Self {
            design: design.to_string(),
            n,
            flow: flow.to_string(),
            data: Err(error.to_string()),
        }
    }

    /// The row as a [`Json`] object — the same shape `BENCH_*.json` rows
    /// use, reused verbatim as the `result` payload of `qda-server`
    /// responses so callers get one telemetry schema everywhere.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("design".to_string(), Json::from(self.design.as_str())),
            ("n".to_string(), Json::Int(self.n as u64)),
            ("flow".to_string(), Json::from(self.flow.as_str())),
        ];
        match &self.data {
            Ok(d) => {
                pairs.push(("qubits".to_string(), Json::Int(d.qubits as u64)));
                pairs.push(("t_count".to_string(), Json::Int(d.t_count)));
                pairs.push(("gates".to_string(), Json::Int(d.gates as u64)));
                pairs.push(("runtime_s".to_string(), Json::fixed(d.runtime_s, 6)));
                if let Some(stages) = &d.stages {
                    let secs = |d: std::time::Duration| Json::fixed(d.as_secs_f64(), 6);
                    pairs.push((
                        "stages".to_string(),
                        Json::object([
                            ("parse_elaborate_s", secs(stages.parse_elaborate)),
                            ("optimize_s", secs(stages.optimize)),
                            ("synthesis_s", secs(stages.synthesis)),
                            ("post_opt_s", secs(stages.post_opt)),
                            ("resynth_s", secs(stages.resynth)),
                            ("analyze_s", secs(stages.analyze)),
                            ("verification_s", secs(stages.verification)),
                        ]),
                    ));
                }
                if let Some(sps) = d.states_per_sec {
                    pairs.push(("states_per_sec".to_string(), Json::fixed(sps, 1)));
                }
                if let Some(cubes) = d.cubes_in {
                    pairs.push(("cubes_in".to_string(), Json::Int(cubes)));
                }
                if let Some(opt) = &d.opt {
                    pairs.push(("gates_in".to_string(), Json::Int(opt.gates_in as u64)));
                    pairs.push(("t_count_in".to_string(), Json::Int(opt.t_count_in)));
                    pairs.push((
                        "rewrites".to_string(),
                        Json::object([
                            ("cancel", Json::Int(opt.stats.cancellations)),
                            ("merge_polarity", Json::Int(opt.stats.polarity_merges)),
                            ("merge_subset", Json::Int(opt.stats.subset_merges)),
                            ("not_absorb", Json::Int(opt.stats.not_absorptions)),
                            ("const_dead", Json::Int(opt.stats.const_dead)),
                            ("const_drop", Json::Int(opt.stats.const_drops)),
                        ]),
                    ));
                }
                if let Some(resynth) = &d.resynth {
                    pairs.push(("gates_in".to_string(), Json::Int(resynth.gates_in as u64)));
                    pairs.push(("t_count_in".to_string(), Json::Int(resynth.t_count_in)));
                    pairs.push((
                        "windows".to_string(),
                        Json::object([
                            ("attempted", Json::Int(resynth.stats.windows_attempted)),
                            ("accepted", Json::Int(resynth.stats.windows_accepted)),
                            ("rejected", Json::Int(resynth.stats.windows_rejected)),
                            ("unsound", Json::Int(resynth.stats.candidates_unsound)),
                            ("passes", Json::Int(resynth.stats.passes)),
                        ]),
                    ));
                }
                if let Some(lint) = &d.lint {
                    pairs.push((
                        "lint".to_string(),
                        Json::object([
                            ("deny", Json::Int(lint.deny as u64)),
                            ("warning", Json::Int(lint.warning as u64)),
                            ("note", Json::Int(lint.note as u64)),
                            ("logical_depth", Json::Int(lint.logical_depth as u64)),
                            ("t_depth", Json::Int(lint.t_depth as u64)),
                        ]),
                    ));
                }
            }
            Err(message) => pairs.push(("error".to_string(), Json::from(message.as_str()))),
        }
        Json::Obj(pairs)
    }
}

/// Accumulates [`BenchRow`]s for one bench binary and writes
/// `BENCH_<name>.json`.
///
/// # Example
///
/// ```no_run
/// use qda_bench::results::{BenchResults, BenchRow};
///
/// let mut results = BenchResults::new("table2");
/// # let outcome: qda_core::flow::FlowOutcome = unimplemented!();
/// results.push(BenchRow::from_outcome("INTDIV", 4, &outcome));
/// let path = results.write().expect("writable working directory");
/// assert_eq!(path.file_name().unwrap(), "BENCH_table2.json");
/// ```
#[derive(Clone, Debug)]
pub struct BenchResults {
    name: String,
    rows: Vec<BenchRow>,
}

impl BenchResults {
    /// An empty result set for the bench binary `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The serialized document.
    pub fn to_json(&self) -> String {
        let mut out = Json::object([
            ("bench", Json::from(self.name.as_str())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ])
        .render();
        out.push('\n');
        out
    }

    /// Writes `BENCH_<name>.json` into the current directory and returns
    /// its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rows_carry_the_error() {
        let mut r = BenchResults::new("t");
        r.push(BenchRow::failure("INTDIV", 16, "functional", &"too big"));
        let json = r.to_json();
        assert!(json.contains(r#""error": "too big""#));
        assert!(!json.contains("qubits"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn cost_rows_have_counts_but_no_stages() {
        let mut c = qda_rev::circuit::Circuit::new(3);
        c.toffoli(0, 1, 2);
        let mut r = BenchResults::new("table1");
        r.push(BenchRow::from_cost("RESDIV", 3, "manual", &c.cost()));
        let json = r.to_json();
        assert!(json.contains(r#""bench": "table1""#));
        assert!(json.contains(r#""qubits": 3"#));
        assert!(json.contains(r#""gates": 1"#));
        assert!(!json.contains("stages"));
    }

    #[test]
    fn throughput_rows_carry_states_per_sec() {
        let mut r = BenchResults::new("verify");
        r.push(BenchRow::from_throughput(
            "CUCCARO-ADD",
            24,
            "batch (64-way)",
            50,
            145,
            1 << 20,
            0.5,
        ));
        let json = r.to_json();
        assert!(json.contains(r#""bench": "verify""#));
        assert!(json.contains(r#""states_per_sec": 2097152.0"#));
        assert!(json.contains(r#""gates": 145"#));
        assert!(!json.contains("stages"));
    }

    #[test]
    fn minimization_rows_carry_cubes_in() {
        let mut r = BenchResults::new("esop");
        r.push(BenchRow::from_minimization(
            "MINTERM", 12, "indexed", 12, 3560, 2048, 18101, 0.0891,
        ));
        let json = r.to_json();
        assert!(json.contains(r#""cubes_in": 3560"#));
        assert!(json.contains(r#""gates": 2048"#));
        assert!(json.contains(r#""t_count": 18101"#));
        assert!(json.contains(r#""flow": "indexed""#));
        assert!(!json.contains("states_per_sec"));
    }

    #[test]
    fn opt_rows_carry_before_figures_and_rewrite_counts() {
        let mut before = qda_rev::circuit::Circuit::new(3);
        before.toffoli(0, 1, 2);
        before.toffoli(0, 1, 2);
        before.cnot(0, 2);
        let out = qda_rev::opt::optimize(&before, &qda_rev::opt::OptOptions::default());
        let mut r = BenchResults::new("opt");
        r.push(BenchRow::from_opt(
            "PAIR",
            3,
            &before.cost(),
            &out.circuit.cost(),
            out.stats,
            0.001,
        ));
        let json = r.to_json();
        assert!(json.contains(r#""gates_in": 3"#));
        assert!(json.contains(r#""t_count_in": 14"#));
        assert!(json.contains(r#""gates": 1"#));
        assert!(json.contains(r#""cancel": 1"#));
        assert!(json.contains(r#""merge_polarity": 0"#));
        assert!(json.contains(r#""flow": "peephole""#));
        assert!(!json.contains("cubes_in"));
    }

    #[test]
    fn outcome_rows_have_a_stage_breakdown() {
        use qda_core::design::Design;
        use qda_core::flow::{EsopFlow, Flow};
        let outcome = EsopFlow::with_factoring(0).run(&Design::intdiv(4)).unwrap();
        let row = BenchRow::from_outcome("INTDIV", 4, &outcome);
        let json = BenchResults {
            name: "x".into(),
            rows: vec![row],
        }
        .to_json();
        for key in [
            "parse_elaborate_s",
            "optimize_s",
            "synthesis_s",
            "post_opt_s",
            "resynth_s",
            "analyze_s",
            "verification_s",
            "t_count",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The flow ran with analysis on, so the lint summary rides along
        // and is deny-clean.
        assert!(json.contains(r#""lint":"#), "missing lint in {json}");
        assert!(json.contains(r#""deny": 0"#), "missing deny in {json}");
        assert!(json.contains(r#""t_depth":"#), "missing t_depth in {json}");
    }

    #[test]
    fn lint_rows_carry_the_diagnostic_summary() {
        use qda_analyze::CircuitInterface;
        let mut c = qda_rev::circuit::Circuit::new(3);
        c.toffoli(0, 1, 2);
        let iface = CircuitInterface::functional(3);
        let report = qda_analyze::analyze(&c, &iface);
        let mut r = BenchResults::new("analyze");
        r.push(BenchRow::from_lint("TOFFOLI", 3, "manual", &report, 0.001));
        let json = r.to_json();
        assert!(json.contains(r#""bench": "analyze""#));
        assert!(json.contains(r#""qubits": 3"#));
        assert!(json.contains(r#""gates": 1"#));
        assert!(json.contains(r#""t_count": 7"#));
        assert!(json.contains(r#""lint":"#));
        assert!(json.contains(r#""logical_depth": 1"#));
        assert!(json.contains(r#""t_depth": 1"#));
        assert!(!json.contains("stages"));
    }

    #[test]
    fn resynth_rows_carry_before_figures_and_window_accounting() {
        let mut before = qda_rev::circuit::Circuit::new(3);
        before.cnot(0, 1);
        before.cnot(0, 1);
        before.not(2);
        let out = qda_revsynth::resynth::resynthesize_circuit(
            &before,
            &qda_rev::resynth::ResynthOptions::default(),
        );
        let mut r = BenchResults::new("resynth");
        r.push(BenchRow::from_resynth(
            "PAIR",
            3,
            "resynth (TBS/ESOP/linear)",
            &before.cost(),
            &out.circuit.cost(),
            out.stats,
            0.001,
        ));
        let json = r.to_json();
        assert!(json.contains(r#""gates_in": 3"#));
        assert!(json.contains(r#""attempted":"#));
        assert!(json.contains(r#""unsound": 0"#));
        assert!(json.contains(r#""passes":"#));
        assert!(json.contains(r#""flow": "resynth (TBS/ESOP/linear)""#));
        assert!(!json.contains("rewrites"));
    }
}
