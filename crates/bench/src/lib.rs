//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Binaries (one per artifact):
//!
//! * `table1` — baseline RESDIV/QNEWTON costs (paper Table I),
//! * `table2` — functional synthesis results (Table II),
//! * `table3` — REVS ESOP synthesis, `p ∈ {0, 1}` (Table III),
//! * `table4` — hierarchical synthesis (Table IV),
//! * `figure1` — the design-flow graph (Fig. 1) plus a live DSE demo,
//! * `ablation` — the design-choice ablations DESIGN.md calls out,
//! * `verify_bench` — scalar replay vs bit-parallel batch simulation
//!   throughput on the reversible arithmetic blocks.
//!
//! All binaries accept `--full` to extend the sweep toward the paper's
//! largest instances (minutes to hours, like the original experiments) and
//! default to a laptop-scale subset that still exhibits every reported
//! trend; `--quick` shrinks the sweep to the smallest width (CI smoke).
//!
//! Besides the printed table, every binary serializes its rows — gates,
//! T-count, qubits, runtime, per-stage timings — to `BENCH_<name>.json`
//! in the working directory (see [`results`]), making the perf trajectory
//! measurable run-over-run.
//!
//! # Example
//!
//! The [`runner`] module holds the shared CLI plumbing; runtimes are
//! printed in the paper's unit (seconds, two decimals):
//!
//! ```
//! use std::time::Duration;
//!
//! assert_eq!(qda_bench::runner::secs(Duration::from_millis(1230)), "1.23");
//! ```

pub mod json;
pub mod results;
pub mod runner;
