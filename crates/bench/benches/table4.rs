//! Criterion bench for the Table IV hierarchical flow (AIG → XMG → REVS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qda_core::design::Design;
use qda_core::flow::{Flow, HierarchicalFlow};

fn bench_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_hierarchical");
    group.sample_size(10);
    let flow = HierarchicalFlow::default();
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("intdiv", n), &n, |b, &n| {
            b.iter(|| flow.run(&Design::intdiv(n)).expect("flow"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchical);
criterion_main!(benches);
