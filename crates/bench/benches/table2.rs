//! Criterion bench for the Table II functional flow (embedding + TBS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qda_core::design::Design;
use qda_core::flow::{Flow, FunctionalFlow};

fn bench_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_functional");
    group.sample_size(10);
    let flow = FunctionalFlow::default();
    for n in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("intdiv", n), &n, |b, &n| {
            b.iter(|| flow.run(&Design::intdiv(n)).expect("flow"));
        });
        group.bench_with_input(BenchmarkId::new("newton", n), &n, |b, &n| {
            b.iter(|| flow.run(&Design::newton(n)).expect("flow"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_functional);
criterion_main!(benches);
