//! Criterion bench for the Table III ESOP flow (REVS p = 0 / p = 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qda_core::design::Design;
use qda_core::flow::{EsopFlow, Flow};

fn bench_esop(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_esop");
    group.sample_size(10);
    for p in [0usize, 1] {
        let flow = EsopFlow::with_factoring(p);
        for n in [5usize, 6] {
            group.bench_with_input(BenchmarkId::new(format!("intdiv_p{p}"), n), &n, |b, &n| {
                b.iter(|| flow.run(&Design::intdiv(n)).expect("flow"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_esop);
criterion_main!(benches);
