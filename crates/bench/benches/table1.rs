//! Criterion bench for the Table I baselines: construction + costing of
//! the RESDIV and QNEWTON reciprocal circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qda_arith::{qnewton_circuit, resdiv::resdiv_reciprocal};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_baselines");
    group.sample_size(10);
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("resdiv", n), &n, |b, &n| {
            b.iter(|| resdiv_reciprocal(n).circuit.cost());
        });
        group.bench_with_input(BenchmarkId::new("qnewton", n), &n, |b, &n| {
            b.iter(|| qnewton_circuit(n).circuit.cost());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
