//! Round-trip integration tests: Verilog source → parse → elaborate →
//! AIG, then exhaustive simulation against truth-table golden models.

use qda_logic::aig::Aig;
use qda_logic::tt::TruthTable;
use qda_verilog::{elaborate, parse_module};

fn build(src: &str) -> Aig {
    let module = parse_module(src).expect("parse");
    elaborate(&module).expect("elaborate")
}

/// Simulates output bit `bit` of `aig` into an explicit truth table.
fn output_tt(aig: &Aig, bit: usize) -> TruthTable {
    TruthTable::from_fn(aig.num_pis(), |x| (aig.eval(x) >> bit) & 1 == 1)
}

#[test]
fn half_adder_matches_truth_tables() {
    let aig = build(
        "module half_adder(a, b, s, c);
           input a; input b;
           output s; output c;
           assign s = a ^ b;
           assign c = a & b;
         endmodule",
    );
    assert_eq!(aig.num_pis(), 2);
    let sum = TruthTable::from_fn(2, |x| (x ^ (x >> 1)) & 1 == 1);
    let carry = TruthTable::from_fn(2, |x| x & (x >> 1) & 1 == 1);
    assert_eq!(output_tt(&aig, 0), sum);
    assert_eq!(output_tt(&aig, 1), carry);
}

#[test]
fn mixed_operators_match_golden_model() {
    // One output bit per operator family: arithmetic, comparison,
    // reduction, mux, and part-select/replication plumbing.
    let aig = build(
        "module ops(a, b, y);
           input [2:0] a, b;
           output [5:0] y;
           wire [2:0] sum;
           wire y0, y1, y2, y3, y4, y5;
           assign sum = a + b;
           assign y0 = sum[2];
           assign y1 = a < b;
           assign y2 = ^a;
           assign y3 = a[1] ? b[0] : b[2];
           assign y4 = &(a | b);
           assign y5 = {2{a[0]}} == b[1:0];
           assign y = {y5, y4, y3, y2, y1, y0};
         endmodule",
    );
    assert_eq!(aig.num_pis(), 6);
    let golden = |x: u64| -> u64 {
        let (a, b) = (x & 7, (x >> 3) & 7);
        let mut y = 0u64;
        y |= ((a + b) >> 2) & 1;
        y |= u64::from(a < b) << 1;
        y |= ((a ^ (a >> 1) ^ (a >> 2)) & 1) << 2;
        y |= (if (a >> 1) & 1 == 1 { b } else { b >> 2 } & 1) << 3;
        y |= u64::from(a | b == 7) << 4;
        let rep = if a & 1 == 1 { 3 } else { 0 };
        y |= u64::from(rep == (b & 3)) << 5;
        y
    };
    for bit in 0..6 {
        let expected = TruthTable::from_fn(6, |x| (golden(x) >> bit) & 1 == 1);
        assert_eq!(output_tt(&aig, bit), expected, "output bit {bit}");
    }
}

#[test]
fn reciprocal_divider_matches_truth_tables() {
    // The INTDIV-shaped core: y = low n bits of 2^n / x, the function the
    // paper's flows synthesize. Hardware division saturates at x = 0.
    let aig = build(
        "module recip4(x, y);
           input [3:0] x;
           output [3:0] y;
           assign y = 5'd16 / {1'b0, x};
         endmodule",
    );
    assert_eq!(aig.num_pis(), 4);
    for bit in 0..4 {
        let expected = TruthTable::from_fn(4, |x| {
            let q = 16u64.checked_div(x).unwrap_or(15) & 15;
            (q >> bit) & 1 == 1
        });
        assert_eq!(output_tt(&aig, bit), expected, "output bit {bit}");
    }
}

#[test]
fn shifts_and_modulo_round_trip() {
    let aig = build(
        "module sm(a, s, y, m);
           input [3:0] a;
           input [1:0] s;
           output [3:0] y;
           output [3:0] m;
           assign y = a << s;
           assign m = a % 4'd5;
         endmodule",
    );
    assert_eq!(aig.num_pis(), 6);
    for x in 0..64u64 {
        let (a, s) = (x & 15, (x >> 4) & 3);
        let out = aig.eval(x);
        assert_eq!(out & 15, (a << s) & 15, "a={a} s={s}");
        assert_eq!((out >> 4) & 15, a % 5, "a={a}");
    }
}
