//! Tokenizer for the Verilog subset.

use crate::VerilogError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Keyword or signal name.
    Ident(String),
    /// A number literal, possibly sized: `8'b1010`, `9'd256`, `4'hF`, `42`.
    ///
    /// `width` is `None` for unsized decimals. `bits` is LSB-first.
    Number {
        /// Declared width (bits), if sized.
        width: Option<usize>,
        /// Bit values, least significant first.
        bits: Vec<bool>,
    },
    /// Single punctuation/operator token.
    Punct(&'static str),
}

const PUNCTS: &[&str] = &[
    "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "(", ")", "[", "]", "{", "}", ",", ";", ":",
    "?", "=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
];

fn u64_to_bits(mut v: u64, min_len: usize) -> Vec<bool> {
    let mut bits = Vec::new();
    while v > 0 {
        bits.push(v & 1 == 1);
        v >>= 1;
    }
    while bits.len() < min_len.max(1) {
        bits.push(false);
    }
    bits
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`VerilogError::Lex`] on malformed literals or unknown
/// characters. Line (`//`) and block (`/* */`) comments are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, VerilogError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if bytes[i..].starts_with(b"//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"/*") {
            let end = src[i + 2..].find("*/").ok_or_else(|| VerilogError::Lex {
                offset: i,
                message: "unterminated block comment".into(),
            })?;
            i += 2 + end + 2;
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token::Ident(src[start..i].to_string()));
            continue;
        }
        // Number (possibly sized).
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let first: u64 = src[start..i].parse().map_err(|_| VerilogError::Lex {
                offset: start,
                message: "decimal literal too large".into(),
            })?;
            if i < bytes.len() && bytes[i] == b'\'' {
                // Sized literal: width 'base digits.
                let width = first as usize;
                if width == 0 {
                    return Err(VerilogError::Lex {
                        offset: start,
                        message: "zero-width literal".into(),
                    });
                }
                i += 1;
                if i >= bytes.len() {
                    return Err(VerilogError::Lex {
                        offset: i,
                        message: "missing literal base".into(),
                    });
                }
                let base = (bytes[i] as char).to_ascii_lowercase();
                i += 1;
                let dstart = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let digits: String = src[dstart..i].chars().filter(|&c| c != '_').collect();
                if digits.is_empty() {
                    return Err(VerilogError::Lex {
                        offset: dstart,
                        message: "empty literal digits".into(),
                    });
                }
                let mut bits: Vec<bool> = Vec::new();
                match base {
                    'b' => {
                        for ch in digits.chars().rev() {
                            match ch {
                                '0' => bits.push(false),
                                '1' => bits.push(true),
                                _ => {
                                    return Err(VerilogError::Lex {
                                        offset: dstart,
                                        message: format!("invalid binary digit {ch:?}"),
                                    })
                                }
                            }
                        }
                    }
                    'h' => {
                        for ch in digits.chars().rev() {
                            let v = ch.to_digit(16).ok_or_else(|| VerilogError::Lex {
                                offset: dstart,
                                message: format!("invalid hex digit {ch:?}"),
                            })?;
                            for k in 0..4 {
                                bits.push((v >> k) & 1 == 1);
                            }
                        }
                    }
                    'd' => {
                        let v: u64 = digits.parse().map_err(|_| VerilogError::Lex {
                            offset: dstart,
                            message: "decimal literal too large (use binary for >64 bits)".into(),
                        })?;
                        bits = u64_to_bits(v, width);
                    }
                    _ => {
                        return Err(VerilogError::Lex {
                            offset: i,
                            message: format!("unsupported literal base {base:?}"),
                        })
                    }
                }
                // Truncate or zero-extend to the declared width.
                bits.resize(width, false);
                out.push(Token::Number {
                    width: Some(width),
                    bits,
                });
            } else {
                out.push(Token::Number {
                    width: None,
                    bits: u64_to_bits(first, 1),
                });
            }
            continue;
        }
        // Punctuation (longest match first).
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(VerilogError::Lex {
            offset: i,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let toks = tokenize("assign y = a & ~b;").unwrap();
        assert_eq!(toks[0], Token::Ident("assign".into()));
        assert_eq!(toks[2], Token::Punct("="));
        assert_eq!(toks[4], Token::Punct("&"));
        assert_eq!(toks[5], Token::Punct("~"));
        assert_eq!(toks.last(), Some(&Token::Punct(";")));
    }

    #[test]
    fn sized_literals() {
        let toks = tokenize("4'b1010 9'd256 8'hA5").unwrap();
        match &toks[0] {
            Token::Number { width, bits } => {
                assert_eq!(*width, Some(4));
                assert_eq!(bits, &[false, true, false, true]);
            }
            t => panic!("unexpected {t:?}"),
        }
        match &toks[1] {
            Token::Number { width, bits } => {
                assert_eq!(*width, Some(9));
                let v: u64 = bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(v, 256);
            }
            t => panic!("unexpected {t:?}"),
        }
        match &toks[2] {
            Token::Number { width, bits } => {
                assert_eq!(*width, Some(8));
                let v: u64 = bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(v, 0xA5);
            }
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn wide_binary_literal() {
        let src = format!("129'b1{}", "0".repeat(128));
        let toks = tokenize(&src).unwrap();
        match &toks[0] {
            Token::Number { width, bits } => {
                assert_eq!(*width, Some(129));
                assert!(bits[128]);
                assert!(bits[..128].iter().all(|&b| !b));
            }
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("a // line\n /* block\nspan */ b").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn two_char_operators() {
        let toks = tokenize("a << 2 >> b <= c == d").unwrap();
        assert!(toks.contains(&Token::Punct("<<")));
        assert!(toks.contains(&Token::Punct(">>")));
        assert!(toks.contains(&Token::Punct("<=")));
        assert!(toks.contains(&Token::Punct("==")));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("3'q10").is_err());
        assert!(tokenize("4'b102").is_err());
    }
}
