//! Elaboration: parsed [`Module`] → bit-blasted [`Aig`].
//!
//! Signals become `Vec<Lit>` words (LSB first). Inputs are mapped onto AIG
//! primary inputs in port order, LSB first; outputs onto primary outputs
//! the same way. Assignments are evaluated in dependency order (wires may
//! be declared and assigned in any textual order, but combinational cycles
//! are rejected).

use crate::ast::{Assign, BinOp, Expr, Module, SignalKind, UnOp};
use crate::words;
use crate::VerilogError;
use qda_logic::aig::{Aig, Lit};
use std::collections::{HashMap, HashSet};

/// Elaborates a module into an AIG.
///
/// # Errors
///
/// Returns [`VerilogError::Elaborate`] on undeclared/unassigned signals,
/// multiple drivers, combinational cycles, out-of-range selects, or a
/// division that cannot be bit-blasted.
pub fn elaborate(module: &Module) -> Result<Aig, VerilogError> {
    // Map input bits onto PIs in port order.
    let inputs = module.inputs();
    let outputs = module.outputs();
    let num_pis: usize = inputs.iter().map(|s| s.width()).sum();
    let mut aig = Aig::new(num_pis);
    let mut env: HashMap<String, Vec<Lit>> = HashMap::new();
    let mut next_pi = 0;
    for sig in &inputs {
        let word: Vec<Lit> = (0..sig.width()).map(|k| aig.pi(next_pi + k)).collect();
        next_pi += sig.width();
        env.insert(sig.name.clone(), word);
    }

    // One driver per signal.
    let mut by_target: HashMap<&str, &Assign> = HashMap::new();
    for a in &module.assigns {
        let sig = module
            .signal(&a.target)
            .ok_or_else(|| VerilogError::elaborate(format!("assign to undeclared {}", a.target)))?;
        if sig.kind == SignalKind::Input {
            return Err(VerilogError::elaborate(format!(
                "assign to input {}",
                a.target
            )));
        }
        if by_target.insert(&a.target, a).is_some() {
            return Err(VerilogError::elaborate(format!(
                "multiple drivers for {}",
                a.target
            )));
        }
    }

    // Evaluate assignments on demand with cycle detection.
    fn eval_signal<'m>(
        name: &str,
        module: &'m Module,
        by_target: &HashMap<&str, &'m Assign>,
        aig: &mut Aig,
        env: &mut HashMap<String, Vec<Lit>>,
        visiting: &mut HashSet<String>,
    ) -> Result<Vec<Lit>, VerilogError> {
        if let Some(w) = env.get(name) {
            return Ok(w.clone());
        }
        let sig = module
            .signal(name)
            .ok_or_else(|| VerilogError::elaborate(format!("undeclared signal {name}")))?;
        let assign = by_target
            .get(name)
            .ok_or_else(|| VerilogError::elaborate(format!("no driver for {name}")))?;
        if !visiting.insert(name.to_string()) {
            return Err(VerilogError::elaborate(format!(
                "combinational cycle through {name}"
            )));
        }
        let word = eval_expr(&assign.expr, module, by_target, aig, env, visiting)?;
        visiting.remove(name);
        // Resize to the declared width (Verilog truncates/zero-extends).
        let word = words::resize(&word, sig.width());
        env.insert(name.to_string(), word.clone());
        Ok(word)
    }

    fn eval_expr<'m>(
        expr: &Expr,
        module: &'m Module,
        by_target: &HashMap<&str, &'m Assign>,
        aig: &mut Aig,
        env: &mut HashMap<String, Vec<Lit>>,
        visiting: &mut HashSet<String>,
    ) -> Result<Vec<Lit>, VerilogError> {
        match expr {
            Expr::Ident(name) => eval_signal(name, module, by_target, aig, env, visiting),
            Expr::Literal { bits, .. } => Ok(words::constant(bits.len().max(1), bits)),
            Expr::Index(inner, i) => {
                let w = eval_expr(inner, module, by_target, aig, env, visiting)?;
                let bit = w.get(*i).copied().ok_or_else(|| {
                    VerilogError::elaborate(format!("bit select [{i}] out of range"))
                })?;
                Ok(vec![bit])
            }
            Expr::Range(inner, msb, lsb) => {
                let w = eval_expr(inner, module, by_target, aig, env, visiting)?;
                if *msb >= w.len() {
                    return Err(VerilogError::elaborate(format!(
                        "part select [{msb}:{lsb}] out of range (width {})",
                        w.len()
                    )));
                }
                Ok(w[*lsb..=*msb].to_vec())
            }
            Expr::Concat(items) => {
                // First item is most significant.
                let mut word = Vec::new();
                for item in items.iter().rev() {
                    let w = eval_expr(item, module, by_target, aig, env, visiting)?;
                    word.extend(w);
                }
                Ok(word)
            }
            Expr::Repeat(k, inner) => {
                let w = eval_expr(inner, module, by_target, aig, env, visiting)?;
                let mut word = Vec::with_capacity(k * w.len());
                for _ in 0..*k {
                    word.extend(w.iter().copied());
                }
                Ok(word)
            }
            Expr::Unary(op, inner) => {
                let w = eval_expr(inner, module, by_target, aig, env, visiting)?;
                Ok(match op {
                    UnOp::Not => words::not_word(&w),
                    UnOp::LogicalNot => vec![!words::red_or(aig, &w)],
                    UnOp::Neg => words::neg(aig, &w),
                    UnOp::RedOr => vec![words::red_or(aig, &w)],
                    UnOp::RedAnd => vec![words::red_and(aig, &w)],
                    UnOp::RedXor => vec![words::red_xor(aig, &w)],
                })
            }
            Expr::Binary(op, lhs, rhs) => {
                let a = eval_expr(lhs, module, by_target, aig, env, visiting)?;
                let b = eval_expr(rhs, module, by_target, aig, env, visiting)?;
                Ok(match op {
                    BinOp::Add => words::add(aig, &a, &b).0,
                    BinOp::Sub => words::sub(aig, &a, &b).0,
                    BinOp::Mul => words::mul(aig, &a, &b),
                    BinOp::Div => words::divmod(aig, &a, &b).0,
                    BinOp::Mod => words::divmod(aig, &a, &b).1,
                    BinOp::Shl => shift(aig, &a, &b, true),
                    BinOp::Shr => shift(aig, &a, &b, false),
                    BinOp::And => words::bitwise(aig, &a, &b, qda_logic::Aig::and),
                    BinOp::Or => words::bitwise(aig, &a, &b, qda_logic::Aig::or),
                    BinOp::Xor => words::bitwise(aig, &a, &b, qda_logic::Aig::xor),
                    BinOp::LogicalAnd => {
                        let la = words::red_or(aig, &a);
                        let lb = words::red_or(aig, &b);
                        vec![aig.and(la, lb)]
                    }
                    BinOp::LogicalOr => {
                        let la = words::red_or(aig, &a);
                        let lb = words::red_or(aig, &b);
                        vec![aig.or(la, lb)]
                    }
                    BinOp::Eq => vec![words::eq(aig, &a, &b)],
                    BinOp::Ne => vec![!words::eq(aig, &a, &b)],
                    BinOp::Lt => vec![words::ult(aig, &a, &b)],
                    BinOp::Ge => vec![!words::ult(aig, &a, &b)],
                    BinOp::Gt => vec![words::ult(aig, &b, &a)],
                    BinOp::Le => vec![!words::ult(aig, &b, &a)],
                })
            }
            Expr::Ternary(c, t, e) => {
                let cw = eval_expr(c, module, by_target, aig, env, visiting)?;
                let s = words::red_or(aig, &cw);
                let tw = eval_expr(t, module, by_target, aig, env, visiting)?;
                let ew = eval_expr(e, module, by_target, aig, env, visiting)?;
                Ok(words::mux(aig, s, &tw, &ew))
            }
        }
    }

    /// Shift with a constant-detecting fast path.
    fn shift(aig: &mut Aig, a: &[Lit], s: &[Lit], left: bool) -> Vec<Lit> {
        if s.iter().all(|l| l.is_const()) {
            let k: usize = s
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    if l == Lit::TRUE {
                        1usize << i.min(31)
                    } else {
                        0
                    }
                })
                .sum();
            return if left {
                words::shl_const(a, k.min(a.len()))
            } else {
                words::shr_const(a, k.min(a.len()))
            };
        }
        if left {
            words::shl_var(aig, a, s)
        } else {
            words::shr_var(aig, a, s)
        }
    }

    // Drive all outputs.
    let mut visiting = HashSet::new();
    for sig in &outputs {
        let word = eval_signal(
            &sig.name,
            module,
            &by_target,
            &mut aig,
            &mut env,
            &mut visiting,
        )?;
        for &bit in &word {
            aig.add_po(bit);
        }
    }
    Ok(aig.cleanup())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn build(src: &str) -> Aig {
        elaborate(&parse_module(src).expect("parse")).expect("elaborate")
    }

    #[test]
    fn adder_module() {
        let aig = build(
            "module add4(a, b, s);
               input [3:0] a, b;
               output [4:0] s;
               assign s = a + b;
             endmodule",
        );
        // s is declared 5 bits but a+b is 4 bits zero-extended: check mod-16
        // semantics at the declared width.
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(aig.eval(x | (y << 4)), (x + y) & 15);
            }
        }
    }

    #[test]
    fn wide_sum_via_concat() {
        let aig = build(
            "module add4c(a, b, s);
               input [3:0] a, b;
               output [4:0] s;
               assign s = {1'b0, a} + {1'b0, b};
             endmodule",
        );
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(aig.eval(x | (y << 4)), x + y);
            }
        }
    }

    #[test]
    fn division_module_matches_intdiv_shape() {
        let aig = build(
            "module div(x, y);
               input [4:0] x;
               output [4:0] y;
               assign y = 5'd16 / x;
             endmodule",
        );
        for x in 1..32u64 {
            assert_eq!(aig.eval(x), 16 / x, "16/{x}");
        }
    }

    #[test]
    fn wires_in_any_order_and_selects() {
        let aig = build(
            "module m(a, y);
               input [3:0] a;
               output [1:0] y;
               wire [3:0] t;
               assign y = t[3:2];
               assign t = a ^ {4{a[0]}};
             endmodule",
        );
        for x in 0..16u64 {
            let t = x ^ if x & 1 == 1 { 15 } else { 0 };
            assert_eq!(aig.eval(x), (t >> 2) & 3);
        }
    }

    #[test]
    fn ternary_and_relational() {
        let aig = build(
            "module max(a, b, y);
               input [2:0] a, b;
               output [2:0] y;
               assign y = (a >= b) ? a : b;
             endmodule",
        );
        for x in 0..8u64 {
            for y in 0..8u64 {
                assert_eq!(aig.eval(x | (y << 3)), x.max(y));
            }
        }
    }

    #[test]
    fn variable_shift() {
        let aig = build(
            "module sh(a, k, y);
               input [7:0] a;
               input [2:0] k;
               output [7:0] y;
               assign y = a >> k;
             endmodule",
        );
        for x in [0u64, 0xA5, 0xFF, 0x80] {
            for k in 0..8u64 {
                assert_eq!(aig.eval(x | (k << 8)), x >> k, "{x} >> {k}");
            }
        }
    }

    #[test]
    fn rejects_cycle() {
        let r = parse_module(
            "module m(y);
               output y;
               wire a, b;
               assign a = b;
               assign b = a;
               assign y = a;
             endmodule",
        )
        .map(|m| elaborate(&m));
        assert!(matches!(r, Ok(Err(VerilogError::Elaborate { .. }))));
    }

    #[test]
    fn rejects_multiple_drivers_and_undeclared() {
        let double = parse_module(
            "module m(a, y);
               input a; output y;
               assign y = a;
               assign y = ~a;
             endmodule",
        )
        .unwrap();
        assert!(elaborate(&double).is_err());
        let undeclared = parse_module(
            "module m(a, y);
               input a; output y;
               assign y = ghost;
             endmodule",
        )
        .unwrap();
        assert!(elaborate(&undeclared).is_err());
    }

    #[test]
    fn modulo_operator() {
        let aig = build(
            "module m(a, y);
               input [3:0] a;
               output [2:0] y;
               assign y = a % 3'd5;
             endmodule",
        );
        for x in 0..16u64 {
            assert_eq!(aig.eval(x), x % 5);
        }
    }
}
