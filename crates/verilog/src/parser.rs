//! Recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use crate::VerilogError;

/// Parses a single module from source text.
///
/// # Errors
///
/// Returns [`VerilogError::Lex`] or [`VerilogError::Parse`] on malformed
/// input.
pub fn parse_module(src: &str) -> Result<Module, VerilogError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let m = p.module()?;
    p.expect_eof()?;
    Ok(m)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(Token::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), VerilogError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(VerilogError::parse(format!(
                "expected {p:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, VerilogError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            t => Err(VerilogError::parse(format!(
                "expected identifier, found {t:?}"
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), VerilogError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(VerilogError::parse(format!(
                "expected keyword {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), VerilogError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(VerilogError::parse(format!(
                "trailing input after endmodule: {:?}",
                self.peek()
            )))
        }
    }

    fn small_number(&mut self) -> Result<usize, VerilogError> {
        match self.next() {
            Some(Token::Number { bits, .. }) => {
                if bits.len() > 32 {
                    return Err(VerilogError::parse("index constant too large"));
                }
                Ok(bits
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (b as usize) << i)
                    .sum())
            }
            t => Err(VerilogError::parse(format!("expected number, found {t:?}"))),
        }
    }

    fn module(&mut self) -> Result<Module, VerilogError> {
        self.expect_keyword("module")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut ports = Vec::new();
        if !self.eat_punct(")") {
            loop {
                ports.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct(";")?;
        let mut signals = Vec::new();
        let mut assigns = Vec::new();
        loop {
            if self.eat_keyword("endmodule") {
                break;
            }
            if self.eat_keyword("input") {
                self.declaration(SignalKind::Input, &mut signals)?;
            } else if self.eat_keyword("output") {
                self.declaration(SignalKind::Output, &mut signals)?;
            } else if self.eat_keyword("wire") {
                self.declaration(SignalKind::Wire, &mut signals)?;
            } else if self.eat_keyword("assign") {
                let target = self.ident()?;
                self.expect_punct("=")?;
                let expr = self.expr()?;
                self.expect_punct(";")?;
                assigns.push(Assign { target, expr });
            } else {
                return Err(VerilogError::parse(format!(
                    "expected declaration, assign or endmodule, found {:?}",
                    self.peek()
                )));
            }
        }
        Ok(Module {
            name,
            ports,
            signals,
            assigns,
        })
    }

    fn declaration(
        &mut self,
        kind: SignalKind,
        signals: &mut Vec<Signal>,
    ) -> Result<(), VerilogError> {
        // Optional `wire` after input/output (e.g. `output wire y`).
        if kind != SignalKind::Wire {
            let _ = self.eat_keyword("wire");
        }
        let (msb, lsb) = if self.eat_punct("[") {
            let msb = self.small_number()?;
            self.expect_punct(":")?;
            let lsb = self.small_number()?;
            self.expect_punct("]")?;
            if lsb > msb {
                return Err(VerilogError::parse("descending ranges only ([msb:lsb])"));
            }
            (msb, lsb)
        } else {
            (0, 0)
        };
        loop {
            let name = self.ident()?;
            signals.push(Signal {
                name,
                kind,
                msb,
                lsb,
            });
            if self.eat_punct(";") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(())
    }

    // Expression grammar, lowest to highest precedence:
    //   ternary  ?:
    //   logical  || &&
    //   bitwise  | ^ &
    //   equality == !=
    //   relational < <= > >=
    //   shift << >>
    //   additive + -
    //   multiplicative * / %
    //   unary ~ ! - | & ^ (reductions)
    //   postfix [i] [m:l]
    //   primary ident literal (expr) {…}
    fn expr(&mut self) -> Result<Expr, VerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.logical_or()?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let e = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn binary_level<F>(&mut self, ops: &[(&str, BinOp)], next: F) -> Result<Expr, VerilogError>
    where
        F: Fn(&mut Self) -> Result<Expr, VerilogError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (p, op) in ops {
                if self.eat_punct(p) {
                    let rhs = next(self)?;
                    lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logical_or(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("||", BinOp::LogicalOr)], Self::logical_and)
    }

    fn logical_and(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("&&", BinOp::LogicalAnd)], Self::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("|", BinOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("^", BinOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("&", BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("==", BinOp::Eq), ("!=", BinOp::Ne)], Self::relational)
    }

    fn relational(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("<<", BinOp::Shl), (">>", BinOp::Shr)], Self::additive)
    }

    fn additive(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        for (p, op) in [
            ("~", UnOp::Not),
            ("!", UnOp::LogicalNot),
            ("-", UnOp::Neg),
            ("|", UnOp::RedOr),
            ("&", UnOp::RedAnd),
            ("^", UnOp::RedXor),
        ] {
            if self.eat_punct(p) {
                let inner = self.unary()?;
                return Ok(Expr::Unary(op, Box::new(inner)));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, VerilogError> {
        let mut e = self.primary()?;
        while self.eat_punct("[") {
            let first = self.small_number()?;
            if self.eat_punct(":") {
                let lsb = self.small_number()?;
                self.expect_punct("]")?;
                if lsb > first {
                    return Err(VerilogError::parse("descending part select only"));
                }
                e = Expr::Range(Box::new(e), first, lsb);
            } else {
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), first);
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, VerilogError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if self.eat_punct("{") {
            // Either replication {k{expr}} or concatenation {a, b, …}.
            // Lookahead: number followed by `{`.
            let save = self.pos;
            if let Some(Token::Number { .. }) = self.peek() {
                let k = self.small_number()?;
                if self.eat_punct("{") {
                    let inner = self.expr()?;
                    self.expect_punct("}")?;
                    self.expect_punct("}")?;
                    return Ok(Expr::Repeat(k, Box::new(inner)));
                }
                self.pos = save;
            }
            let mut items = Vec::new();
            loop {
                items.push(self.expr()?);
                if self.eat_punct("}") {
                    break;
                }
                self.expect_punct(",")?;
            }
            return Ok(Expr::Concat(items));
        }
        match self.next() {
            Some(Token::Ident(s)) => Ok(Expr::Ident(s)),
            Some(Token::Number { width, bits }) => Ok(Expr::Literal {
                bits,
                sized: width.is_some(),
            }),
            t => Err(VerilogError::parse(format!(
                "expected expression, found {t:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_module() {
        let m = parse_module(
            "module m(a, b, y);
               input [3:0] a, b;
               output [3:0] y;
               assign y = a + b;
             endmodule",
        )
        .unwrap();
        assert_eq!(m.name, "m");
        assert_eq!(m.ports, vec!["a", "b", "y"]);
        assert_eq!(m.signals.len(), 3);
        assert_eq!(m.signal("a").unwrap().width(), 4);
        assert_eq!(m.assigns.len(), 1);
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse_module(
            "module m(a, b, c, y);
               input a, b, c; output y;
               assign y = a + b * c;
             endmodule",
        )
        .unwrap();
        match &m.assigns[0].expr {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn ternary_and_comparison() {
        let m = parse_module(
            "module m(a, b, y);
               input [1:0] a, b; output [1:0] y;
               assign y = (a < b) ? a : b;
             endmodule",
        )
        .unwrap();
        assert!(matches!(m.assigns[0].expr, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn concat_replication_and_selects() {
        let m = parse_module(
            "module m(a, y);
               input [3:0] a; output [7:0] y;
               assign y = {a[3:2], {2{a[0]}}, a[1], 3'b101};
             endmodule",
        )
        .unwrap();
        match &m.assigns[0].expr {
            Expr::Concat(items) => {
                assert_eq!(items.len(), 4);
                assert!(matches!(items[0], Expr::Range(_, 3, 2)));
                assert!(matches!(items[1], Expr::Repeat(2, _)));
                assert!(matches!(items[2], Expr::Index(_, 1)));
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn reduction_vs_binary_ops() {
        let m = parse_module(
            "module m(a, b, y);
               input [3:0] a, b; output y;
               assign y = |a & &b;
             endmodule",
        )
        .unwrap();
        // Parses as (|a) & (&b).
        match &m.assigns[0].expr {
            Expr::Binary(BinOp::And, l, r) => {
                assert!(matches!(**l, Expr::Unary(UnOp::RedOr, _)));
                assert!(matches!(**r, Expr::Unary(UnOp::RedAnd, _)));
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn error_on_missing_semicolon() {
        let r = parse_module("module m(a); input a; assign a = a endmodule");
        assert!(r.is_err());
    }

    #[test]
    fn error_on_trailing_tokens() {
        let r = parse_module("module m(); endmodule extra");
        assert!(r.is_err());
    }
}
