//! Word-level construction helpers over [`Aig`] literals.
//!
//! A *word* is a `Vec<Lit>`, least-significant bit first. These functions
//! implement the bit-blasting of every operator in the Verilog subset:
//! ripple-carry adders, an array multiplier, a restoring divider (the heart
//! of INTDIV), barrel shifters (needed by NEWTON's normalization step) and
//! comparators.

use qda_logic::aig::{Aig, Lit};

/// A constant word of the given width.
pub fn constant(width: usize, bits: &[bool]) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if *bits.get(i).unwrap_or(&false) {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Zero-extends (or truncates) a word to `width`.
pub fn resize(word: &[Lit], width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| *word.get(i).unwrap_or(&Lit::FALSE))
        .collect()
}

/// Bitwise NOT.
pub fn not_word(word: &[Lit]) -> Vec<Lit> {
    word.iter().map(|&l| !l).collect()
}

/// Bitwise binary op applied lane-wise after widening both operands to the
/// larger width.
pub fn bitwise<F: FnMut(&mut Aig, Lit, Lit) -> Lit>(
    aig: &mut Aig,
    a: &[Lit],
    b: &[Lit],
    mut op: F,
) -> Vec<Lit> {
    let w = a.len().max(b.len());
    let a = resize(a, w);
    let b = resize(b, w);
    a.iter().zip(&b).map(|(&x, &y)| op(aig, x, y)).collect()
}

/// Full adder returning `(sum, carry)`.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let carry = aig.maj(a, b, cin);
    (sum, carry)
}

/// Ripple-carry addition, result width = max operand width (wrapping);
/// returns `(sum, carry_out)`.
pub fn add(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let w = a.len().max(b.len());
    let a = resize(a, w);
    let b = resize(b, w);
    let mut carry = Lit::FALSE;
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        let (s, c) = full_adder(aig, a[i], b[i], carry);
        out.push(s);
        carry = c;
    }
    (out, carry)
}

/// Two's-complement subtraction `a − b` (wrapping); returns
/// `(difference, no_borrow)` where `no_borrow = 1` iff `a ≥ b`.
pub fn sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let w = a.len().max(b.len());
    let a = resize(a, w);
    let nb = not_word(&resize(b, w));
    let mut carry = Lit::TRUE;
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        let (s, c) = full_adder(aig, a[i], nb[i], carry);
        out.push(s);
        carry = c;
    }
    (out, carry)
}

/// Unsigned array multiplication, result width = `a.len() + b.len()`.
pub fn mul(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let mut acc = vec![Lit::FALSE; a.len() + b.len()];
    for (i, &bi) in b.iter().enumerate() {
        // Partial product (a & b_i) << i, added into the accumulator.
        let pp: Vec<Lit> = a.iter().map(|&aj| aig.and(aj, bi)).collect();
        let mut carry = Lit::FALSE;
        for (j, &p) in pp.iter().enumerate() {
            let (s, c) = full_adder(aig, acc[i + j], p, carry);
            acc[i + j] = s;
            carry = c;
        }
        // Ripple the final carry upwards.
        let mut k = i + pp.len();
        while carry != Lit::FALSE && k < acc.len() {
            let (s, c) = full_adder(aig, acc[k], carry, Lit::FALSE);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    acc
}

/// Word multiplexer `s ? t : e` (operands widened to the larger width).
pub fn mux(aig: &mut Aig, s: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    let w = t.len().max(e.len());
    let t = resize(t, w);
    let e = resize(e, w);
    t.iter().zip(&e).map(|(&x, &y)| aig.mux(s, x, y)).collect()
}

/// Unsigned restoring division: returns `(quotient, remainder)` with
/// `quotient.len() == a.len()` and `remainder.len() == b.len()`.
///
/// Division by zero yields all-ones quotient and `remainder = a mod 2^wb`
/// — a harmless total definition (hardware dividers must output
/// *something*; the reciprocal designs never divide by zero because the
/// paper's input range starts at 1).
pub fn divmod(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
    let wa = a.len();
    let wb = b.len();
    // Remainder register one bit wider than the divisor.
    let mut rem: Vec<Lit> = vec![Lit::FALSE; wb + 1];
    let b_ext = resize(b, wb + 1);
    let mut quot = vec![Lit::FALSE; wa];
    for i in (0..wa).rev() {
        // rem = (rem << 1) | a[i]
        rem.rotate_right(1);
        rem[0] = a[i];
        // Trial subtraction.
        let (diff, no_borrow) = sub(aig, &rem, &b_ext);
        quot[i] = no_borrow;
        rem = mux(aig, no_borrow, &diff, &rem);
    }
    (quot, resize(&rem, wb))
}

/// Left shift by a constant (width preserved, zeros shifted in).
pub fn shl_const(a: &[Lit], k: usize) -> Vec<Lit> {
    let w = a.len();
    (0..w)
        .map(|i| if i >= k { a[i - k] } else { Lit::FALSE })
        .collect()
}

/// Logical right shift by a constant (width preserved).
pub fn shr_const(a: &[Lit], k: usize) -> Vec<Lit> {
    let w = a.len();
    (0..w)
        .map(|i| *a.get(i + k).unwrap_or(&Lit::FALSE))
        .collect()
}

/// Barrel left shift by a variable amount (width of `a` preserved).
pub fn shl_var(aig: &mut Aig, a: &[Lit], s: &[Lit]) -> Vec<Lit> {
    let mut cur: Vec<Lit> = a.to_vec();
    for (j, &sj) in s.iter().enumerate() {
        let k = 1usize << j.min(31);
        let shifted = if j >= 31 || k >= cur.len() {
            vec![Lit::FALSE; cur.len()]
        } else {
            shl_const(&cur, k)
        };
        cur = mux(aig, sj, &shifted, &cur);
    }
    cur
}

/// Barrel logical right shift by a variable amount.
pub fn shr_var(aig: &mut Aig, a: &[Lit], s: &[Lit]) -> Vec<Lit> {
    let mut cur: Vec<Lit> = a.to_vec();
    for (j, &sj) in s.iter().enumerate() {
        let k = 1usize << j.min(31);
        let shifted = if j >= 31 || k >= cur.len() {
            vec![Lit::FALSE; cur.len()]
        } else {
            shr_const(&cur, k)
        };
        cur = mux(aig, sj, &shifted, &cur);
    }
    cur
}

/// Equality comparison (1-bit result).
pub fn eq(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let w = a.len().max(b.len());
    let a = resize(a, w);
    let b = resize(b, w);
    let lanes: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_many(&lanes)
}

/// Unsigned less-than (1-bit result).
pub fn ult(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let (_, no_borrow) = sub(aig, a, b);
    !no_borrow
}

/// Reduction OR of a word.
pub fn red_or(aig: &mut Aig, a: &[Lit]) -> Lit {
    let inverted: Vec<Lit> = a.iter().map(|&l| !l).collect();
    !aig.and_many(&inverted)
}

/// Reduction AND of a word.
pub fn red_and(aig: &mut Aig, a: &[Lit]) -> Lit {
    aig.and_many(a)
}

/// Reduction XOR of a word.
pub fn red_xor(aig: &mut Aig, a: &[Lit]) -> Lit {
    a.iter().fold(Lit::FALSE, |acc, &l| aig.xor(acc, l))
}

/// Two's-complement negation (width preserved).
pub fn neg(aig: &mut Aig, a: &[Lit]) -> Vec<Lit> {
    let zero = vec![Lit::FALSE; a.len()];
    sub(aig, &zero, a).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an AIG computing `f(a, b)` on two `w`-bit inputs and checks
    /// it against `expected` for all input pairs.
    fn check2<FB, FE>(w: usize, build: FB, expected: FE)
    where
        FB: Fn(&mut Aig, &[Lit], &[Lit]) -> Vec<Lit>,
        FE: Fn(u64, u64) -> u64,
    {
        let mut aig = Aig::new(2 * w);
        let a: Vec<Lit> = (0..w).map(|i| aig.pi(i)).collect();
        let b: Vec<Lit> = (0..w).map(|i| aig.pi(w + i)).collect();
        let out = build(&mut aig, &a, &b);
        let ow = out.len();
        for l in out {
            aig.add_po(l);
        }
        let mask = if ow >= 64 { u64::MAX } else { (1u64 << ow) - 1 };
        for x in 0..(1u64 << w) {
            for y in 0..(1u64 << w) {
                let input = x | (y << w);
                assert_eq!(aig.eval(input), expected(x, y) & mask, "x={x} y={y} w={w}");
            }
        }
    }

    #[test]
    fn adder_matches_u64() {
        check2(4, |g, a, b| add(g, a, b).0, |x, y| (x + y) & 15);
    }

    #[test]
    fn adder_carry_out() {
        check2(
            3,
            |g, a, b| {
                let (mut s, c) = add(g, a, b);
                s.push(c);
                s
            },
            |x, y| x + y,
        );
    }

    #[test]
    fn subtractor_matches_wrapping() {
        check2(4, |g, a, b| sub(g, a, b).0, |x, y| x.wrapping_sub(y) & 15);
    }

    #[test]
    fn multiplier_matches_u64() {
        check2(3, mul, |x, y| x * y);
    }

    #[test]
    fn division_and_modulo() {
        check2(
            4,
            |g, a, b| divmod(g, a, b).0,
            |x, y| x.checked_div(y).unwrap_or(15),
        );
        check2(
            4,
            |g, a, b| divmod(g, a, b).1,
            |x, y| if y == 0 { x } else { x % y },
        );
    }

    #[test]
    fn asymmetric_width_division() {
        // 6-bit dividend / 3-bit divisor, as INTDIV uses (2^n / x).
        let mut aig = Aig::new(9);
        let a: Vec<Lit> = (0..6).map(|i| aig.pi(i)).collect();
        let b: Vec<Lit> = (0..3).map(|i| aig.pi(6 + i)).collect();
        let (q, r) = divmod(&mut aig, &a, &b);
        assert_eq!(q.len(), 6);
        assert_eq!(r.len(), 3);
        for l in q.into_iter().chain(r) {
            aig.add_po(l);
        }
        for x in 0..64u64 {
            for y in 1..8u64 {
                let out = aig.eval(x | (y << 6));
                assert_eq!(out & 63, x / y, "{x}/{y}");
                assert_eq!(out >> 6, x % y, "{x}%{y}");
            }
        }
    }

    #[test]
    fn constant_shifts() {
        let a = [Lit::TRUE, Lit::FALSE, Lit::TRUE, Lit::FALSE]; // 0b0101
        let l = shl_const(&a, 1);
        assert_eq!(l, vec![Lit::FALSE, Lit::TRUE, Lit::FALSE, Lit::TRUE]);
        let r = shr_const(&a, 2);
        assert_eq!(r, vec![Lit::TRUE, Lit::FALSE, Lit::FALSE, Lit::FALSE]);
    }

    #[test]
    fn variable_shifts() {
        // a: 4 bits, s: 3 bits.
        let mut aig = Aig::new(7);
        let a: Vec<Lit> = (0..4).map(|i| aig.pi(i)).collect();
        let s: Vec<Lit> = (0..3).map(|i| aig.pi(4 + i)).collect();
        let shl = shl_var(&mut aig, &a, &s);
        let shr = shr_var(&mut aig, &a, &s);
        for l in shl.into_iter().chain(shr) {
            aig.add_po(l);
        }
        for x in 0..16u64 {
            for k in 0..8u64 {
                let out = aig.eval(x | (k << 4));
                let expect_shl = if k >= 4 { 0 } else { (x << k) & 15 };
                let expect_shr = if k >= 4 { 0 } else { x >> k };
                assert_eq!(out & 15, expect_shl, "{x} << {k}");
                assert_eq!(out >> 4, expect_shr, "{x} >> {k}");
            }
        }
    }

    #[test]
    fn comparisons() {
        check2(3, |g, a, b| vec![eq(g, a, b)], |x, y| u64::from(x == y));
        check2(3, |g, a, b| vec![ult(g, a, b)], |x, y| u64::from(x < y));
    }

    #[test]
    fn reductions_and_negation() {
        let mut aig = Aig::new(4);
        let a: Vec<Lit> = (0..4).map(|i| aig.pi(i)).collect();
        let or = red_or(&mut aig, &a);
        let and = red_and(&mut aig, &a);
        let xor = red_xor(&mut aig, &a);
        let n = neg(&mut aig, &a);
        aig.add_po(or);
        aig.add_po(and);
        aig.add_po(xor);
        for l in n {
            aig.add_po(l);
        }
        for x in 0..16u64 {
            let y = aig.eval(x);
            assert_eq!(y & 1, u64::from(x != 0));
            assert_eq!((y >> 1) & 1, u64::from(x == 15));
            assert_eq!((y >> 2) & 1, u64::from(x.count_ones() % 2 == 1));
            assert_eq!((y >> 3) & 15, x.wrapping_neg() & 15);
        }
    }

    #[test]
    fn mixed_width_operands() {
        // 3-bit + 5-bit → 5-bit result.
        let mut aig = Aig::new(8);
        let a: Vec<Lit> = (0..3).map(|i| aig.pi(i)).collect();
        let b: Vec<Lit> = (0..5).map(|i| aig.pi(3 + i)).collect();
        let (s, _) = add(&mut aig, &a, &b);
        assert_eq!(s.len(), 5);
        for l in s {
            aig.add_po(l);
        }
        for x in 0..8u64 {
            for y in 0..32u64 {
                assert_eq!(aig.eval(x | (y << 3)), (x + y) & 31);
            }
        }
    }
}
