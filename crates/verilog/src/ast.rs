//! Abstract syntax tree of the Verilog subset.

/// Direction / kind of a signal declaration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignalKind {
    /// `input` port.
    Input,
    /// `output` port.
    Output,
    /// internal `wire`.
    Wire,
}

/// A declared signal with an optional `[msb:lsb]` range
/// (absent range = 1 bit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signal {
    /// Signal name.
    pub name: String,
    /// Declaration kind.
    pub kind: SignalKind,
    /// Most-significant bit index (0 for scalars).
    pub msb: usize,
    /// Least-significant bit index (0 for scalars).
    pub lsb: usize,
}

impl Signal {
    /// Bit width of the signal.
    pub fn width(&self) -> usize {
        self.msb - self.lsb + 1
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Bitwise NOT `~`.
    Not,
    /// Logical NOT `!` (1-bit result).
    LogicalNot,
    /// Arithmetic negation `-` (two's complement).
    Neg,
    /// Reduction OR `|a`.
    RedOr,
    /// Reduction AND `&a`.
    RedAnd,
    /// Reduction XOR `^a`.
    RedXor,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+` (width = max, wrapping)
    Add,
    /// `-` (width = max, wrapping)
    Sub,
    /// `*` (width = sum)
    Mul,
    /// `/` unsigned (width = left)
    Div,
    /// `%` unsigned (width = right)
    Mod,
    /// `<<` (width = left)
    Shl,
    /// `>>` logical (width = left)
    Shr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `&&` (1 bit)
    LogicalAnd,
    /// `||` (1 bit)
    LogicalOr,
    /// `==` (1 bit)
    Eq,
    /// `!=` (1 bit)
    Ne,
    /// `<` unsigned (1 bit)
    Lt,
    /// `<=` unsigned (1 bit)
    Le,
    /// `>` unsigned (1 bit)
    Gt,
    /// `>=` unsigned (1 bit)
    Ge,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Signal reference.
    Ident(String),
    /// Literal with LSB-first bits (sized) or minimal width (unsized).
    Literal {
        /// Bits, least significant first.
        bits: Vec<bool>,
        /// Whether the literal was explicitly sized.
        sized: bool,
    },
    /// Bit select `a[i]`.
    Index(Box<Expr>, usize),
    /// Part select `a[msb:lsb]`.
    Range(Box<Expr>, usize, usize),
    /// Concatenation `{a, b, …}` (first element = most significant,
    /// Verilog convention).
    Concat(Vec<Expr>),
    /// Replication `{k{expr}}`.
    Repeat(usize, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? then : else`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// A continuous assignment `assign target = expr;` (target must be a full
/// declared signal in this subset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assign {
    /// Assigned signal name.
    pub target: String,
    /// Right-hand side.
    pub expr: Expr,
}

/// A parsed module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Port order as written in the header.
    pub ports: Vec<String>,
    /// All declared signals.
    pub signals: Vec<Signal>,
    /// Continuous assignments in source order.
    pub assigns: Vec<Assign>,
}

impl Module {
    /// Looks up a signal declaration by name.
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Input signals in port order.
    pub fn inputs(&self) -> Vec<&Signal> {
        self.ports
            .iter()
            .filter_map(|p| self.signal(p))
            .filter(|s| s.kind == SignalKind::Input)
            .collect()
    }

    /// Output signals in port order.
    pub fn outputs(&self) -> Vec<&Signal> {
        self.ports
            .iter()
            .filter_map(|p| self.signal(p))
            .filter(|s| s.kind == SignalKind::Output)
            .collect()
    }
}
